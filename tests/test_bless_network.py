"""Unit and invariant tests for the BLESS deflection network."""

import numpy as np
import pytest

from repro.network import BlessNetwork
from repro.network.flit import FLIT_REPLY


def drive(net, schedule, cycles):
    """Run *cycles* steps applying {cycle: (srcs, dests)} injections.

    Returns the list of (cycle, EjectedFlits).
    """
    delivered = []
    for c in range(cycles):
        if c in schedule:
            srcs, dests = schedule[c]
            net.enqueue_requests(np.asarray(srcs), np.asarray(dests), 1, cycle=c)
        ej = net.step(c)
        if ej.node.size:
            delivered.append((c, ej))
    return delivered


class TestSinglePacket:
    def test_corner_to_corner_latency(self, mesh4):
        """6 hops at 3 cycles/hop with an empty network."""
        net = BlessNetwork(mesh4)
        delivered = drive(net, {0: ([0], [15])}, 40)
        assert len(delivered) == 1
        cycle, ej = delivered[0]
        assert cycle == 18
        assert ej.node[0] == 15
        assert ej.src[0] == 0
        assert net.stats.avg_hops == 6.0

    def test_adjacent_delivery(self, mesh4):
        net = BlessNetwork(mesh4)
        delivered = drive(net, {0: ([5], [6])}, 10)
        assert delivered[0][0] == 3  # one hop
        assert net.stats.avg_latency == 3.0

    def test_no_deflections_when_alone(self, mesh4):
        net = BlessNetwork(mesh4)
        drive(net, {0: ([0], [15])}, 40)
        assert net.stats.deflections == 0

    def test_seq_and_kind_preserved(self, mesh4):
        net = BlessNetwork(mesh4)
        net.enqueue_replies(np.array([1]), np.array([14]), 1, cycle=0, seq=77)
        for c in range(40):
            ej = net.step(c)
            if ej.node.size:
                assert ej.kind[0] == FLIT_REPLY
                assert ej.seq[0] == 77
                return
        pytest.fail("flit never delivered")

    def test_hop_latency_parameter(self, mesh4):
        net = BlessNetwork(mesh4, hop_latency=1)
        delivered = drive(net, {0: ([0], [15])}, 20)
        assert delivered[0][0] == 6

    def test_torus_wraparound_shortcut(self, torus4):
        net = BlessNetwork(torus4)
        delivered = drive(net, {0: ([0], [15])}, 30)
        # (0,0) -> (3,3) is 2 hops on a 4x4 torus.
        assert delivered[0][0] == 6


class TestContentionAndDeflection:
    def test_oldest_first_wins_port(self, mesh4):
        """Two flits contending for one output: the older flit wins it.

        Node 0's flit (injected at cycle 0) transits node 2 at cycle 6
        heading EAST to node 3.  Node 2 tries to inject its own flit to
        node 3 that same cycle: the in-flight (older) flit keeps the
        productive port, the injected one is forced onto another link
        and takes a longer path.
        """
        net = BlessNetwork(mesh4)
        net.enqueue_requests(np.array([0]), np.array([3]), 1, cycle=0)
        arrivals = {}
        for c in range(40):
            if c == 6:
                net.enqueue_requests(np.array([2]), np.array([3]), 1, cycle=c)
            ej = net.step(c)
            for node, src in zip(ej.node, ej.src):
                arrivals[int(src)] = c
            if len(arrivals) == 2:
                break
        assert arrivals[0] == 9  # 3 hops, never deflected
        assert arrivals[2] > 9  # lost the port, took a detour

    def test_ejection_contention_deflects_loser(self, mesh4):
        """Two flits reaching the destination together: one is deflected
        and arrives later (eject width 1)."""
        net = BlessNetwork(mesh4)
        # 1 and 4 are both one hop from 5.
        net.enqueue_requests(np.array([1, 4]), np.array([5, 5]), 1, cycle=0)
        times = []
        for c in range(30):
            ej = net.step(c)
            times.extend([c] * ej.node.size)
        assert len(times) == 2
        assert times[0] == 3
        assert times[1] > times[0]
        assert net.stats.deflections >= 1

    def test_eject_width_two_delivers_both(self, mesh4):
        net = BlessNetwork(mesh4, eject_width=2)
        net.enqueue_requests(np.array([1, 4]), np.array([5, 5]), 1, cycle=0)
        times = []
        for c in range(30):
            ej = net.step(c)
            times.extend([c] * ej.node.size)
        assert times == [3, 3]
        assert net.stats.deflections == 0

    def test_all_flits_eventually_delivered_under_load(self, mesh8):
        rng = np.random.default_rng(3)
        net = BlessNetwork(mesh8)
        sent = 0
        for c in range(300):
            srcs = np.flatnonzero(rng.random(64) < 0.4)
            dests = (srcs + 1 + rng.integers(0, 63, srcs.size)) % 64
            sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
            net.step(c)
        for c in range(300, 1200):
            net.step(c)
            if net.stats.ejected_flits == net.stats.injected_flits:
                break
        assert net.stats.injected_flits == sent
        assert net.stats.ejected_flits == sent
        assert net.in_flight_flits() == 0

    @pytest.mark.parametrize("eject_width", [1, 2])
    def test_multiset_delivery_exact(self, mesh4, eject_width):
        """No loss, no duplication: delivered multiset == injected multiset."""
        from collections import Counter

        rng = np.random.default_rng(9)
        net = BlessNetwork(mesh4, eject_width=eject_width)
        sent, got = Counter(), Counter()
        seq = np.zeros(16, dtype=np.int64)
        for c in range(1800):
            if c < 500:
                srcs = np.flatnonzero(rng.random(16) < 0.5)
                if srcs.size:
                    dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                    seqs = seq[srcs] % 256
                    ok = net.enqueue_requests(srcs, dests, 1, cycle=c, seq=seqs)
                    for s, d, q, o in zip(srcs, dests, seqs, ok):
                        if o:
                            sent[(int(s), int(d), int(q))] += 1
                    seq[srcs[ok]] += 1
            ej = net.step(c)
            for n, s, q in zip(ej.node, ej.src, ej.seq):
                got[(int(s), int(n), int(q))] += 1
            if c > 500 and sum(got.values()) == sum(sent.values()):
                break
        assert got == sent

    def test_starvation_counted_when_blocked(self, mesh4):
        """A node with a queued flit and no free port counts as starved."""
        net = BlessNetwork(mesh4)
        net.set_throttle_rates(np.zeros(16))
        # Saturate node 5's links with through traffic from its neighbors.
        rng = np.random.default_rng(5)
        for c in range(200):
            srcs = np.array([1, 4, 6, 9])
            dests = np.array([9, 6, 4, 1])
            net.enqueue_requests(srcs, dests, 1, cycle=c)
            net.enqueue_requests(np.array([5]), np.array([0]), 1, cycle=c)
            net.step(c)
        assert net.stats.starved_cycles.sum() > 0


class TestThrottling:
    def test_throttled_node_injects_less(self, mesh4):
        def run(rate):
            net = BlessNetwork(mesh4)
            rates = np.zeros(16)
            rates[0] = rate
            net.set_throttle_rates(rates)
            for c in range(400):
                net.enqueue_requests(np.array([0]), np.array([15]), 1, cycle=c)
                net.step(c)
            return net.stats.injected_per_node[0]

        assert run(0.9) < run(0.0) * 0.35

    def test_responses_bypass_throttle(self, mesh4):
        net = BlessNetwork(mesh4)
        net.set_throttle_rates(np.full(16, 0.75))
        for c in range(100):
            net.enqueue_replies(np.array([0]), np.array([15]), 1, cycle=c)
            net.step(c)
        # one reply injected every cycle despite the 75% request throttle
        assert net.stats.injected_per_node[0] >= 95

    def test_throttle_blocked_counts_starved(self, mesh4):
        net = BlessNetwork(mesh4)
        net.set_throttle_rates(np.full(16, 0.75))
        for c in range(128):
            net.enqueue_requests(np.array([0]), np.array([15]), 1, cycle=c)
            net.step(c)
        # Algorithm 3: blocked attempts set starved(cycle).
        assert net.starvation.rate()[0] == pytest.approx(0.75, abs=0.1)


class TestArbitrationPolicies:
    def test_rejects_unknown_policy(self, mesh4):
        with pytest.raises(ValueError):
            BlessNetwork(mesh4, arbitration="lifo")

    @pytest.mark.parametrize("policy", ["oldest_first", "youngest_first", "random"])
    def test_all_policies_deliver(self, mesh4, policy):
        net = BlessNetwork(mesh4, arbitration=policy, rng=np.random.default_rng(0))
        rng = np.random.default_rng(11)
        sent = 0
        for c in range(200):
            srcs = np.flatnonzero(rng.random(16) < 0.3)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
            net.step(c)
        for c in range(200, 2000):
            net.step(c)
            if net.stats.ejected_flits == sent:
                break
        assert net.stats.ejected_flits == sent

    def test_rejects_bad_eject_width(self, mesh4):
        with pytest.raises(ValueError):
            BlessNetwork(mesh4, eject_width=0)
        with pytest.raises(ValueError):
            BlessNetwork(mesh4, eject_width=5)


class TestStats:
    def test_utilization_bounded(self, mesh4):
        net = BlessNetwork(mesh4)
        rng = np.random.default_rng(2)
        for c in range(300):
            srcs = np.flatnonzero(rng.random(16) < 0.6)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                net.enqueue_requests(srcs, dests, 1, cycle=c)
            net.step(c)
        util = net.stats.utilization(mesh4.num_links)
        assert 0.0 < util <= 1.0

    def test_injection_latency_measured(self, mesh4):
        net = BlessNetwork(mesh4)
        net.enqueue_requests(np.array([0]), np.array([15]), 1, cycle=0)
        for c in range(5):
            net.step(c)
        # empty network: injected on the first step, zero queueing delay
        assert net.injection_latency_count == 1
        assert net.injection_latency_sum == 0
