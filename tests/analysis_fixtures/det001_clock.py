# repro: analysis-scope=sim
"""DET001 fixture: wall-clock and entropy sources (5 findings)."""

import os
import random
import time

import numpy as np


def snapshot():
    stamp = time.time()
    noise = os.urandom(8)
    pick = random.random()
    draw = np.random.random()
    unseeded = np.random.default_rng()
    allowed = time.time()  # repro: noqa[DET001]
    return stamp, noise, pick, draw, unseeded, allowed
