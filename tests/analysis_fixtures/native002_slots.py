"""NATIVE002 fixture: pointer-table slot drift (2 findings).

``PT_SLOT_NAMES`` drops ``PT_QUEUE`` relative to kernels_ok.c, and the
``arrays`` literal that realizes the table carries a third entry anyway.
"""

KERNEL_SOURCE = "kernels_ok.c"

PT_SLOT_NAMES = ("PT_RING", "PT_STATS")


class Accel:
    def __init__(self, ring, queue, stats):
        arrays = [ring, queue, stats]
        self._arrays = arrays
