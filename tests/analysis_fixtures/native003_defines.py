"""NATIVE003 fixture: #define mirror drift (2 findings).

One c-mirror constant disagrees with kernels_ok.c numerically; a second
pragma names a define that does not exist (a stale mirror).
"""

KERNEL_SOURCE = "kernels_ok.c"

RING_SPAN = 63  # repro: c-mirror[WIDGET_RING]
GHOST_LIMIT = 1  # repro: c-mirror[NO_SUCH_DEFINE]
