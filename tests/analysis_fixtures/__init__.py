"""Fixture corpus for :mod:`repro.analysis` (see test_analysis.py).

Each ``<rule>_*.py`` module deliberately violates exactly one rule;
``clean_ok.py`` exercises the idioms every rule must accept.  The
expected findings (rule id, line, message fragment) are asserted
exactly in ``tests/test_analysis.py`` — edit these files and that test
together.
"""
