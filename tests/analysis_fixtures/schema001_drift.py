"""SCHEMA001 fixture: field drift and a stale layout hash (3 findings)."""

RESULT_SCHEMA_VERSION = 7
RESULT_SCHEMA_FIELD_HASH = "not-the-right-hash"


class SimulationResult:
    def to_dict(self):
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "cycles": 1,
            "extra": 2,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["schema"], data["cycles"], data.get("legacy"))
