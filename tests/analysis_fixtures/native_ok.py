"""NATIVE fixture: a clean kernel mirror (0 findings)."""

KERNEL_SOURCE = "kernels_ok.c"

# cfg slots — mirror of the CFG_* enum in kernels_ok.c.
(
    CFG_NODES, CFG_PORTS, CFG_DEPTH_X, CFG_NUM,
) = range(4)

# ctr slots — mirror of the CTR_* enum in kernels_ok.c.
(
    CTR_TICKS, CTR_FLITS_X, CTR_DROPS, CTR_NUM,
) = range(4)

PT_SLOT_NAMES = ("PT_RING", "PT_QUEUE", "PT_STATS")

RING_SPAN = 64  # repro: c-mirror[WIDGET_RING]
RING_MASK = (1 << 6) - 1  # repro: c-mirror[WIDGET_MASK]
RATE_CAP = 128  # repro: c-mirror[GADGET_RATE]


class Accel:
    def __init__(self, ring, queue, stats):
        arrays = [ring, queue, stats]
        self._arrays = arrays
