# repro: analysis-scope=sim
"""CACHE001 fixture: cache-key-invisible config state (3 findings).

``JobSpec.canonical()`` lacks the generic ``config`` catch-all, so the
``width`` field read by the simulation shares a cache hash across runs
that differ in it; ``jitter`` is a read of a field that does not exist
at all (a stale read).  ``seed`` and the ``horizon`` property are fine:
``seed`` is a canonical spec field, ``horizon`` is derived state.
"""

import json
from dataclasses import dataclass


@dataclass
class SimulationConfig:
    seed: int = 1
    epoch: int = 1000
    width: int = 4

    @property
    def horizon(self):
        return self.epoch * 2


@dataclass
class JobSpec:
    seed: int = 1
    epoch: int = 1000

    def canonical(self):
        payload = {"seed": self.seed, "epoch": self.epoch}
        return json.dumps(payload, sort_keys=True)


def run(config: SimulationConfig):
    a = config.seed
    b = config.horizon
    c = config.jitter
    d = config.width
    return a, b, c, d
