"""CFG001 fixture: config/CLI/JobSpec drift (5 findings)."""

import argparse
from dataclasses import dataclass

CLI_NON_CONFIG_DESTS = frozenset({"cycles", "seed", "phantom"})


@dataclass
class SimulationConfig:
    seed: int = 1
    width: int = 4


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int)
    parser.add_argument("--width", type=int)
    parser.add_argument("--cycles", type=int)
    parser.add_argument("--typo-field", type=int)
    return parser


@dataclass
class JobSpec:
    seed: int
    cycles: int

    def canonical(self):  # repro: noqa[CACHE001] (cache001_spec.py's job)
        payload = {"seed": self.seed, "extra_key": 0}
        return payload
