# repro: analysis-scope=sim
"""Clean fixture: deterministic idioms every rule must accept."""

from repro.rng import child_rng


def totals(table, seed):
    rng = child_rng(seed, "clean")
    out = 0.0
    for _key, value in sorted(table.items()):
        out += value + float(rng.random())
    return out
