"""DET004 fixture: unstable numpy sort/argsort calls."""
# repro: analysis-scope=sim
import numpy as np

data = np.arange(8)
pairs = [(1, "b"), (0, "a")]

BAD_ARGSORT = np.argsort(data)
BAD_SORT = np.sort(data, axis=0)
BAD_METHOD = data.argsort()
BAD_KIND = np.argsort(data, kind="quicksort")
data.sort()
OK_STABLE = np.argsort(data, kind="stable")
OK_MERGESORT = np.sort(data, kind="mergesort")
pairs.sort(key=lambda pair: pair[0])
OK_BUILTIN = sorted(pairs)
SUPPRESSED = np.argsort(data)  # repro: noqa[DET004]
