# repro: analysis-scope=sim
"""RNG001 fixture: duplicate / non-literal child_rng labels (4 findings).

Line roles: the second and third ``"alpha"`` spawns duplicate the first
(the default-seed one is flagged as a fallback of the seeded primary),
``label`` is not a literal, and ``"omega"`` duplicates across functions.
"""

from repro.rng import child_rng


def streams(seed, label):
    a = child_rng(seed, "alpha")
    b = child_rng(seed, "alpha")
    c = child_rng(0, "alpha")
    d = child_rng(seed, label)
    e = child_rng(seed, "beta")
    return a, b, c, d, e


def more_streams(seed):
    return child_rng(seed, "omega")


def yet_more_streams(seed):
    return child_rng(seed, "omega")
