/* Fixture kernel source for the NATIVE rule tests.
 *
 * Deliberately uses define names that do not collide with the real
 * kernels.c so c-mirror pragmas in this corpus never cross-talk with
 * the production contract when both are analyzed in one run.
 */

#define WIDGET_RING 64
#define WIDGET_MASK ((1LL << 6) - 1)
#define WIDGET_MAX 0x7FLL
#define GADGET_BUCKETS 16
#define GADGET_RATE 128.0

/* cfg slots */
enum {
    CFG_NODES = 0, CFG_PORTS, CFG_DEPTH_X,
    CFG_NUM
};

/* ctr slots */
enum {
    CTR_TICKS = 0, CTR_FLITS_X, CTR_DROPS,
    CTR_NUM
};

/* pointer-table slots */
enum {
    PT_RING = 0, PT_QUEUE, PT_STATS,
    PT_NUM_SLOTS
};

int widget_step(long long *ring) { return (int)(ring[0] & WIDGET_MASK); }
