# repro: analysis-scope=sim
"""RNG002 fixture: backend-conditional RNG draws (3 findings).

A direct draw and an indirect draw (through a helper method the call
graph resolves) sit inside an ``if config.backend`` branch, and a third
draw hides in the ``else`` arm.  The unconditional draw at the end is
fine: it advances the stream identically on every backend.
"""


class Engine:
    def __init__(self, config, rng):
        self.config = config
        self._rng = rng

    def _refill(self):
        return self._rng.integers(0, 10, size=4)

    def step(self, data):
        if self.config.backend == "native":
            noise = self._rng.random()
            keys = self._refill()
        else:
            noise = 0.0
            keys = self._rng.permutation(data)
        steady = self._rng.integers(0, 4)
        return noise, keys, steady
