"""REG001 fixture: registry/CLI/recipe-validator drift (3 findings).

The entry table declares a duplicate name, the literal ``--controller``
choices omit two registry entries, and ``CONTROLLER_KINDS`` claims the
recipe-less (CLI-only) entry as spec-buildable.
"""

import argparse
from dataclasses import dataclass


@dataclass(frozen=True)
class ControllerEntry:
    name: str
    description: str
    recipe: str


_ENTRIES = (
    ControllerEntry("none", "no control", '("none",)'),
    ControllerEntry("central", "paper hub", '("central",)'),
    ControllerEntry("live", "cli-only live object", "—"),
    ControllerEntry("central", "duplicate declaration", '("central",)'),
)

CONTROLLER_KINDS = ("none", "central", "live")


def build_registry_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--controller", choices=("none",), default="none")
    return parser
