"""PHASE001 fixture: phase-contract drift (4 findings)."""

PHASE_WRITES = {
    "step_network": ("ejected",),
    "step_epoch": ("counter", "ghost"),
    "step_missing": (),
}


class MiniSim:
    def step_network(self, cycle):
        self.ejected = cycle
        self.sneaky = cycle

    def step_epoch(self, cycle):
        self.counter = cycle
        self._refresh()

    def _refresh(self):
        self.hidden = 0
