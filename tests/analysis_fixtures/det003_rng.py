# repro: analysis-scope=sim
"""DET003 fixture: ad-hoc seeded RNG constructors (2 findings)."""

import numpy as np
from numpy.random import PCG64

from repro.rng import child_rng


def make_streams(seed):
    direct = np.random.default_rng(seed)
    bitgen = PCG64(seed=seed)
    shared = np.random.default_rng(123)  # repro: noqa[DET003]
    good = child_rng(seed, "fixture")
    return direct, bitgen, shared, good
