"""NATIVE001 fixture: reordered/truncated enum mirrors (2 findings).

The CFG mirror swaps the first two members relative to kernels_ok.c;
the CTR mirror drops one member (and unpacks a mismatched range).
"""

KERNEL_SOURCE = "kernels_ok.c"

(
    CFG_PORTS, CFG_NODES, CFG_DEPTH_X, CFG_NUM,
) = range(4)

(
    CTR_TICKS, CTR_FLITS_X, CTR_NUM,
) = range(3)
