# repro: analysis-scope=sim
"""DET002 fixture: unordered dict/set iteration (4 findings)."""


def totals(table):
    out = 0.0
    for key in table.keys():
        out += table[key]
    values = [v for v in table.values()]
    tags = {t for t in {"a", "b"}}
    for item in set(values):
        out += item
    for key in sorted(table.keys()):
        out += table[key]
    for _pair in table.items():  # repro: noqa
        out += 1.0
    return out, values, tags
