"""Unit tests for the shared-cache service model."""

import numpy as np
import pytest

from repro.cpu.memory import MemorySystem


class FakeNetwork:
    def __init__(self, full_nodes=()):
        self.replies = []
        self.full_nodes = set(full_nodes)

    def enqueue_replies(self, nodes, dest, flits, cycle=0, seq=0):
        nodes = np.asarray(nodes)
        ok = np.array([n not in self.full_nodes for n in nodes.tolist()])
        for n, d, q, o in zip(nodes.tolist(), np.asarray(dest).tolist(),
                              np.broadcast_to(seq, nodes.shape).tolist(), ok):
            if o:
                self.replies.append((cycle, n, d, q))
        return ok


class TestServiceLatency:
    def test_reply_after_exact_latency(self):
        """A request ejected during cycle c (reported after step(c))
        produces its reply during step(c + l2_latency)."""
        net = FakeNetwork()
        mem = MemorySystem(net, l2_latency=6)
        for c in range(20):
            mem.step(c)
            if c == 0:
                mem.on_requests(np.array([3]), np.array([7]), np.array([9]))
        assert len(net.replies) == 1
        cycle, server, requester, seq = net.replies[0]
        assert cycle == 6
        assert (server, requester, seq) == (3, 7, 9)

    def test_latency_one(self):
        net = FakeNetwork()
        mem = MemorySystem(net, l2_latency=1)
        mem.step(0)
        mem.on_requests(np.array([0]), np.array([1]), np.array([0]))
        mem.step(1)
        assert net.replies and net.replies[0][0] == 1

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            MemorySystem(FakeNetwork(), l2_latency=0)

    def test_empty_request_batches_ignored(self):
        net = FakeNetwork()
        mem = MemorySystem(net, l2_latency=3)
        mem.on_requests(np.zeros(0), np.zeros(0), np.zeros(0))
        for c in range(10):
            mem.step(c)
        assert not net.replies
        assert mem.pending_replies() == 0


class TestSerialization:
    def test_one_reply_per_server_per_cycle(self):
        """Two requests hitting one slice: replies on consecutive cycles."""
        net = FakeNetwork()
        mem = MemorySystem(net, l2_latency=4)
        for c in range(20):
            mem.step(c)
            if c == 0:
                mem.on_requests(np.array([5, 5]), np.array([1, 2]), np.array([0, 0]))
        cycles = [r[0] for r in net.replies]
        assert cycles == [4, 5]
        assert {r[2] for r in net.replies} == {1, 2}

    def test_full_queue_defers_and_retries(self):
        net = FakeNetwork(full_nodes=[5])
        mem = MemorySystem(net, l2_latency=2)
        mem.on_requests(np.array([5]), np.array([1]), np.array([0]))
        for c in range(5):
            mem.step(c)
        assert not net.replies
        assert mem.pending_replies() == 1
        net.full_nodes = set()
        mem.step(5)
        assert len(net.replies) == 1

    def test_no_request_lost_under_bursts(self):
        rng = np.random.default_rng(0)
        net = FakeNetwork()
        mem = MemorySystem(net, l2_latency=3)
        total = 0
        for c in range(100):
            servers = rng.integers(0, 4, size=rng.integers(0, 6))
            if servers.size:
                mem.on_requests(servers, servers + 10, np.zeros(servers.size))
                total += servers.size
            mem.step(c)
        for c in range(100, 300):
            mem.step(c)
        assert len(net.replies) == total
        assert mem.pending_replies() == 0
        assert mem.requests_serviced == total
        assert mem.replies_issued == total
