"""Tests for repro.harness: job model, cache, and parallel executor."""

import json
import os
import pathlib
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.experiments.sweeps import scaling_sweep
from repro.harness import (
    HarnessReport,
    JobSpec,
    ResultCache,
    run_job,
    run_jobs,
)
from repro.harness.executor import default_jobs, resolve_jobs
from repro.sim.results import RESULT_SCHEMA_VERSION, SimulationResult

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow


def small_spec(**overrides) -> JobSpec:
    kw = dict(
        app_names=("mcf",) * 16,
        cycles=1200,
        seed=1,
        epoch=400,
    )
    kw.update(overrides)
    return JobSpec(**kw)


def results_equal(a: SimulationResult, b: SimulationResult) -> bool:
    return a.to_dict() == b.to_dict()


class TestJobSpec:
    def test_content_hash_is_deterministic(self):
        assert small_spec().content_hash() == small_spec().content_hash()

    def test_hash_differs_on_any_field(self):
        base = small_spec().content_hash()
        assert small_spec(seed=2).content_hash() != base
        assert small_spec(cycles=1300).content_hash() != base
        assert small_spec(network="buffered").content_hash() != base
        assert small_spec(controller=("central",)).content_hash() != base

    def test_hash_independent_of_config_order(self):
        a = small_spec(config=(("a", 1), ("b", 2)))
        b = small_spec(config=(("b", 2), ("a", 1)))
        assert a.content_hash() == b.content_hash()

    def test_hash_stable_across_processes(self):
        """The cache key must not depend on PYTHONHASHSEED or process
        state — it is the on-disk identity of a result."""
        script = (
            "from repro.harness import JobSpec; "
            "print(JobSpec(('mcf',)*16, cycles=1200, seed=1, "
            "epoch=400).content_hash())"
        )
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        hashes = set()
        for hashseed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=hashseed)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            hashes.add(proc.stdout.strip())
        assert hashes == {small_spec().content_hash()}

    def test_rejects_unknown_controller(self):
        with pytest.raises(ValueError):
            small_spec(controller=("pid",))
        with pytest.raises(TypeError):
            small_spec(controller="central")

    def test_hierarchical_recipe_validation(self):
        # Every legal arity is accepted...
        for recipe in (("hierarchical",), ("hierarchical", 4),
                       ("hierarchical", 0, "local"),
                       ("hierarchical", 16, "global")):
            assert small_spec(controller=recipe).controller == recipe
        # ...and malformed domains/modes are rejected eagerly.
        with pytest.raises(ValueError, match="domain count"):
            small_spec(controller=("hierarchical", -1))
        with pytest.raises(ValueError, match="domain count"):
            small_spec(controller=("hierarchical", "four"))
        with pytest.raises(ValueError, match="domain count"):
            small_spec(controller=("hierarchical", True))
        with pytest.raises(ValueError, match="mode"):
            small_spec(controller=("hierarchical", 4, "anarchic"))
        with pytest.raises(ValueError, match="at most"):
            small_spec(controller=("hierarchical", 4, "local", "extra"))

    def test_hierarchical_recipe_builds_controller(self):
        from repro.control.hierarchical import HierarchicalController
        from repro.harness.jobs import build_controller

        ctl = build_controller(
            small_spec(controller=("hierarchical", 4, "local"), epoch=400)
        )
        assert isinstance(ctl, HierarchicalController)
        assert ctl.num_domains == 4
        assert ctl.mode == "local"
        assert ctl.params.epoch == 400
        # Defaults: topology-chosen count, global reconciliation.
        default = build_controller(small_spec(controller=("hierarchical",)))
        assert default.num_domains == 0 and default.mode == "global"

    def test_hierarchical_hash_distinguishes_layouts(self):
        base = small_spec(controller=("hierarchical",)).content_hash()
        assert small_spec(
            controller=("hierarchical", 4)
        ).content_hash() != base
        assert small_spec(
            controller=("hierarchical", 0, "local")
        ).content_hash() != base

    def test_hierarchical_hash_stable_across_processes(self):
        """The hierarchical recipe rides the same canonical-JSON hash
        contract as every other spec field."""
        spec = small_spec(controller=("hierarchical", 4, "local"))
        script = (
            "from repro.harness import JobSpec; "
            "print(JobSpec(('mcf',)*16, cycles=1200, seed=1, epoch=400, "
            "controller=('hierarchical', 4, 'local')).content_hash())"
        )
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="7")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        assert proc.stdout.strip() == spec.content_hash()

    def test_hierarchical_job_roundtrips_through_cache(self, tmp_path):
        spec = small_spec(
            app_names=("mcf",) * 64,
            controller=("hierarchical", 4, "global"),
            config=(("model_control_traffic", True), ("profile", True)),
        )
        res = run_job(spec)
        assert res.perf.control_domains == 4
        cache = ResultCache(tmp_path)
        cache.put(spec, res)
        hit = cache.get(spec)
        assert results_equal(hit, res)
        assert hit.perf.control_domains == 4
        assert hit.perf.per_domain_control_flits == \
            res.perf.per_domain_control_flits

    def test_rejects_non_scalar_config(self):
        with pytest.raises(TypeError):
            small_spec(config=(("faults", object()),))

    def test_for_workload_lifts_config_fields(self):
        from repro.traffic.workloads import make_homogeneous_workload

        wl = make_homogeneous_workload("mcf", 16)
        spec = JobSpec.for_workload(
            wl, 1200, config={"network": "buffered", "mshr_limit": 8}
        )
        assert spec.network == "buffered"
        assert spec.config == (("mshr_limit", 8),)
        assert spec.category == "H"

    def test_with_config_merges_and_rehashes(self):
        base = small_spec(config=(("mshr_limit", 8),))
        profiled = base.with_config(profile=True)
        assert profiled.config == (("mshr_limit", 8), ("profile", True))
        assert profiled.content_hash() != base.content_hash()
        # Overriding an existing scalar replaces it, everything else kept.
        assert base.with_config(mshr_limit=4).config == (("mshr_limit", 4),)
        assert base.with_config(mshr_limit=8) == base

    def test_run_job_matches_run_workload(self):
        from repro.experiments.runner import run_workload
        from repro.traffic.workloads import make_homogeneous_workload

        spec = small_spec()
        direct = run_workload(
            make_homogeneous_workload("mcf", 16), 1200, epoch=400, seed=1
        )
        assert results_equal(run_job(spec), direct)


class TestResultRoundtrip:
    def test_to_dict_from_dict_is_lossless(self):
        res = run_job(small_spec())
        clone = SimulationResult.from_dict(res.to_dict())
        assert results_equal(res, clone)
        np.testing.assert_array_equal(res.ipc, clone.ipc)
        np.testing.assert_array_equal(res.latency_hist, clone.latency_hist)
        assert clone.epochs == res.epochs
        assert clone.guardrails == res.guardrails
        assert clone.power == res.power

    def test_roundtrip_survives_strict_json_and_inf(self):
        # Idle nodes have ipf = inf.  The serialized form must be strict
        # RFC-8259 JSON (allow_nan=False must not raise), encoding the
        # non-finite entries as null and restoring them losslessly.
        spec = small_spec(app_names=("mcf", None) * 8)
        res = run_job(spec)
        assert np.isinf(res.ipf).any()
        text = json.dumps(res.to_dict(), allow_nan=False)
        assert "Infinity" not in text and "NaN" not in text
        clone = SimulationResult.from_dict(json.loads(text))
        assert results_equal(res, clone)
        assert np.isinf(clone.ipf).any()
        np.testing.assert_array_equal(res.ipf, clone.ipf)

    def test_result_is_picklable(self):
        # The old closure field made results unpicklable, which forbade
        # shipping them across ProcessPoolExecutor boundaries.
        res = run_job(small_spec())
        clone = pickle.loads(pickle.dumps(res))
        assert results_equal(res, clone)
        assert clone.latency_percentile(50) == res.latency_percentile(50)

    def test_percentile_from_stored_samples(self):
        res = run_job(small_spec())
        p50, p99 = res.latency_percentile(50), res.latency_percentile(99)
        assert 0 < p50 <= p99 <= res.max_net_latency

    def test_from_dict_rejects_stale_schema(self):
        payload = run_job(small_spec()).to_dict()
        payload["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            SimulationResult.from_dict(payload)


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        res = run_job(spec)
        cache.put(spec, res)
        assert spec in cache
        assert len(cache) == 1
        hit = cache.get(spec)
        assert results_equal(hit, res)
        assert cache.stats() == {"hits": 1, "misses": 0}

    def test_miss_on_absent_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(small_spec()) is None
        assert cache.stats() == {"hits": 0, "misses": 1}

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        cache.put(spec, run_job(spec))
        assert cache.get(small_spec(seed=2)) is None

    def test_schema_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, schema_version=RESULT_SCHEMA_VERSION)
        spec = small_spec()
        old.put(spec, run_job(spec))
        bumped = ResultCache(tmp_path, schema_version=RESULT_SCHEMA_VERSION + 1)
        assert bumped.get(spec) is None
        assert bumped.key(spec) != old.key(spec)

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, code_version="1.0.0")
        spec = small_spec()
        old.put(spec, run_job(spec))
        assert ResultCache(tmp_path, code_version="2.0.0").get(spec) is None

    def test_corrupted_entry_falls_back_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        cache.put(spec, run_job(spec))
        path = cache.path(spec)
        path.write_text("{ truncated garbage")
        assert cache.get(spec) is None
        assert not path.exists()  # dropped so the rerun can replace it

    def test_truncated_payload_falls_back_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        cache.put(spec, run_job(spec))
        payload = json.loads(cache.path(spec).read_text())
        del payload["result"]["ipc"]
        cache.path(spec).write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_inactive_nodes_roundtrip_as_strict_json(self, tmp_path):
        """Regression: a run with idle nodes has ipf = inf, which the
        json module used to serialize as the non-RFC literal ``Infinity``
        — corrupting the on-disk entry for any strict parser.  The cache
        now writes with ``allow_nan=False`` and the entry must both parse
        strictly and restore the infinities exactly."""
        cache = ResultCache(tmp_path)
        spec = small_spec(app_names=("mcf", None) * 8)
        res = run_job(spec)
        assert np.isinf(res.ipf).any()
        path = cache.put(spec, res)
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text
        json.loads(text, parse_constant=lambda name: pytest.fail(
            f"non-RFC JSON constant {name!r} in cache entry"
        ))
        hit = cache.get(spec)
        assert results_equal(hit, res)
        np.testing.assert_array_equal(hit.ipf, res.ipf)


class TestRunJobs:
    def test_results_align_with_specs(self, tmp_path):
        specs = [small_spec(seed=s) for s in (3, 1, 2)]
        report = run_jobs(specs, jobs=1, cache=False)
        assert isinstance(report, HarnessReport)
        assert len(report.results) == 3
        for spec, res in zip(specs, report.results):
            assert results_equal(res, run_job(spec))

    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        spec = small_spec()
        report = run_jobs([spec], jobs=1, cache=tmp_path)
        assert report.executed == 1 and report.cache_hits == 0

        # Poison execution: any attempt to actually run must blow up.
        def boom(_spec):
            raise AssertionError("cache hit must not execute the job")

        monkeypatch.setattr("repro.harness.executor.run_job", boom)
        warm = run_jobs([spec], jobs=1, cache=tmp_path)
        assert warm.cache_hits == 1 and warm.executed == 0
        assert warm.all_cached
        assert results_equal(warm.results[0], report.results[0])

    def test_spec_change_causes_execution(self, tmp_path):
        run_jobs([small_spec()], jobs=1, cache=tmp_path)
        report = run_jobs([small_spec(cycles=1300)], jobs=1, cache=tmp_path)
        assert report.executed == 1

    def test_guardrail_abort_records_failure(self):
        # A zero wall-clock budget trips SimulationTimeout immediately;
        # the sweep records the failure and keeps going.
        specs = [small_spec(deadline=0.0), small_spec()]
        report = run_jobs(specs, jobs=1, cache=False)
        assert report.results[0] is None
        assert report.failed == 1
        assert "SimulationTimeout" in report.records[0].error
        assert report.results[1] is not None
        assert "1 failed" in report.summary()

    def test_failed_jobs_are_not_cached(self, tmp_path):
        spec = small_spec(deadline=0.0)
        run_jobs([spec], jobs=1, cache=tmp_path)
        cache = ResultCache(tmp_path)
        assert cache.get(spec) is None

    def test_progress_callback_sees_every_record(self):
        seen = []
        run_jobs([small_spec(), small_spec(seed=2)], jobs=1,
                 cache=False, progress=seen.append)
        assert len(seen) == 2
        assert all(not r.cached and r.ok and r.seconds > 0 for r in seen)

    def test_rejects_non_spec_input(self):
        with pytest.raises(TypeError):
            run_jobs(["not a spec"], jobs=1, cache=False)

    def test_jobs_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() == 1
        assert resolve_jobs(0) >= 1

    def test_cache_dir_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_jobs([small_spec()], jobs=1)
        assert len(ResultCache(tmp_path)) == 1
        # cache=False forces caching off even with the env var set.
        run_jobs([small_spec(seed=9)], jobs=1, cache=False)
        assert len(ResultCache(tmp_path)) == 1


class TestPerfSummary:
    def test_aggregates_executed_jobs(self, tmp_path):
        specs = [small_spec(seed=s).with_config(profile=True) for s in (1, 2)]
        report = run_jobs(specs, jobs=1, cache=tmp_path)
        summary = report.perf_summary()
        assert summary["jobs"] == 2 and summary["executed"] == 2
        assert summary["cache_hit_rate"] == 0.0
        assert summary["sim_cycles"] == 2 * 1200
        assert summary["sim_flits"] > 0
        assert summary["cycles_per_sec"] > 0
        # Profiled specs contribute their phase attribution.
        assert summary["phase_seconds"]["network"] > 0
        assert sum(summary["phase_shares"].values()) == pytest.approx(1.0)

        # A warm re-run is all cache hits: no simulation time to report.
        warm = run_jobs(specs, jobs=1, cache=tmp_path).perf_summary()
        assert warm["cache_hit_rate"] == 1.0
        assert warm["executed"] == 0
        assert warm["sim_cycles"] == 0 and warm["cycles_per_sec"] == 0.0

    def test_unprofiled_jobs_report_no_phases(self):
        report = run_jobs([small_spec()], jobs=1, cache=False)
        summary = report.perf_summary()
        assert summary["phase_seconds"] == {}
        assert summary["phase_shares"] == {}
        assert summary["sim_cycles"] == 1200

    def test_profiled_spec_result_carries_perf(self, tmp_path):
        spec = small_spec().with_config(profile=True)
        report = run_jobs([spec], jobs=1, cache=tmp_path)
        assert report.results[0].perf is not None
        assert report.results[0].perf.cycles == 1200
        # And the perf snapshot survives the on-disk cache round-trip.
        warm = run_jobs([spec], jobs=1, cache=tmp_path)
        assert warm.all_cached
        assert warm.results[0].perf is not None
        assert warm.results[0].perf.cycles == 1200


class TestParallelDeterminism:
    def test_parallel_run_jobs_matches_serial(self):
        specs = [small_spec(seed=s, cycles=1100) for s in (1, 2, 3, 4)]
        serial = run_jobs(specs, jobs=1, cache=False)
        parallel = run_jobs(specs, jobs=4, cache=False)
        assert serial.workers == 1 and parallel.workers == 4
        for a, b in zip(serial.results, parallel.results):
            assert results_equal(a, b)

    def test_scaling_sweep_parallel_identical_to_serial(self):
        """Satellite: a 3-point scaling_sweep with jobs=4 is numerically
        identical to jobs=1 — same seeds, same epochs, same arrays."""
        kw = dict(
            cycles_for=lambda n: 1200,
            networks=("bless",),
            epoch=400,
            seed=2,
        )
        serial = scaling_sweep((16, 25, 36), cache=False, jobs=1, **kw)
        parallel = scaling_sweep((16, 25, 36), cache=False, jobs=4, **kw)
        assert [s for s, _ in serial["bless"]] == [16, 25, 36]
        for (size_s, res_s), (size_p, res_p) in zip(
            serial["bless"], parallel["bless"]
        ):
            assert size_s == size_p
            assert results_equal(res_s, res_p)
            np.testing.assert_array_equal(res_s.ipc, res_p.ipc)
            assert res_s.epochs == res_p.epochs
