"""Property-based tests (hypothesis) for core data structures and
network invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Mesh2D, Torus2D
from repro.network import BlessNetwork, BufferedNetwork
from repro.network.flit import (
    MAX_NODES,
    SEQ_RING,
    meta_dest,
    meta_hops,
    meta_kind,
    meta_seq,
    meta_src,
    pack_meta,
    HOP_ONE,
)
from repro.network.injection import InjectionThrottleGate, StarvationMeter
from repro.network.queues import FlitQueueArray

_slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# Flit packing
# ---------------------------------------------------------------------------
@given(
    dest=st.integers(0, MAX_NODES - 1),
    src=st.integers(0, MAX_NODES - 1),
    kind=st.integers(0, 2),
    seq=st.integers(0, SEQ_RING - 1),
    hops=st.integers(0, 2000),
)
def test_meta_roundtrip(dest, src, kind, seq, hops):
    meta = pack_meta(dest, src, kind, seq) + hops * HOP_ONE
    assert meta_dest(meta) == dest
    assert meta_src(meta) == src
    assert meta_kind(meta) == kind
    assert meta_seq(meta) == seq
    assert meta_hops(meta) == hops


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
@given(
    w=st.integers(2, 12),
    h=st.integers(2, 12),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_mesh_xy_route_length_equals_distance(w, h, data):
    mesh = Mesh2D(w, h)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dest = data.draw(st.integers(0, mesh.num_nodes - 1))
    node, hops = src, 0
    while node != dest:
        p0, _ = mesh.productive_ports(np.array([node]), np.array([dest]))
        assert mesh.link_exists[node, p0[0]]
        node = int(mesh.neighbor[node, p0[0]])
        hops += 1
        assert hops <= mesh.max_distance()
    assert hops == mesh.distance(src, dest)


@given(w=st.integers(3, 10), data=st.data())
@settings(max_examples=40, deadline=None)
def test_torus_distance_never_exceeds_mesh_distance(w, data):
    mesh, torus = Mesh2D(w), Torus2D(w)
    src = data.draw(st.integers(0, w * w - 1))
    dest = data.draw(st.integers(0, w * w - 1))
    assert torus.distance(src, dest) <= mesh.distance(src, dest)


# ---------------------------------------------------------------------------
# Queues
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 3), st.integers(1, 3)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=50, deadline=None)
def test_queue_matches_reference_fifo(ops):
    """The vectorized queue behaves exactly like per-node python deques."""
    q = FlitQueueArray(4, 5)
    reference = {n: [] for n in range(4)}
    for is_push, node, flits in ops:
        if is_push:
            ok = q.push(np.array([node]), np.array([node + 10]), 0, flits)
            # Acceptance must track capacity exactly: an entry is taken
            # iff the reference deque has room, and never beyond it.
            assert bool(ok[0]) == (len(reference[node]) < 5)
            if ok[0]:
                reference[node].append([node + 10, flits])
        elif reference[node]:
            dest, _, _, _, done = q.take_flit(np.array([node]))
            head = reference[node][0]
            assert dest[0] == head[0]
            head[1] -= 1
            assert done[0] == (head[1] == 0)
            if head[1] == 0:
                reference[node].pop(0)
    for n in range(4):
        assert q.count[n] == len(reference[n])


# ---------------------------------------------------------------------------
# Starvation meter / throttle gate
# ---------------------------------------------------------------------------
@given(bits=st.lists(st.booleans(), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_starvation_meter_equals_reference_window(bits):
    window = 16
    meter = StarvationMeter(1, window)
    for i, b in enumerate(bits):
        meter.update(np.array([b]))
        recent = bits[max(0, i + 1 - window): i + 1]
        expected = sum(recent) / min(window, i + 1)
        assert meter.rate()[0] == expected


@given(rate=st.floats(0.0, 0.99), attempts=st.integers(128, 1024))
@settings(max_examples=30, deadline=None)
def test_throttle_gate_blocks_requested_fraction(rate, attempts):
    gate = InjectionThrottleGate(1)
    gate.set_rates(np.array([rate]))
    allowed = sum(int(gate.decide(np.array([True]))[0]) for _ in range(attempts))
    expected = 1.0 - rate
    # Binomial deviation: std <= 0.5/sqrt(n); 5 sigma keeps the bound
    # sound at attempts=128 where hypothesis can otherwise shrink to a
    # ~4-sigma sample and flake a fixed 0.15 tolerance.
    tolerance = 0.05 + 2.5 / np.sqrt(attempts)
    assert abs(allowed / attempts - expected) < tolerance


def _blocked_over_full_period(rate: float) -> int:
    """Blocked attempts over one full 128-attempt counter period."""
    gate = InjectionThrottleGate(1)
    gate.set_rates(np.array([rate]))
    period = InjectionThrottleGate.MAX_COUNT
    return sum(
        int(not gate.decide(np.array([True]))[0]) for _ in range(period)
    )


@given(k=st.integers(0, InjectionThrottleGate.MAX_COUNT))
@settings(max_examples=40, deadline=None)
def test_throttle_gate_period_is_exact_at_counter_resolution(k):
    """Boundary pin (Algorithm 3): over one full counter period of a
    node that tries every cycle, the gate blocks *exactly* the quantized
    requested fraction — ``ceil(rate * 128)`` attempts, i.e. ``k`` of 128
    for every representable rate ``k/128``.  This is the deterministic
    contract the 7-bit hardware counter provides; any off-by-one in the
    threshold comparison breaks it."""
    period = InjectionThrottleGate.MAX_COUNT
    assert _blocked_over_full_period(k / period) == k


@given(rate=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_throttle_gate_quantizes_arbitrary_rates_upward(rate):
    """Rates between counter steps block ``ceil(rate * 128)`` attempts:
    the counter blocks while strictly below ``rate * 128``."""
    period = InjectionThrottleGate.MAX_COUNT
    expected = int(np.ceil(rate * period))
    assert _blocked_over_full_period(rate) == expected


def test_throttle_gate_boundary_rates_pinned():
    """The ISSUE's explicit boundary table: 0, 1/128, 1/2, 127/128, 1."""
    for rate, blocked in [(0.0, 0), (1 / 128, 1), (0.5, 64),
                          (127 / 128, 127), (1.0, 128)]:
        assert _blocked_over_full_period(rate) == blocked


# ---------------------------------------------------------------------------
# Network conservation under random traffic
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(0, 10_000),
    load=st.floats(0.05, 0.8),
    eject_width=st.integers(1, 2),
)
@_slow
@pytest.mark.slow
def test_bless_conserves_and_delivers_everything(seed, load, eject_width):
    rng = np.random.default_rng(seed)
    net = BlessNetwork(Mesh2D(4), eject_width=eject_width)
    sent = 0
    for c in range(150):
        srcs = np.flatnonzero(rng.random(16) < load)
        if srcs.size:
            dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
            sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
        net.step(c)
        assert net.stats.injected_flits == (
            net.stats.ejected_flits + net.in_flight_flits()
        )
    for c in range(150, 2500):
        net.step(c)
        if net.stats.ejected_flits == sent:
            break
    assert net.stats.ejected_flits == sent
    assert net.in_flight_flits() == 0


@given(seed=st.integers(0, 10_000), load=st.floats(0.05, 0.8))
@_slow
@pytest.mark.slow
def test_buffered_conserves_and_delivers_everything(seed, load):
    rng = np.random.default_rng(seed)
    net = BufferedNetwork(Mesh2D(4), buffer_capacity=4)
    sent = 0
    for c in range(150):
        srcs = np.flatnonzero(rng.random(16) < load)
        if srcs.size:
            dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
            sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
        net.step(c)
        assert net.buffers.count.max() <= 4
    for c in range(150, 4000):
        net.step(c)
        if net.stats.ejected_flits == sent:
            break
    assert net.stats.ejected_flits == sent


@given(seed=st.integers(0, 10_000))
@_slow
@pytest.mark.slow
def test_bless_age_invariant_oldest_never_deflected_forever(seed):
    """Livelock freedom: with Oldest-First the network always drains."""
    rng = np.random.default_rng(seed)
    net = BlessNetwork(Torus2D(4))
    sent = 0
    for c in range(100):
        srcs = np.flatnonzero(rng.random(16) < 0.9)
        if srcs.size:
            dests = (srcs + 7 + rng.integers(0, 9, srcs.size)) % 16
            mask = dests != srcs
            sent += int(
                net.enqueue_requests(srcs[mask], dests[mask], 1, cycle=c).sum()
            )
        net.step(c)
    for c in range(100, 5000):
        net.step(c)
        if net.stats.ejected_flits == sent:
            break
    assert net.stats.ejected_flits == sent
