"""Tests for the cross-layer contract rules (NATIVE/RNG/CACHE/REG) and
the analyzer infrastructure added alongside them (SARIF output, the
findings baseline, and the AST cache).

Same three layers as test_analysis.py:

- exact per-rule findings over the contract fixtures in
  ``tests/analysis_fixtures/``;
- drift demonstrations against the *real* kernels.c / accel.py pair:
  a reordered enum, a dropped pointer-table slot, and a changed
  #define must each produce the corresponding NATIVE finding, while
  the unmutated pair stays clean;
- meta-tests: the full tree (src, tests, benchmarks — fixtures
  excluded) exits 0, and the committed baseline is empty.
"""

import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    RULE_IDS,
    AnalysisCache,
    analyze,
    sarif_document,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "analysis_fixtures"
KERNELS_C = REPO / "src" / "repro" / "native" / "kernels.c"
ACCEL_PY = REPO / "src" / "repro" / "native" / "accel.py"
BASELINE = REPO / "analysis_baseline.json"

NATIVE_RULES = ["NATIVE001", "NATIVE002", "NATIVE003"]


def findings_for(path, **kwargs):
    return analyze([str(path)], **kwargs)


def as_tuples(findings):
    return [(f.rule, f.line) for f in findings]


def run_cli(*args, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# Fixture corpus: exact findings per rule
# ----------------------------------------------------------------------
def test_native_clean_mirror_has_no_findings():
    assert findings_for(FIXTURES / "native_ok.py") == []


def test_native001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "native001_reorder.py")
    assert as_tuples(findings) == [("NATIVE001", 9), ("NATIVE001", 13)]
    reordered, dropped = findings
    assert "CFG_* mirror drifted" in reordered.message
    assert "position 0 is 'CFG_NODES'" in reordered.message
    assert "'CFG_PORTS' here" in reordered.message
    assert "CTR_* mirror drifted" in dropped.message
    assert "position 2 is 'CTR_DROPS'" in dropped.message


def test_native002_fixture_exact_findings():
    findings = findings_for(FIXTURES / "native002_slots.py")
    assert as_tuples(findings) == [("NATIVE002", 9), ("NATIVE002", 14)]
    table, arrays = findings
    assert "PT_SLOT_NAMES drifted from the PT_* enum" in table.message
    assert "position 1 is 'PT_QUEUE'" in table.message
    assert "pointer table has 3 entries" in arrays.message
    assert "declares 2 slots" in arrays.message


def test_native003_fixture_exact_findings():
    findings = findings_for(FIXTURES / "native003_defines.py")
    assert as_tuples(findings) == [("NATIVE003", 9), ("NATIVE003", 10)]
    drifted, stale = findings
    assert "mirror of WIDGET_RING is 63" in drifted.message
    assert "defines 64" in drifted.message
    assert "c-mirror[NO_SUCH_DEFINE] names no #define" in stale.message


def test_rng001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "rng001_labels.py")
    assert as_tuples(findings) == [
        ("RNG001", 14),
        ("RNG001", 15),
        ("RNG001", 16),
        ("RNG001", 26),
    ]
    messages = [f.message for f in findings]
    assert "duplicate child_rng label 'alpha'" in messages[0]
    assert "duplicate child_rng label 'alpha'" in messages[1]
    assert "must be a string literal" in messages[2]
    assert "duplicate child_rng label 'omega'" in messages[3]
    # the primary spawn sites and the unique 'beta' label are clean
    assert {13, 17, 22}.isdisjoint({f.line for f in findings})


def test_rng002_fixture_exact_findings():
    findings = findings_for(FIXTURES / "rng002_backend.py")
    assert as_tuples(findings) == [
        ("RNG002", 21),
        ("RNG002", 22),
        ("RNG002", 25),
    ]
    direct, indirect, orelse = findings
    assert "draws from an RNG stream" in direct.message
    assert "calls Engine._refill(), which draws" in indirect.message
    assert "draws from an RNG stream" in orelse.message
    # the unconditional draw after the branch is fine
    assert 26 not in {f.line for f in findings}


def test_cache001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "cache001_spec.py")
    assert as_tuples(findings) == [
        ("CACHE001", 31),
        ("CACHE001", 39),
        ("CACHE001", 40),
    ]
    catch_all, stale, unreachable = findings
    assert "no generic 'config' catch-all" in catch_all.message
    assert "SimulationConfig.jitter" in stale.message
    assert "not a declared field, property, or method" in stale.message
    assert "config field 'width' is read here but unreachable" in (
        unreachable.message
    )
    # reads of canonical fields and derived properties are clean
    assert {37, 38}.isdisjoint({f.line for f in findings})


def test_reg001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "reg001_registry.py")
    assert as_tuples(findings) == [
        ("REG001", 23),
        ("REG001", 26),
        ("REG001", 31),
    ]
    duplicate, kinds, choices = findings
    assert "duplicate registry entry 'central'" in duplicate.message
    assert "CONTROLLER_KINDS drifted" in kinds.message
    assert "'live'" in kinds.message
    assert "--controller choices drifted" in choices.message
    assert "'central'" in choices.message and "'live'" in choices.message


# ----------------------------------------------------------------------
# Drift demonstrations against the real kernels.c / accel.py pair
# ----------------------------------------------------------------------
@pytest.fixture()
def native_pair(tmp_path):
    """Copy the real native module pair into a scratch directory."""
    shutil.copy(KERNELS_C, tmp_path / "kernels.c")
    shutil.copy(ACCEL_PY, tmp_path / "accel.py")
    return tmp_path


def _native_findings(pair_dir):
    return analyze([str(pair_dir / "accel.py")], select=NATIVE_RULES)


def test_real_native_pair_is_clean(native_pair):
    assert _native_findings(native_pair) == []


def test_native001_catches_reordered_enum_in_real_kernels(native_pair):
    c_path = native_pair / "kernels.c"
    text = c_path.read_text(encoding="utf-8")
    mutated = text.replace("CFG_N = 0, CFG_P,", "CFG_P = 0, CFG_N,", 1)
    assert mutated != text
    c_path.write_text(mutated, encoding="utf-8")
    findings = _native_findings(native_pair)
    assert any(
        f.rule == "NATIVE001" and "position 0 is 'CFG_P'" in f.message
        for f in findings
    ), findings


def test_native002_catches_dropped_slot_in_real_kernels(native_pair):
    c_path = native_pair / "kernels.c"
    text = c_path.read_text(encoding="utf-8")
    mutated = text.replace(" PT_RING_BIRTH,", "", 1)
    assert mutated != text
    c_path.write_text(mutated, encoding="utf-8")
    findings = _native_findings(native_pair)
    assert any(
        f.rule == "NATIVE002" and "PT_RING_BIRTH" in f.message
        for f in findings
    ), findings


def test_native003_catches_changed_define_in_real_kernels(native_pair):
    c_path = native_pair / "kernels.c"
    text = c_path.read_text(encoding="utf-8")
    mutated = text.replace("#define MAX_PORTS 64", "#define MAX_PORTS 63", 1)
    assert mutated != text
    c_path.write_text(mutated, encoding="utf-8")
    findings = _native_findings(native_pair)
    assert any(
        f.rule == "NATIVE003"
        and "mirror of MAX_PORTS is 64" in f.message
        and "defines 63" in f.message
        for f in findings
    ), findings


def test_native001_catches_mirror_drift_in_real_accel(native_pair):
    py_path = native_pair / "accel.py"
    text = py_path.read_text(encoding="utf-8")
    mutated = text.replace("    CFG_N, CFG_P,", "    CFG_P, CFG_N,", 1)
    assert mutated != text
    py_path.write_text(mutated, encoding="utf-8")
    findings = _native_findings(native_pair)
    assert any(f.rule == "NATIVE001" for f in findings), findings


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
def test_sarif_document_shape():
    findings = findings_for(FIXTURES / "native003_defines.py")
    document = sarif_document(findings, ALL_RULES)
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert set(RULE_IDS) <= set(rule_ids)
    assert len(run["results"]) == len(findings)
    for result, finding in zip(run["results"], findings):
        assert result["ruleId"] == finding.rule
        assert rule_ids[result["ruleIndex"]] == finding.rule
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "ROOT"
        assert location["artifactLocation"]["uri"] == finding.path
        assert location["region"]["startLine"] == finding.line


def test_cli_sarif_format_is_valid_json(tmp_path):
    artifact = tmp_path / "analysis.sarif"
    proc = run_cli(
        str(FIXTURES / "det003_rng.py"),
        "--format", "sarif",
        "--output", str(artifact),
    )
    assert proc.returncode == 1
    document = json.loads(artifact.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"
    results = document["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["DET003", "DET003"]
    # stdout carries the same document
    assert json.loads(proc.stdout) == document


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_roundtrip_suppresses_grandfathered_findings(tmp_path):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "det003_rng.py")
    proc = run_cli(target, "--baseline", str(baseline), "--write-baseline")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["findings"]) == 2
    # with the baseline in place the same run is clean
    proc = run_cli(target, "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout
    # dropping one entry resurfaces exactly one finding
    payload["findings"] = payload["findings"][:1]
    baseline.write_text(json.dumps(payload), encoding="utf-8")
    proc = run_cli(target, "--baseline", str(baseline))
    assert proc.returncode == 1
    assert proc.stdout.count("DET003") == 1


def test_baseline_matching_ignores_line_numbers(tmp_path):
    baseline = tmp_path / "baseline.json"
    victim = tmp_path / "victim.py"
    victim.write_text(
        "# repro: analysis-scope=sim\nimport time\n\n"
        "NOW = time.time()\n"
    )
    proc = run_cli(str(victim), "--baseline", str(baseline),
                   "--write-baseline")
    assert proc.returncode == 0
    # shift the finding down two lines: still baselined
    victim.write_text(
        "# repro: analysis-scope=sim\nimport time\n\n\n\n"
        "NOW = time.time()\n"
    )
    proc = run_cli(str(victim), "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout


def test_write_baseline_requires_baseline_path():
    proc = run_cli("src", "--write-baseline")
    assert proc.returncode == 2
    assert "--write-baseline requires --baseline" in proc.stderr


def test_committed_baseline_is_empty():
    """The tree is clean, so the committed baseline grandfathers nothing."""
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert payload == {"version": 1, "findings": []}


# ----------------------------------------------------------------------
# AST cache
# ----------------------------------------------------------------------
def test_ast_cache_warm_run_hits_and_agrees(tmp_path):
    store = tmp_path / "cache.pickle"
    cold_cache = AnalysisCache(str(store))
    cold = analyze([str(FIXTURES)], cache=cold_cache)
    cold_cache.save()
    assert cold_cache.hits == 0
    assert cold_cache.misses > 0
    warm_cache = AnalysisCache(str(store))
    warm = analyze([str(FIXTURES)], cache=warm_cache)
    assert warm_cache.hits == cold_cache.misses
    assert warm_cache.misses == 0
    assert as_tuples(warm) == as_tuples(cold)


def test_ast_cache_invalidates_on_content_change(tmp_path):
    store = tmp_path / "cache.pickle"
    victim = tmp_path / "victim.py"
    victim.write_text("# repro: analysis-scope=sim\nX = 1\n")
    cache = AnalysisCache(str(store))
    assert analyze([str(victim)], cache=cache) == []
    cache.save()
    victim.write_text(
        "# repro: analysis-scope=sim\nimport time\nX = time.time()\n"
    )
    cache = AnalysisCache(str(store))
    findings = analyze([str(victim)], cache=cache)
    assert [f.rule for f in findings] == ["DET001"]
    assert cache.misses == 1


def test_ast_cache_survives_corrupt_store(tmp_path):
    store = tmp_path / "cache.pickle"
    store.write_bytes(b"not a pickle")
    cache = AnalysisCache(str(store))
    findings = analyze([str(FIXTURES / "det003_rng.py")], cache=cache)
    assert [f.rule for f in findings] == ["DET003", "DET003"]
    assert cache.misses > 0


def test_cli_cache_stats(tmp_path):
    store = tmp_path / "cache.pickle"
    target = str(FIXTURES / "clean_ok.py")
    proc = run_cli(target, "--cache", str(store), "--stats")
    assert proc.returncode == 0
    assert re.search(r"analysis-cache: 0 hit\(s\), \d+ miss", proc.stderr)
    proc = run_cli(target, "--cache", str(store), "--stats")
    assert proc.returncode == 0
    assert re.search(r"analysis-cache: [1-9]\d* hit\(s\), 0 miss", proc.stderr)


# ----------------------------------------------------------------------
# Meta-tests: the real tree is clean end to end
# ----------------------------------------------------------------------
def test_cli_exits_zero_on_full_tree_with_fixture_exclude():
    proc = run_cli(
        "src", "tests", "benchmarks",
        "--exclude", "tests/analysis_fixtures/*",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_exclude_does_not_apply_to_explicit_paths():
    proc = run_cli(
        str(FIXTURES / "det003_rng.py"),
        "--exclude", "tests/analysis_fixtures/*",
    )
    assert proc.returncode == 1


def test_accel_slot_table_matches_arrays_literal():
    """PT_SLOT_NAMES and the arrays list in accel.py agree on arity."""
    import ast as ast_mod

    tree = ast_mod.parse(ACCEL_PY.read_text(encoding="utf-8"))
    slot_names = arrays_len = None
    for node in ast_mod.walk(tree):
        if isinstance(node, ast_mod.Assign):
            for target in node.targets:
                if isinstance(target, ast_mod.Name):
                    if target.id == "PT_SLOT_NAMES":
                        slot_names = [
                            elt.value for elt in node.value.elts
                        ]
                    elif target.id == "arrays" and isinstance(
                        node.value, ast_mod.List
                    ):
                        arrays_len = len(node.value.elts)
    assert slot_names is not None and arrays_len is not None
    assert len(slot_names) == arrays_len
    assert all(name.startswith("PT_") for name in slot_names)


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
