"""Unit tests for the experiment drivers and table formatting."""

import pytest

from repro.experiments import (
    alone_ipc,
    bench_scale,
    compare_controllers,
    format_table,
    locality_sweep,
    paper_vs_measured,
    run_workload,
    scaled_cycles,
    static_throttle_sweep,
    workload_batch_comparison,
)
from repro.experiments.runner import _ALONE_CACHE
from repro.traffic.workloads import make_homogeneous_workload

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (33, 4.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "2.500" in text

    def test_paper_vs_measured_flags_failures(self):
        text = paper_vs_measured(
            "T", [("q1", "x", "y", True), ("q2", "x", "y", False)]
        )
        assert "yes" in text
        assert "NO" in text
        assert "T" in text


class TestScaling:
    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        assert scaled_cycles(2000) == 5000

    def test_scaled_cycles_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        assert scaled_cycles(2000) == 1000


class TestRunners:
    def test_run_workload_end_to_end(self):
        wl = make_homogeneous_workload("gromacs", 16)
        res = run_workload(wl, 1500, epoch=500, seed=1)
        assert res.cycles == 1500
        assert res.system_throughput > 0

    def test_compare_controllers_returns_pair(self):
        wl = make_homogeneous_workload("mcf", 16)
        base, ctl = compare_controllers(wl, 1500, epoch=500, seed=1)
        assert base.cycles == ctl.cycles == 1500
        # the controlled run must never inject more than the baseline
        assert ctl.injected_flits <= base.injected_flits * 1.05

    def test_alone_ipc_cached(self):
        _ALONE_CACHE.clear()
        a = alone_ipc("povray", 16, cycles=1200)
        assert len(_ALONE_CACHE) == 1
        b = alone_ipc("povray", 16, cycles=1200)
        assert a == b
        assert len(_ALONE_CACHE) == 1
        assert a == pytest.approx(3.0, rel=0.05)

    def test_alone_ipc_uncontended_beats_shared(self):
        wl = make_homogeneous_workload("mcf", 16)
        shared = run_workload(wl, 2000, epoch=500, seed=1)
        alone = alone_ipc("mcf", 16, cycles=2000)
        assert alone > shared.ipc.mean()


class TestSweeps:
    def test_static_sweep_rates_and_order(self):
        wl = make_homogeneous_workload("mcf", 16)
        results = static_throttle_sweep(wl, [0.0, 0.8], 1500, epoch=500, seed=1)
        assert [r[0] for r in results] == [0.0, 0.8]
        assert results[1][1].injected_flits < results[0][1].injected_flits

    def test_locality_sweep_distance_effect(self):
        results = locality_sweep([1.0, 8.0], 16, 1500, epoch=500)
        near, far = results[0][1], results[1][1]
        assert near.avg_hops < far.avg_hops

    def test_batch_comparison_shape(self):
        rows = workload_batch_comparison(
            2, 16, 1200, epoch=400, seed=3, categories=["L", "H"]
        )
        assert [r["category"] for r in rows] == ["L", "H"]
        for r in rows:
            assert "improvement" in r
            assert r["baseline"].cycles == 1200
