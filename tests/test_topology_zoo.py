"""Property and equivalence tests for the graph-topology zoo.

Three layers of safety:

- structural properties every generated topology must satisfy
  (connectivity, reverse-port round-trips, symmetric distance tables,
  productive ports that actually shrink distance);
- exact equivalence between ``graph_mesh2d`` and the closed-form
  ``Mesh2D`` — routing tables, distances, and a full BLESS simulation
  bit-for-bit (the graph machinery must not perturb the paper's
  baseline numbers);
- config-level geometry validation through the topology registry.
"""

import numpy as np
import pytest

import repro.sim.simulator as simulator_mod
from repro.config import SimulationConfig
from repro.harness import JobSpec, run_job
from repro.topology import (
    GraphTopology,
    INVALID_PORT,
    Mesh2D,
    TOPOLOGIES,
    TOPOLOGY_NAMES,
    build_topology,
)
from repro.topology import zoo
from repro.topology.graph import MAX_GRAPH_PORTS, UNREACHABLE
from repro.traffic.workloads import make_category_workload


def zoo_topologies():
    """Every generator in the zoo, at a representative small size."""
    return [
        pytest.param(lambda: zoo.graph_mesh2d(4, 4), id="graph_mesh2d-4x4"),
        pytest.param(lambda: zoo.graph_mesh2d(5, 3), id="graph_mesh2d-5x3"),
        pytest.param(lambda: zoo.mesh3d(3, 3, 3), id="mesh3d-3x3x3"),
        pytest.param(lambda: zoo.mesh3d(4, 3, 2), id="mesh3d-4x3x2"),
        pytest.param(lambda: zoo.torus3d(3, 3, 3), id="torus3d-3x3x3"),
        pytest.param(lambda: zoo.torus3d(4, 4, 2), id="torus3d-4x4x2"),
        pytest.param(lambda: zoo.chiplet(8, 8, 4), id="chiplet-8x8t4"),
        pytest.param(lambda: zoo.chiplet(6, 4, 2), id="chiplet-6x4t2"),
        pytest.param(lambda: zoo.express(8, 8, 4), id="express-8x8s4"),
        pytest.param(lambda: zoo.express(6, 6, 2), id="express-6x6s2"),
    ]


@pytest.mark.parametrize("make", zoo_topologies())
class TestZooProperties:
    def test_connected(self, make):
        topo = make()
        dist = topo.distance_table()
        assert (dist < UNREACHABLE).all()
        assert (np.diag(dist) == 0).all()

    def test_reverse_port_round_trips_on_every_link(self, make):
        """Following any link and coming back over its reverse port
        lands on the origin, through the origin's original port."""
        topo = make()
        nodes, ports = np.nonzero(topo.link_exists)
        assert nodes.size == topo.num_links  # directed-endpoint count
        assert topo.num_links % 2 == 0  # every link wired both ways
        for u, port in zip(nodes, ports):
            v = int(topo.neighbor[u, port])
            back = int(topo.reverse_port[u, port])
            assert topo.neighbor[v, back] == u
            assert topo.reverse_port[v, back] == port

    def test_distance_table_symmetric(self, make):
        """Every zoo link is bidirectional with symmetric latency, so
        the hop metric must be symmetric too."""
        topo = make()
        dist = topo.distance_table()
        assert (dist == dist.T).all()

    def test_link_latency_symmetric_and_positive(self, make):
        topo = make()
        nodes, ports = np.nonzero(topo.link_exists)
        lat = topo.link_latency[nodes, ports]
        assert (lat >= 1).all()
        rev_lat = topo.link_latency[
            topo.neighbor[nodes, ports], topo.reverse_port[nodes, ports]
        ]
        assert (lat == rev_lat).all()

    def test_productive_ports_shrink_distance(self, make):
        """The primary (and any secondary) route port strictly reduces
        hop distance to the destination; at the destination both are
        INVALID_PORT."""
        topo = make()
        n = topo.num_nodes
        dist = topo.distance_table()
        src = np.repeat(np.arange(n), n)
        dest = np.tile(np.arange(n), n)
        p0, p1 = topo.productive_ports(src, dest)
        at_dest = src == dest
        assert (p0[at_dest] == INVALID_PORT).all()
        assert (p1[at_dest] == INVALID_PORT).all()
        assert (p0[~at_dest] != INVALID_PORT).all()
        for ports in (p0, p1):
            take = ~at_dest & (ports != INVALID_PORT)
            nxt = topo.neighbor[src[take], ports[take]]
            assert (dist[nxt, dest[take]] == dist[src[take], dest[take]] - 1).all()

    def test_central_node_minimizes_total_distance(self, make):
        topo = make()
        totals = topo.distance_table().sum(axis=1)
        assert totals[topo.central_node()] == totals.min()


class TestZooGeometry:
    def test_mesh3d_link_count(self):
        w, h, d = 4, 3, 2
        topo = zoo.mesh3d(w, h, d)
        undirected = ((w - 1) * h * d) + (w * (h - 1) * d) + (w * h * (d - 1))
        assert topo.num_links == undirected * 2
        assert topo.num_nodes == w * h * d

    def test_torus3d_wrap_links(self):
        topo = zoo.torus3d(3, 3, 3)
        # Full wrap: every node has all six grid neighbors.
        assert topo.link_exists.all()
        assert topo.num_links == 27 * 6
        # Wraps shorten the diameter vs the open mesh.
        assert topo.max_distance() < zoo.mesh3d(3, 3, 3).max_distance()

    def test_torus3d_skips_wrap_on_length2_dims(self):
        """A length-2 dimension's wrap link would duplicate the mesh
        link; the generator must not double-wire it."""
        topo = zoo.torus3d(4, 4, 2)
        # z=2: every node has exactly one z-neighbor (no wrap duplicate).
        z_links = (topo.link_exists[:, zoo.UP].astype(int)
                   + topo.link_exists[:, zoo.DOWN].astype(int))
        assert (z_links == 1).all()

    def test_chiplet_bridges_cost_tile_hops(self):
        topo = zoo.chiplet(8, 8, 4)
        bridge_ports = (zoo.BRIDGE_N, zoo.BRIDGE_E, zoo.BRIDGE_S, zoo.BRIDGE_W)
        bridged = topo.link_exists[:, bridge_ports]
        assert bridged.any()
        # Only hub routers carry bridge ports: one per 4x4 tile, 4 hubs.
        assert (bridged.any(axis=1)).sum() == 4
        for port in bridge_ports:
            nodes = np.nonzero(topo.link_exists[:, port])[0]
            assert (topo.link_latency[nodes, port] == 4).all()
        # Mesh links between adjacent tiles are cut: crossing tiles
        # must go through a hub bridge.
        from repro.topology.mesh import EAST
        x3 = np.nonzero(np.arange(64) % 8 == 3)[0]  # east edge of tile 0
        assert not topo.link_exists[x3, EAST].any()

    def test_express_links_shorten_long_paths(self):
        plain = zoo.graph_mesh2d(8, 8)
        exp = zoo.express(8, 8, 4)
        assert exp.num_links > plain.num_links
        # Express channels span `stride` hops at `stride` latency but
        # one hop of routing: corner-to-corner hop distance drops.
        assert exp.distance(0, 63) < plain.distance(0, 63)

    def test_express_degrades_to_mesh_when_too_small(self):
        small = zoo.express(3, 3, 4)
        assert small.num_links == zoo.graph_mesh2d(3, 3).num_links


@pytest.mark.slow
class TestMeshEquivalence:
    """graph_mesh2d must be indistinguishable from Mesh2D."""

    @pytest.mark.parametrize("w,h", [(4, 4), (5, 3), (3, 6)])
    def test_tables_match(self, w, h):
        mesh = Mesh2D(w, h)
        graph = zoo.graph_mesh2d(w, h)
        assert graph.num_nodes == mesh.num_nodes
        assert graph.num_ports == mesh.num_ports
        live = graph.link_exists
        assert (graph.neighbor[live] == mesh.neighbor[live]).all()
        assert (graph.reverse_port[live] == mesh.reverse_port[live]).all()
        n = mesh.num_nodes
        src = np.repeat(np.arange(n), n)
        dest = np.tile(np.arange(n), n)
        assert (graph.distance(src, dest) == mesh.distance(src, dest)).all()
        gp0, gp1 = graph.productive_ports(src, dest)
        mp0, mp1 = mesh.productive_ports(src, dest)
        assert (gp0 == mp0).all()
        assert (gp1 == mp1).all()

    @pytest.mark.parametrize("network", ["bless", "buffered", "hybrid"])
    def test_simulation_bit_identical(self, network, monkeypatch):
        """A full run on the graph-described mesh reproduces the
        closed-form Mesh2D byte-for-byte (the golden fixture's
        guarantee, extended to the graph backend)."""
        from tests.test_golden_results import result_hash

        def spec():
            wl = make_category_workload(
                "H", 16, np.random.default_rng(11)
            )
            return JobSpec.for_workload(
                wl, 1500, seed=5, epoch=500, network=network,
                config={"check_invariants": True},
            )

        reference = result_hash(run_job(spec()))

        real_build = simulator_mod.build_topology

        def graph_build(config):
            if config.topology == "mesh":
                return zoo.graph_mesh2d(config.width, config.height)
            return real_build(config)

        monkeypatch.setattr(simulator_mod, "build_topology", graph_build)
        assert result_hash(run_job(spec())) == reference


class TestRegistryConfig:
    def _workload(self, nodes):
        return make_category_workload(
            "H", nodes, np.random.default_rng(7)
        )

    def test_registry_covers_cli_names(self):
        assert TOPOLOGY_NAMES == (
            "mesh", "torus", "mesh3d", "torus3d", "chiplet", "express"
        )
        assert set(TOPOLOGIES) == set(TOPOLOGY_NAMES)

    def test_unknown_topology_names_the_zoo(self):
        with pytest.raises(ValueError, match="unknown topology"):
            SimulationConfig(self._workload(16), topology="hypercube")

    def test_cube_inference(self):
        config = SimulationConfig(self._workload(27), topology="mesh3d")
        assert (config.width, config.height, config.depth) == (3, 3, 3)

    def test_depth_hint_splits_layers(self):
        config = SimulationConfig(
            self._workload(32), topology="torus3d", depth=2
        )
        assert (config.width, config.height, config.depth) == (4, 4, 2)

    def test_non_cubic_size_rejected(self):
        with pytest.raises(ValueError, match="not a cube"):
            SimulationConfig(self._workload(24), topology="mesh3d")

    def test_chiplet_tile_must_divide_grid(self):
        with pytest.raises(ValueError, match="must divide"):
            SimulationConfig(
                self._workload(36), topology="chiplet", chiplet_tile=4
            )

    def test_chiplet_builds_from_config(self):
        config = SimulationConfig(
            self._workload(64), topology="chiplet", chiplet_tile=4
        )
        topo = build_topology(config)
        assert isinstance(topo, GraphTopology)
        assert topo.num_nodes == 64

    def test_express_stride_validated(self):
        with pytest.raises(ValueError, match="express_stride"):
            SimulationConfig(
                self._workload(16), topology="express", express_stride=1
            )

    def test_legacy_messages_preserved(self):
        with pytest.raises(ValueError, match="not square"):
            SimulationConfig(self._workload(12), topology="mesh")
        with pytest.raises(ValueError, match="does not fit"):
            SimulationConfig(
                self._workload(16), topology="mesh", width=3, height=3
            )

    def test_graph_port_bound_accommodates_zoo(self):
        for make in (lambda: zoo.chiplet(8, 8, 4),
                     lambda: zoo.express(8, 8, 4)):
            assert make().num_ports <= MAX_GRAPH_PORTS


class TestGraphTopologyAPI:
    def test_add_link_rejects_rewiring(self):
        topo = GraphTopology(4, 2, name="pair")
        topo.add_link(0, 0, 1, 0)
        with pytest.raises(ValueError, match="already wired"):
            topo.add_link(0, 0, 2, 0)

    def test_add_link_rejects_self_link(self):
        topo = GraphTopology(4, 2, name="self")
        with pytest.raises(ValueError):
            topo.add_link(1, 0, 1, 1)

    def test_finalize_rejects_disconnected(self):
        topo = GraphTopology(4, 2, name="split")
        topo.add_link(0, 0, 1, 0)
        topo.add_link(2, 0, 3, 0)
        with pytest.raises(ValueError, match="not connected"):
            topo.finalize()

    def test_finalize_rejects_isolated_node(self):
        topo = GraphTopology(3, 2, name="isolated")
        topo.add_link(0, 0, 1, 0)
        with pytest.raises(ValueError):
            topo.finalize()
