"""Unit tests for the vectorized flit queues."""

import numpy as np
import pytest

from repro.network.queues import FlitQueueArray


def _push_one(q, node, dest, kind=0, flits=1, stamp=0, seq=0):
    return q.push(np.array([node]), np.array([dest]), kind, flits, stamp, seq)


class TestPush:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlitQueueArray(4, 0)

    def test_push_and_peek(self):
        q = FlitQueueArray(4, 8)
        _push_one(q, 2, 11, kind=1)
        dest, kind = q.peek(np.array([2]))
        assert dest[0] == 11
        assert kind[0] == 1

    def test_push_empty_call(self):
        q = FlitQueueArray(4, 8)
        ok = q.push(np.zeros(0, dtype=np.int64), np.zeros(0), 0, 1)
        assert ok.size == 0

    def test_full_queue_rejects(self):
        q = FlitQueueArray(2, 3)
        for _ in range(3):
            assert _push_one(q, 0, 1)[0]
        assert not _push_one(q, 0, 1)[0]
        assert q.is_full[0]
        assert not q.is_full[1]

    def test_vector_push_mixed_acceptance(self):
        q = FlitQueueArray(3, 1)
        _push_one(q, 0, 9)
        ok = q.push(np.array([0, 1, 2]), np.array([4, 5, 6]), 0, 1)
        np.testing.assert_array_equal(ok, [False, True, True])
        dest, _ = q.peek(np.array([1, 2]))
        np.testing.assert_array_equal(dest, [5, 6])

    def test_nonempty_mask(self):
        q = FlitQueueArray(3, 4)
        _push_one(q, 1, 0)
        np.testing.assert_array_equal(q.nonempty, [False, True, False])


class TestPushBurst:
    def _reference_loop(self, q, node, dests, kind, flits, stamp):
        """The replaced per-flit loop: push until the first overflow."""
        accepted = []
        for dest in dests:
            if not q.push(np.array([node]), np.array([dest]),
                          kind, flits, stamp)[0]:
                break
            accepted.append(dest)
        return accepted

    def test_accepts_all_when_space(self):
        q = FlitQueueArray(4, 8)
        dests = np.array([3, 1, 2])
        assert q.push_burst(0, dests, 1, 1, stamp=5) == 3
        assert q.count[0] == 3
        for expected in (3, 1, 2):  # FIFO order preserved
            dest, kind, _, stamp, _ = q.take_flit(np.array([0]))
            assert dest[0] == expected
            assert kind[0] == 1
            assert stamp[0] == 5

    def test_truncates_at_remaining_capacity(self):
        q = FlitQueueArray(2, 4)
        _push_one(q, 0, 9)
        _push_one(q, 0, 9)
        assert q.push_burst(0, np.arange(5), 0, 1) == 2
        assert q.count[0] == 4

    def test_full_queue_accepts_nothing(self):
        q = FlitQueueArray(1, 2)
        _push_one(q, 0, 9)
        _push_one(q, 0, 9)
        assert q.push_burst(0, np.arange(3), 0, 1) == 0
        assert q.count[0] == 2

    def test_empty_burst(self):
        q = FlitQueueArray(1, 2)
        assert q.push_burst(0, np.zeros(0, dtype=np.int64), 0, 1) == 0

    def test_wraps_around_ring(self):
        q = FlitQueueArray(1, 4)
        for _ in range(3):  # advance head into the middle of the ring
            _push_one(q, 0, 9)
            q.take_flit(np.array([0]))
        assert q.push_burst(0, np.array([10, 20, 30]), 0, 1) == 3
        seen = [int(q.take_flit(np.array([0]))[0][0]) for _ in range(3)]
        assert seen == [10, 20, 30]

    def test_matches_stop_at_first_overflow_loop(self):
        """The burst is exactly the old sequential semantics: since every
        entry targets the same queue, stopping at the first overflow is
        accepting the remaining-capacity prefix."""
        rng = np.random.default_rng(0)
        for trial in range(50):
            capacity = int(rng.integers(1, 8))
            preload = int(rng.integers(0, capacity + 1))
            dests = rng.integers(0, 16, size=rng.integers(0, 10))
            a = FlitQueueArray(2, capacity)
            b = FlitQueueArray(2, capacity)
            for _ in range(preload):
                _push_one(a, 0, 99)
                _push_one(b, 0, 99)
            expected = self._reference_loop(b, 0, dests, 0, 1, stamp=7)
            assert a.push_burst(0, dests, 0, 1, stamp=7) == len(expected)
            assert a.count[0] == b.count[0]
            while a.count[0]:
                da = a.take_flit(np.array([0]))
                db = b.take_flit(np.array([0]))
                assert da[0][0] == db[0][0]  # dest
                assert da[3][0] == db[3][0]  # stamp


class TestTakeFlit:
    def test_single_flit_packet_pops(self):
        q = FlitQueueArray(2, 4)
        _push_one(q, 0, 7, flits=1, seq=3)
        dest, kind, seq, stamp, done = q.take_flit(np.array([0]))
        assert dest[0] == 7
        assert seq[0] == 3
        assert done[0]
        assert q.count[0] == 0

    def test_multi_flit_packet_drains_over_takes(self):
        q = FlitQueueArray(2, 4)
        _push_one(q, 0, 7, flits=3)
        for i in range(3):
            dest, _, _, _, done = q.take_flit(np.array([0]))
            assert dest[0] == 7
            assert done[0] == (i == 2)
        assert q.count[0] == 0

    def test_fifo_order(self):
        q = FlitQueueArray(1, 4)
        for dest in (10, 20, 30):
            _push_one(q, 0, dest)
        seen = [int(q.take_flit(np.array([0]))[0][0]) for _ in range(3)]
        assert seen == [10, 20, 30]

    def test_stamp_carried(self):
        q = FlitQueueArray(1, 4)
        _push_one(q, 0, 1, stamp=42)
        _, _, _, stamp, _ = q.take_flit(np.array([0]))
        assert stamp[0] == 42

    def test_ring_wraparound(self):
        q = FlitQueueArray(1, 2)
        for round_ in range(5):
            _push_one(q, 0, round_)
            _push_one(q, 0, round_ + 100)
            a = int(q.take_flit(np.array([0]))[0][0])
            b = int(q.take_flit(np.array([0]))[0][0])
            assert (a, b) == (round_, round_ + 100)

    def test_queued_flits_total(self):
        q = FlitQueueArray(3, 4)
        _push_one(q, 0, 1, flits=2)
        _push_one(q, 1, 1, flits=3)
        assert q.queued_flits_total() == 5
        q.take_flit(np.array([1]))
        assert q.queued_flits_total() == 4
