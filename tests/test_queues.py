"""Unit tests for the vectorized flit queues."""

import numpy as np
import pytest

from repro.network.queues import FlitQueueArray


def _push_one(q, node, dest, kind=0, flits=1, stamp=0, seq=0):
    return q.push(np.array([node]), np.array([dest]), kind, flits, stamp, seq)


class TestPush:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlitQueueArray(4, 0)

    def test_push_and_peek(self):
        q = FlitQueueArray(4, 8)
        _push_one(q, 2, 11, kind=1)
        dest, kind = q.peek(np.array([2]))
        assert dest[0] == 11
        assert kind[0] == 1

    def test_push_empty_call(self):
        q = FlitQueueArray(4, 8)
        ok = q.push(np.zeros(0, dtype=np.int64), np.zeros(0), 0, 1)
        assert ok.size == 0

    def test_full_queue_rejects(self):
        q = FlitQueueArray(2, 3)
        for _ in range(3):
            assert _push_one(q, 0, 1)[0]
        assert not _push_one(q, 0, 1)[0]
        assert q.is_full[0]
        assert not q.is_full[1]

    def test_vector_push_mixed_acceptance(self):
        q = FlitQueueArray(3, 1)
        _push_one(q, 0, 9)
        ok = q.push(np.array([0, 1, 2]), np.array([4, 5, 6]), 0, 1)
        np.testing.assert_array_equal(ok, [False, True, True])
        dest, _ = q.peek(np.array([1, 2]))
        np.testing.assert_array_equal(dest, [5, 6])

    def test_nonempty_mask(self):
        q = FlitQueueArray(3, 4)
        _push_one(q, 1, 0)
        np.testing.assert_array_equal(q.nonempty, [False, True, False])


class TestTakeFlit:
    def test_single_flit_packet_pops(self):
        q = FlitQueueArray(2, 4)
        _push_one(q, 0, 7, flits=1, seq=3)
        dest, kind, seq, stamp, done = q.take_flit(np.array([0]))
        assert dest[0] == 7
        assert seq[0] == 3
        assert done[0]
        assert q.count[0] == 0

    def test_multi_flit_packet_drains_over_takes(self):
        q = FlitQueueArray(2, 4)
        _push_one(q, 0, 7, flits=3)
        for i in range(3):
            dest, _, _, _, done = q.take_flit(np.array([0]))
            assert dest[0] == 7
            assert done[0] == (i == 2)
        assert q.count[0] == 0

    def test_fifo_order(self):
        q = FlitQueueArray(1, 4)
        for dest in (10, 20, 30):
            _push_one(q, 0, dest)
        seen = [int(q.take_flit(np.array([0]))[0][0]) for _ in range(3)]
        assert seen == [10, 20, 30]

    def test_stamp_carried(self):
        q = FlitQueueArray(1, 4)
        _push_one(q, 0, 1, stamp=42)
        _, _, _, stamp, _ = q.take_flit(np.array([0]))
        assert stamp[0] == 42

    def test_ring_wraparound(self):
        q = FlitQueueArray(1, 2)
        for round_ in range(5):
            _push_one(q, 0, round_)
            _push_one(q, 0, round_ + 100)
            a = int(q.take_flit(np.array([0]))[0][0])
            b = int(q.take_flit(np.array([0]))[0][0])
            assert (a, b) == (round_, round_ + 100)

    def test_queued_flits_total(self):
        q = FlitQueueArray(3, 4)
        _push_one(q, 0, 1, flits=2)
        _push_one(q, 1, 1, flits=3)
        assert q.queued_flits_total() == 5
        q.take_flit(np.array([1]))
        assert q.queued_flits_total() == 4
