"""Tests for the §7-inspired extensions: hot-spot traffic, the
fairness-aware controller, and latency percentiles."""

import numpy as np
import pytest

from repro import (
    FairCentralController,
    HotspotLocality,
    Mesh2D,
    SimulationConfig,
    Simulator,
    make_category_workload,
    make_homogeneous_workload,
)
from repro.control import CentralController, ControlParams, EpochView
from repro.network.base import NetworkStats


@pytest.mark.slow
class TestHotspotLocality:
    def test_validation(self, mesh8):
        with pytest.raises(ValueError):
            HotspotLocality(mesh8, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotLocality(mesh8, hot_nodes=[])
        with pytest.raises(ValueError):
            HotspotLocality(mesh8, hot_nodes=[999])

    def test_hot_fraction_of_traffic_hits_hot_nodes(self, mesh8):
        loc = HotspotLocality(mesh8, hot_nodes=[27], hot_fraction=0.4)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, 20_000)
        dest = loc.sample(src, rng)
        frac = float((dest == 27).mean())
        assert frac == pytest.approx(0.4, abs=0.03)

    def test_never_self_directed(self, mesh8):
        loc = HotspotLocality(mesh8, hot_nodes=[5, 50], hot_fraction=0.8)
        rng = np.random.default_rng(1)
        src = np.full(5000, 5, dtype=np.int64)  # a hot node itself
        dest = loc.sample(src, rng)
        assert (dest != 5).all()

    def test_single_hot_node_self_traffic_falls_back(self, mesh8):
        loc = HotspotLocality(mesh8, hot_nodes=[5], hot_fraction=1.0)
        rng = np.random.default_rng(2)
        dest = loc.sample(np.full(2000, 5, dtype=np.int64), rng)
        assert (dest != 5).all()

    def test_move_hotspots_changes_set(self, mesh8):
        loc = HotspotLocality(mesh8, num_hot=3, seed_rng=np.random.default_rng(3))
        before = set(loc.hot_nodes.tolist())
        rng = np.random.default_rng(4)
        seen_other = False
        for _ in range(10):
            loc.move_hotspots(rng)
            if set(loc.hot_nodes.tolist()) != before:
                seen_other = True
        assert seen_other

    def test_creates_congestion_hotspot_in_simulation(self, rng):
        """Traffic concentration starves the hot node's neighborhood."""
        wl = make_category_workload("H", 64, rng)
        topo_probe = Mesh2D(8)
        hot = HotspotLocality(topo_probe, hot_nodes=[27], hot_fraction=0.5)
        cfg = SimulationConfig(wl, seed=2, epoch=1000, locality=hot)
        res = Simulator(cfg).run(4000)
        baseline_cfg = SimulationConfig(
            wl, seed=2, epoch=1000, locality="exponential", locality_param=1.0
        )
        base = Simulator(baseline_cfg).run(4000)
        # The hot node serializes half of all requests: system throughput
        # collapses, and starvation is strongly skewed — nodes in the hot
        # region are blocked far more than the network's median node
        # (the paper's "hot-spots of high utilization", §7).
        assert res.throughput_per_node < base.throughput_per_node * 0.5
        starv = res.port_starvation_rate[res.active]
        assert starv.max() > 2 * float(np.median(starv))


def _view(ipf, sigma, epoch_ipc=None):
    ipf = np.asarray(ipf, dtype=float)
    return EpochView(
        cycle=0,
        ipf=ipf,
        starvation_rate=np.asarray(sigma, dtype=float),
        active=np.ones(ipf.shape, dtype=bool),
        utilization=0.8,
        epoch_ipc=None if epoch_ipc is None else np.asarray(epoch_ipc, dtype=float),
    )


@pytest.mark.slow
class TestFairController:
    def test_validation(self):
        with pytest.raises(ValueError):
            FairCentralController(max_slowdown=1.0)

    def test_matches_paper_mechanism_without_progress_data(self):
        fair = FairCentralController(ControlParams())
        base = CentralController(ControlParams())
        view = _view([1.0, 1.0, 500.0], [0.7, 0.0, 0.0])
        np.testing.assert_allclose(fair.on_epoch(view), base.on_epoch(view))

    def test_slowed_node_exempted(self):
        fair = FairCentralController(ControlParams(), max_slowdown=3.0)
        # node 0: crawling (IPC 0.5 of 3 achievable -> slowdown 6)
        # node 1: healthy (IPC 2.5 -> slowdown 1.2)
        view = _view([1.0, 1.0, 500.0], [0.7, 0.0, 0.0],
                     epoch_ipc=[0.5, 2.5, 3.0])
        rates = fair.on_epoch(view)
        assert rates[0] == 0.0  # beyond the slowdown cap: exempt
        assert rates[1] > 0.0  # healthy intensive node still throttled

    def test_partial_headroom_scales_rate(self):
        fair = FairCentralController(ControlParams(), max_slowdown=3.0)
        base = CentralController(ControlParams())
        view_full = _view([1.0, 500.0], [0.7, 0.0], epoch_ipc=[3.0, 3.0])
        view_half = _view([1.0, 500.0], [0.7, 0.0], epoch_ipc=[1.5, 3.0])
        full = fair.on_epoch(view_full)[0]
        half = fair.on_epoch(view_half)[0]
        assert full == pytest.approx(base.on_epoch(view_full)[0])
        assert 0.0 < half < full

    def test_improves_worst_node_in_simulation(self, rng):
        """The slowdown cap lifts the most-throttled node's IPC."""
        wl = make_category_workload("HM", 16, rng)
        params = ControlParams(epoch=1000)

        def run(controller):
            cfg = SimulationConfig(wl, seed=6, epoch=1000, controller=controller)
            return Simulator(cfg).run(6000)

        paper = run(CentralController(params))
        fair = run(FairCentralController(params, max_slowdown=2.0))
        worst_paper = paper.ipc[paper.active].min()
        worst_fair = fair.ipc[fair.active].min()
        assert worst_fair >= worst_paper * 0.95
        assert fair.system_throughput > 0


@pytest.mark.slow
class TestLatencyPercentiles:
    def test_histogram_percentiles_match_reference(self):
        stats = NetworkStats()
        stats.init_arrays(4)
        rng = np.random.default_rng(0)
        lats = rng.integers(0, 200, 5000)
        stats.record_latencies(lats)
        for p in (50, 95, 99):
            ref = int(np.percentile(lats, p, method="inverted_cdf"))
            assert abs(stats.latency_percentile(p) - ref) <= 1

    def test_empty_histogram(self):
        stats = NetworkStats()
        stats.init_arrays(4)
        assert stats.latency_percentile(99) == 0

    def test_percentile_validation(self):
        stats = NetworkStats()
        stats.init_arrays(4)
        with pytest.raises(ValueError):
            stats.latency_percentile(101)

    def test_tail_bucket_absorbs_outliers(self):
        stats = NetworkStats()
        stats.init_arrays(4)
        stats.record_latencies(np.array([5, 5, 10_000]))
        assert stats.latency_percentile(100) == NetworkStats.LATENCY_HIST_BUCKETS - 1

    def test_exposed_on_simulation_result(self):
        wl = make_homogeneous_workload("mcf", 16)
        res = Simulator(SimulationConfig(wl, seed=1, epoch=500)).run(2000)
        p50 = res.latency_percentile(50)
        p99 = res.latency_percentile(99)
        assert 0 < p50 <= p99
        assert p99 <= res.max_net_latency
