"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.category is None  # resolved to "H" at run time
        assert args.nodes == 16
        assert args.network == "bless"
        assert args.controller == "none"

    def test_app_and_category_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "mcf", "--category", "M"])

    def test_rejects_unknown_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--network", "wormhole"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--category", "X"])


class TestMain:
    def test_basic_run(self, capsys):
        rc = main(["--nodes", "16", "--cycles", "1500", "--epoch", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "system throughput" in out
        assert "IPC/node" in out

    def test_central_controller_run(self, capsys):
        rc = main(["--cycles", "1500", "--epoch", "500",
                   "--controller", "central"])
        assert rc == 0
        assert "controller=central" in capsys.readouterr().out

    def test_distributed_controller_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--controller", "distributed"])
        assert rc == 0

    def test_static_controller_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--controller", "static", "--static-rate", "0.7"])
        assert rc == 0

    def test_homogeneous_app_run(self, capsys):
        rc = main(["--app", "povray", "--cycles", "1200", "--epoch", "400"])
        assert rc == 0

    def test_buffered_torus_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--network", "buffered", "--topology", "torus",
                   "--locality", "exponential"])
        assert rc == 0


class TestGuardrailFlags:
    def test_checked_run_reports_guardrails(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--check-invariants", "--watchdog", "5000"])
        assert rc == 0
        assert "guardrails:" in capsys.readouterr().out

    def test_unchecked_run_prints_no_guardrail_line(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400"])
        assert rc == 0
        assert "guardrails:" not in capsys.readouterr().out

    def test_fault_injection_run(self, capsys):
        rc = main(["--cycles", "1500", "--epoch", "500",
                   "--check-invariants", "--link-faults", "0.05",
                   "--router-faults", "0.06", "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link(s)" in out
        assert "router(s)" in out

    def test_guardrail_abort_exits_2(self, capsys):
        # A zero wall-clock budget trips the timeout guardrail.
        rc = main(["--cycles", "1000000", "--timeout", "0.0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "guardrail abort" in err

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(ValueError):
            main(["--cycles", "1000", "--link-faults", "1.5"])
