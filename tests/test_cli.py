"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.category is None  # resolved to "H" at run time
        assert args.nodes == 16
        assert args.network == "bless"
        assert args.controller == "none"

    def test_app_and_category_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "mcf", "--category", "M"])

    def test_rejects_unknown_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--network", "wormhole"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--category", "X"])


class TestMain:
    def test_basic_run(self, capsys):
        rc = main(["--nodes", "16", "--cycles", "1500", "--epoch", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "system throughput" in out
        assert "IPC/node" in out

    def test_central_controller_run(self, capsys):
        rc = main(["--cycles", "1500", "--epoch", "500",
                   "--controller", "central"])
        assert rc == 0
        assert "controller=central" in capsys.readouterr().out

    def test_distributed_controller_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--controller", "distributed"])
        assert rc == 0

    def test_static_controller_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--controller", "static", "--static-rate", "0.7"])
        assert rc == 0

    def test_homogeneous_app_run(self, capsys):
        rc = main(["--app", "povray", "--cycles", "1200", "--epoch", "400"])
        assert rc == 0

    def test_buffered_torus_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--network", "buffered", "--topology", "torus",
                   "--locality", "exponential"])
        assert rc == 0
