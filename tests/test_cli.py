"""Tests for the ``python -m repro`` command-line front end."""

import json

import pytest

from repro.__main__ import (
    build_parser,
    build_profile_parser,
    build_sweep_parser,
    main,
)

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.category is None  # resolved to "H" at run time
        assert args.nodes == 16
        assert args.network == "bless"
        assert args.controller == "none"

    def test_app_and_category_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "mcf", "--category", "M"])

    def test_rejects_unknown_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--network", "wormhole"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--category", "X"])

    def test_hierarchical_flag_defaults(self):
        args = build_parser().parse_args(["--controller", "hierarchical"])
        assert args.controller_domains == 0  # topology's natural partition
        assert args.controller_mode == "global"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--controller-mode", "anarchic"])


class TestMain:
    def test_basic_run(self, capsys):
        rc = main(["--nodes", "16", "--cycles", "1500", "--epoch", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "system throughput" in out
        assert "IPC/node" in out

    def test_central_controller_run(self, capsys):
        rc = main(["--cycles", "1500", "--epoch", "500",
                   "--controller", "central"])
        assert rc == 0
        assert "controller=central" in capsys.readouterr().out

    def test_distributed_controller_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--controller", "distributed"])
        assert rc == 0

    def test_static_controller_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--controller", "static", "--static-rate", "0.7"])
        assert rc == 0

    def test_homogeneous_app_run(self, capsys):
        rc = main(["--app", "povray", "--cycles", "1200", "--epoch", "400"])
        assert rc == 0

    def test_buffered_torus_run(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--network", "buffered", "--topology", "torus",
                   "--locality", "exponential"])
        assert rc == 0

    def test_run_alias_is_the_default_command(self, capsys):
        rc = main(["run", "--nodes", "16", "--cycles", "1200",
                   "--epoch", "400"])
        assert rc == 0
        assert "system throughput" in capsys.readouterr().out

    def test_hierarchical_controller_run(self, capsys):
        rc = main(["run", "--nodes", "64", "--cycles", "1500",
                   "--epoch", "500", "--controller", "hierarchical",
                   "--controller-domains", "4", "--controller-mode",
                   "local", "--check-invariants"])
        assert rc == 0
        assert "controller=hierarchical" in capsys.readouterr().out


class TestRegistryListing:
    def test_list_controllers(self, capsys):
        assert main(["run", "--list-controllers"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "central", "distributed", "static",
                     "hierarchical"):
            assert name in out
        assert '("hierarchical", domains, mode)' in out
        assert "system throughput" not in out  # listing, not a run

    def test_list_topologies(self, capsys):
        assert main(["--list-topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("mesh", "torus", "mesh3d", "torus3d", "chiplet",
                     "express"):
            assert name in out

    def test_both_listings_in_one_call(self, capsys):
        assert main(["--list-controllers", "--list-topologies"]) == 0
        out = capsys.readouterr().out
        assert "controller" in out and "topology" in out


class TestSweepSubcommand:
    def test_sweep_parser_defaults(self):
        args = build_sweep_parser().parse_args([])
        assert args.sizes == "16,64"
        assert args.jobs is None  # resolved from $REPRO_JOBS at run time
        assert args.cache_dir is None

    def test_sweep_cold_then_warm(self, tmp_path, capsys):
        argv = ["sweep", "--sizes", "16", "--networks", "bless",
                "--cycles", "1200", "--epoch", "400", "--jobs", "1",
                "--cache-dir", str(tmp_path), "--no-progress"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "harness: 1 jobs, 0 cache hits, 1 executed" in cold
        assert "IPC/node" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "harness: 1 jobs, 1 cache hits, 0 executed" in warm

    def test_sweep_parallel_workers(self, tmp_path, capsys):
        rc = main(["sweep", "--sizes", "16,25", "--networks", "bless",
                   "--cycles", "1100", "--epoch", "400", "--jobs", "2",
                   "--no-progress"])
        assert rc == 0
        assert "workers 2" in capsys.readouterr().out

    def test_sweep_rejects_bad_sizes(self, capsys):
        rc = main(["sweep", "--sizes", "16,banana", "--no-progress"])
        assert rc == 2
        assert "invalid --sizes" in capsys.readouterr().err

    def test_sweep_rejects_unknown_network(self, capsys):
        rc = main(["sweep", "--sizes", "16", "--networks", "wormhole",
                   "--no-progress"])
        assert rc == 2


class TestObservabilityFlags:
    def test_profile_run_prints_phase_table(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "network" in out and "cycles/s" in out

    def test_trace_run_prints_trace_summary(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400", "--trace",
                   "--trace-sample", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "inject" in out and "eject" in out

    def test_default_run_prints_no_observability(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile:" not in out
        assert "trace:" not in out


class TestProfileSubcommand:
    def test_profile_parser_defaults(self):
        args = build_profile_parser().parse_args([])
        assert args.nodes == 64
        assert args.cycles == 20_000
        assert args.out == "BENCH_pr3.json"
        assert args.overhead_check is None

    def test_profile_writes_bench_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["profile", "--nodes", "16", "--cycles", "600",
                   "--epoch", "300", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cycles/s" in text and "phase" in text
        payload = json.loads(out.read_text())
        assert payload["bench"] == "pr3-observability"
        assert payload["cycles_per_sec"] > 0
        assert payload["config"]["nodes"] == 16

    def test_profile_trace_and_no_file(self, capsys):
        rc = main(["profile", "--nodes", "16", "--cycles", "600",
                   "--epoch", "300", "--trace", "--out", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "wrote" not in out

    def test_profile_overhead_gate_pass_and_fail(self, tmp_path, capsys):
        base = ["profile", "--nodes", "16", "--cycles", "500",
                "--epoch", "250", "--repeats", "1",
                "--out", str(tmp_path / "b.json")]
        # A generous limit always passes...
        assert main(base + ["--overhead-check", "1000"]) == 0
        assert "overhead check OK" in capsys.readouterr().out
        # ...and an impossible (negative) limit always fails with exit 1.
        assert main(base + ["--overhead-check", "-1000"]) == 1
        assert "overhead check FAILED" in capsys.readouterr().err


class TestGuardrailFlags:
    def test_checked_run_reports_guardrails(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400",
                   "--check-invariants", "--watchdog", "5000"])
        assert rc == 0
        assert "guardrails:" in capsys.readouterr().out

    def test_unchecked_run_prints_no_guardrail_line(self, capsys):
        rc = main(["--cycles", "1200", "--epoch", "400"])
        assert rc == 0
        assert "guardrails:" not in capsys.readouterr().out

    def test_fault_injection_run(self, capsys):
        rc = main(["--cycles", "1500", "--epoch", "500",
                   "--check-invariants", "--link-faults", "0.05",
                   "--router-faults", "0.06", "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link(s)" in out
        assert "router(s)" in out

    def test_guardrail_abort_exits_2(self, capsys):
        # A zero wall-clock budget trips the timeout guardrail.
        rc = main(["--cycles", "1000000", "--timeout", "0.0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "guardrail abort" in err

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(ValueError):
            main(["--cycles", "1000", "--link-faults", "1.5"])
