"""Unit tests for the congestion-control mechanisms (§5, §6.6)."""

import numpy as np
import pytest

from repro.control import (
    CentralController,
    ControlParams,
    DistributedController,
    EpochView,
    NoController,
    StaticThrottleController,
    mechanism_hardware_cost,
)
from repro.network import BlessNetwork
from repro.network.base import EjectedFlits
from repro import Mesh2D


def view(ipf, sigma, active=None, cycle=0, util=0.5):
    ipf = np.asarray(ipf, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    if active is None:
        active = np.ones(ipf.shape, dtype=bool)
    return EpochView(cycle=cycle, ipf=ipf, starvation_rate=sigma,
                     active=active, utilization=util)


class TestCentralFormulas:
    def test_starvation_threshold_eq1(self):
        """Eq (1): min(beta + alpha/IPF, gamma)."""
        ctrl = CentralController(ControlParams())
        ipf = np.array([0.5, 1.0, 4.0, 1e6])
        th = ctrl.starvation_threshold(ipf)
        np.testing.assert_allclose(th, [0.7, 0.4, 0.1, 4e-7], atol=1e-9)

    def test_throttle_rate_eq2(self):
        """Eq (2): min(beta + alpha/IPF, gamma)."""
        ctrl = CentralController(ControlParams())
        ipf = np.array([1.0, 2.0, 9.0, 1e6])
        rate = ctrl.throttle_rate(ipf)
        np.testing.assert_allclose(rate, [0.75, 0.65, 0.3, 0.2], atol=1e-6)

    def test_paper_default_parameters(self):
        p = ControlParams()
        assert (p.alpha_starve, p.beta_starve, p.gamma_starve) == (0.40, 0.0, 0.70)
        assert (p.alpha_throt, p.beta_throt, p.gamma_throt) == (0.90, 0.20, 0.75)
        assert p.epoch == 100_000

    def test_scaled_override(self):
        p = ControlParams().scaled(alpha_throt=0.5, epoch=1000)
        assert p.alpha_throt == 0.5
        assert p.epoch == 1000
        assert p.alpha_starve == 0.40  # untouched


class TestCentralDecisions:
    def test_no_congestion_no_throttling(self):
        ctrl = CentralController()
        rates = ctrl.on_epoch(view([1.0, 50.0], [0.1, 0.0]))
        assert not ctrl.last_congested
        assert (rates == 0).all()

    def test_congestion_detected_by_intensive_node(self):
        """IPF=1 node congested when sigma > 0.4 (threshold from Eq 1)."""
        ctrl = CentralController()
        ctrl.on_epoch(view([1.0, 50.0], [0.45, 0.0]))
        assert ctrl.last_congested

    def test_only_below_mean_ipf_throttled(self):
        """The Throttling Criterion: IPF_i < mean(IPF)."""
        ctrl = CentralController()
        rates = ctrl.on_epoch(view([1.0, 1.0, 500.0], [0.6, 0.0, 0.0]))
        assert rates[0] > 0 and rates[1] > 0
        assert rates[2] == 0.0

    def test_congested_node_is_not_necessarily_throttled(self):
        """§5: 'In most cases, the congested cores are not the ones
        throttled' — a CPU-bound node can be the starved one."""
        ctrl = CentralController()
        # node 2 (high IPF) starves, but nodes 0/1 are the heavy injectors
        rates = ctrl.on_epoch(view([1.0, 1.0, 400.0], [0.0, 0.0, 0.5]))
        assert ctrl.last_congested
        assert rates[2] == 0.0
        assert rates[0] > 0

    def test_rates_follow_eq2(self):
        ctrl = CentralController()
        rates = ctrl.on_epoch(view([1.0, 9.0, 500.0], [0.7, 0.0, 0.0]))
        assert rates[0] == pytest.approx(0.75)
        assert rates[1] == pytest.approx(0.30)

    def test_idle_nodes_ignored(self):
        ctrl = CentralController()
        active = np.array([True, True, False])
        rates = ctrl.on_epoch(view([1.0, 1.0, np.inf], [0.6, 0.1, 0.0], active))
        assert ctrl.last_congested
        assert rates[2] == 0.0

    def test_all_idle_returns_zeros(self):
        ctrl = CentralController()
        rates = ctrl.on_epoch(
            view([np.inf, np.inf], [0.0, 0.0], np.array([False, False]))
        )
        assert (rates == 0).all()

    def test_infinite_ipf_capped_for_mean(self):
        ctrl = CentralController(ControlParams(ipf_cap=1000.0))
        rates = ctrl.on_epoch(view([1.0, np.inf], [0.7, 0.0]))
        assert np.isfinite(rates).all()
        assert rates[0] > 0

    def test_stable_under_homogeneous_ipf(self):
        """With identical IPFs roughly half the nodes sit below the mean
        only through measurement noise; the decision must not crash or
        throttle everyone."""
        ctrl = CentralController()
        rates = ctrl.on_epoch(view([2.0] * 8, [0.5] * 8))
        assert ctrl.last_congested
        assert (rates <= ControlParams().gamma_throt).all()


class TestStaticController:
    def test_uniform_rate(self):
        ctrl = StaticThrottleController(0.5)
        rates = ctrl.on_epoch(view([1.0, 2.0], [0, 0]))
        np.testing.assert_allclose(rates, [0.5, 0.5])

    def test_targeted_nodes(self):
        ctrl = StaticThrottleController(0.9, nodes=np.array([1]))
        rates = ctrl.on_epoch(view([1.0, 2.0, 3.0], [0, 0, 0]))
        np.testing.assert_allclose(rates, [0.0, 0.9, 0.0])

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            StaticThrottleController(1.0)
        with pytest.raises(ValueError):
            StaticThrottleController(-0.1)

    def test_no_controller_is_all_zeros(self):
        rates = NoController().on_epoch(view([1.0], [0.9]))
        assert (rates == 0).all()


class TestDistributedController:
    def _make(self, **kw):
        net = BlessNetwork(Mesh2D(4))
        return DistributedController(net, **kw), net

    def test_parameter_validation(self):
        net = BlessNetwork(Mesh2D(4))
        with pytest.raises(ValueError):
            DistributedController(net, backoff_rate=0.0)
        with pytest.raises(ValueError):
            DistributedController(net, decay=1.0)

    def test_starved_nodes_start_marking(self):
        ctrl, net = self._make(starvation_threshold=0.3)
        sigma = np.zeros(16)
        sigma[5] = 0.6
        ctrl.on_epoch(view([1.0] * 16, sigma))
        assert net.congested_nodes[5]
        assert net.congested_nodes.sum() == 1

    def test_marked_receiver_backs_off(self):
        ctrl, net = self._make(backoff_rate=0.5)
        ej = EjectedFlits(
            node=np.array([3]), src=np.array([0]), kind=np.array([0]),
            seq=np.array([0]), cbit=np.array([True]),
        )
        ctrl.on_ejected(ej)
        rates = ctrl.on_epoch(view([1.0] * 16, np.zeros(16)))
        assert rates[3] == 0.5
        assert rates.sum() == 0.5

    def test_unmarked_flits_do_nothing(self):
        ctrl, net = self._make()
        ej = EjectedFlits(
            node=np.array([3]), src=np.array([0]), kind=np.array([0]),
            seq=np.array([0]), cbit=np.array([False]),
        )
        ctrl.on_ejected(ej)
        rates = ctrl.on_epoch(view([1.0] * 16, np.zeros(16)))
        assert rates.sum() == 0.0

    def test_backoff_decays_without_new_marks(self):
        ctrl, net = self._make(backoff_rate=0.8, decay=0.5)
        ej = EjectedFlits(
            node=np.array([2]), src=np.array([0]), kind=np.array([0]),
            seq=np.array([0]), cbit=np.array([True]),
        )
        ctrl.on_ejected(ej)
        first = ctrl.on_epoch(view([1.0] * 16, np.zeros(16)))[2]
        second = ctrl.on_epoch(view([1.0] * 16, np.zeros(16)))[2]
        third = ctrl.on_epoch(view([1.0] * 16, np.zeros(16)))[2]
        assert first == 0.8
        assert second == pytest.approx(0.4)
        assert third == pytest.approx(0.2)

    def test_observes_ejections_flag(self):
        ctrl, _ = self._make()
        assert ctrl.observes_ejections
        assert not CentralController().observes_ejections


class TestHardwareCost:
    def test_paper_total_149_bits(self):
        """§6.5: 'only 149 bits of storage, two counters, and one
        comparator are required' for W=128."""
        cost = mechanism_hardware_cost(starvation_window=128)
        assert cost.total_bits == 149
        assert cost.counters == 2
        assert cost.comparators == 1

    def test_negligible_vs_l1(self):
        cost = mechanism_hardware_cost()
        assert cost.fraction_of_l1() < 0.0002

    def test_scales_with_window(self):
        small = mechanism_hardware_cost(starvation_window=32)
        large = mechanism_hardware_cost(starvation_window=256)
        assert large.total_bits > small.total_bits

    def test_validation(self):
        with pytest.raises(ValueError):
            mechanism_hardware_cost(starvation_window=0)
