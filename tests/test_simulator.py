"""Integration tests: the full closed-loop system."""

import numpy as np
import pytest

from repro import (
    CentralController,
    ControlParams,
    DistributedController,
    SimulationConfig,
    Simulator,
    StaticThrottleController,
    make_category_workload,
    make_homogeneous_workload,
)
from repro.network.flit import FLIT_CONTROL

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow


def run(workload, cycles=3000, **kw):
    kw.setdefault("seed", 5)
    kw.setdefault("epoch", 500)
    cfg = SimulationConfig(workload, **kw)
    sim = Simulator(cfg)
    return sim, sim.run(cycles)


class TestBasicRuns:
    def test_cpu_bound_workload_full_speed(self):
        wl = make_homogeneous_workload("povray", 16)
        _, res = run(wl, phase_sigma=0.0)
        assert res.throughput_per_node == pytest.approx(3.0, rel=0.02)
        assert res.network_utilization < 0.01

    def test_memory_bound_workload_loads_network(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, res = run(wl)
        assert res.network_utilization > 0.3
        assert 0.05 < res.throughput_per_node < 2.0

    def test_rejects_zero_cycles(self):
        wl = make_homogeneous_workload("mcf", 16)
        sim = Simulator(SimulationConfig(wl))
        with pytest.raises(ValueError):
            sim.run(0)

    def test_deterministic_given_seed(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, a = run(wl, seed=7)
        _, b = run(wl, seed=7)
        np.testing.assert_array_equal(a.ipc, b.ipc)
        assert a.injected_flits == b.injected_flits

    def test_different_seeds_differ(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, a = run(wl, seed=7)
        _, b = run(wl, seed=8)
        assert a.injected_flits != b.injected_flits

    def test_run_is_resumable(self):
        wl = make_homogeneous_workload("mcf", 16)
        cfg = SimulationConfig(wl, seed=5, epoch=500)
        sim = Simulator(cfg)
        sim.run(1000)
        res = sim.run(1000)
        assert res.cycles == 2000

    def test_buffered_network_end_to_end(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, res = run(wl, network="buffered")
        assert res.throughput_per_node > 0.1
        assert res.deflection_rate == 0.0

    def test_torus_end_to_end(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, res = run(wl, topology="torus")
        assert res.throughput_per_node > 0.1

    def test_non_square_mesh(self):
        wl = make_homogeneous_workload("mcf", 32)
        _, res = run(wl, width=8, height=4)
        assert res.num_nodes == 32
        assert res.system_throughput > 0


class TestConservation:
    @pytest.mark.parametrize("network", ["bless", "buffered"])
    def test_flit_conservation(self, network):
        """Injected = ejected + in flight, misses = physical packets."""
        wl = make_homogeneous_workload("mcf", 16)
        sim, res = run(wl, network=network)
        net = sim.network
        assert net.stats.injected_flits == (
            net.stats.ejected_flits + net.in_flight_flits()
        )

    def test_outstanding_misses_match_physical_packets(self):
        """Every outstanding miss is somewhere: queued request, in-flight
        request, in L2 service, queued reply, or in-flight reply."""
        wl = make_homogeneous_workload("mcf", 16)
        sim, _ = run(wl, cycles=2500)
        cores, net, mem = sim.cores, sim.network, sim.memory

        req_queued = int(net.request_queue.count.sum())
        resp_entries = int(net.response_queue.count.sum())
        served = mem.requests_serviced
        issued = int(cores._issued.sum())
        replies_started = mem.replies_issued
        # requests not yet at their slice:
        requests_somewhere = issued - served
        # replies not yet fully delivered: count packets
        reply_flits_recv = int(cores._recv[
            np.arange(16)[:, None], np.arange(256)[None, :]
        ].sum())  # includes resets; use completion counters instead
        completed = int(cores._completed.sum())
        outstanding = int(cores.outstanding.sum())
        # misses are either: requests in transit, in L2, or replies in transit
        in_l2 = mem.pending_replies()
        replies_in_transit = replies_started - completed
        assert outstanding == requests_somewhere + in_l2 + replies_in_transit


class TestCongestionControlBehavior:
    def test_static_throttling_reduces_injection(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, base = run(wl)
        _, throttled = run(wl, controller=StaticThrottleController(0.8))
        assert throttled.injected_flits < base.injected_flits

    def test_central_controller_reduces_congestion(self, rng):
        """On a congested workload the mechanism lowers utilization/
        deflections and does not collapse throughput."""
        wl = make_category_workload("H", 16, rng)
        _, base = run(wl, cycles=6000, epoch=1000)
        _, ctl = run(
            wl, cycles=6000, epoch=1000,
            controller=CentralController(ControlParams(epoch=1000)),
        )
        assert ctl.deflection_rate <= base.deflection_rate * 1.1
        assert ctl.system_throughput > base.system_throughput * 0.9

    def test_central_controller_no_op_on_light_load(self, rng):
        wl = make_category_workload("L", 16, rng)
        sim, res = run(
            wl, cycles=3000, epoch=500,
            controller=CentralController(ControlParams(epoch=500)),
        )
        assert res.epochs["mean_throttle"].max() == 0.0
        assert res.throughput_per_node == pytest.approx(3.0, rel=0.05)

    def test_distributed_controller_runs(self, rng):
        wl = make_category_workload("H", 16, rng)
        cfg = SimulationConfig(wl, seed=5, epoch=500)
        sim = Simulator(cfg)
        sim.controller = DistributedController(sim.network)
        res = sim.run(3000)
        assert res.system_throughput > 0

    def test_epoch_series_recorded(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, res = run(wl, cycles=2500, epoch=500)
        assert len(res.epochs) == 5
        assert "utilization" in res.epochs.names()
        assert "throughput" in res.epochs.names()


class TestControlTraffic:
    def test_control_packets_injected_when_enabled(self, rng):
        wl = make_category_workload("H", 16, rng)
        cfg = SimulationConfig(
            wl, seed=5, epoch=500, model_control_traffic=True,
            controller=CentralController(ControlParams(epoch=500)),
        )
        sim = Simulator(cfg)
        sim.run(2500)
        assert sim.control_flits_sent > 0
        # roughly 2n flits per epoch (§6.6)
        epochs = 5
        assert sim.control_flits_sent <= 2 * 16 * epochs

    def test_hub_burst_matches_per_flit_loop(self, rng):
        """The hub's rate-update burst (one vectorized push_burst) must
        accept exactly the flits the replaced one-at-a-time loop did —
        same count, same destinations, same queue state."""
        import copy

        wl = make_category_workload("H", 16, rng)
        cfg = SimulationConfig(
            wl, seed=5, epoch=500, model_control_traffic=True,
            controller=CentralController(ControlParams(epoch=500)),
        )
        sim = Simulator(cfg)
        sim.run(2400)  # land mid-epoch with realistic queue occupancy
        ref = copy.deepcopy(sim)

        # Reference: the old semantics, one push per hub->node flit,
        # stopping at the first overflow.
        nodes = np.flatnonzero(ref.cores.active)
        nodes = nodes[nodes != ref.hub]
        queue = ref.network.response_queue
        ref_sent = int(queue.push(
            nodes, np.full(nodes.size, ref.hub, dtype=np.int64),
            FLIT_CONTROL, 1, stamp=ref.cycle,
        ).sum())
        for node in nodes:
            if not queue.push(np.array([ref.hub]), np.array([node]),
                              FLIT_CONTROL, 1, stamp=ref.cycle)[0]:
                break
            ref_sent += 1

        before = sim.control_flits_sent
        sim._inject_control_traffic()
        assert sim.control_flits_sent - before == ref_sent
        real = sim.network.response_queue
        np.testing.assert_array_equal(real.count, queue.count)
        np.testing.assert_array_equal(real.head, queue.head)
        np.testing.assert_array_equal(real.dest, queue.dest)
        np.testing.assert_array_equal(real.kind, queue.kind)
        np.testing.assert_array_equal(real.stamp, queue.stamp)

    def test_hub_burst_stops_at_queue_capacity(self, rng):
        """Overflow path: with the hub's queue nearly full, only the
        remaining-capacity prefix of rate updates is accepted."""
        wl = make_category_workload("H", 16, rng)
        cfg = SimulationConfig(
            wl, seed=5, epoch=500, model_control_traffic=True,
            controller=CentralController(ControlParams(epoch=500)),
        )
        sim = Simulator(cfg)
        queue = sim.network.response_queue
        hub = sim.hub
        free = 2
        while queue.count[hub] < queue.capacity - free:
            queue.push(np.array([hub]), np.array([0]), FLIT_CONTROL, 1)
        active = np.flatnonzero(sim.cores.active)
        expected = int((active != hub).sum()) + free  # reports + prefix
        sim._inject_control_traffic()
        assert sim.control_flits_sent == expected
        assert queue.count[hub] == queue.capacity

    def test_overhead_is_negligible(self, rng):
        wl = make_category_workload("H", 16, rng)
        _, base = run(wl, cycles=3000,
                      controller=CentralController(ControlParams(epoch=500)))
        _, with_ctl = run(wl, cycles=3000, model_control_traffic=True,
                          controller=CentralController(ControlParams(epoch=500)))
        assert with_ctl.system_throughput > base.system_throughput * 0.93


class TestResultSummary:
    def test_summary_mentions_key_metrics(self):
        wl = make_homogeneous_workload("mcf", 16)
        _, res = run(wl)
        text = res.summary()
        assert "IPC/node" in text
        assert "util" in text
