"""Phase-pipeline unit tests and the deadline-abort partial-result test.

The pipeline is the simulator's single cycle loop (DESIGN.md §S21);
these tests pin its construction contract (ordering, hooks, periodic
phases) and the abort guarantee: a :class:`SimulationTimeout` fires on a
cycle boundary, so :meth:`Simulator.result` after an abort is a
well-formed partial result — whole cycles, whole epochs, serializable.
"""

import json

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.guardrails.errors import SimulationTimeout
from repro.rng import child_rng
from repro.sim.pipeline import PhasePipeline
from repro.sim.results import RESULT_SCHEMA_VERSION, SimulationResult
from repro.sim.simulator import Simulator
from repro.traffic.workloads import make_category_workload


class Recorder:
    """Callable phase body that logs (tag, cycle) into a shared list."""

    def __init__(self, log, tag):
        self.log = log
        self.tag = tag

    def __call__(self, cycle):
        self.log.append((self.tag, cycle))


class TestPhasePipeline:
    def test_duplicate_phase_rejected(self):
        pipe = PhasePipeline()
        pipe.append("a", lambda c: None)
        with pytest.raises(ValueError, match="duplicate"):
            pipe.append("a", lambda c: None)

    def test_bad_period_rejected(self):
        pipe = PhasePipeline()
        with pytest.raises(ValueError, match="period"):
            pipe.append("a", lambda c: None, every=0)
        pipe.append("b", lambda c: None, every=5)
        with pytest.raises(ValueError, match="period"):
            pipe.set_period("b", 0)

    def test_set_period_requires_periodic_phase(self):
        pipe = PhasePipeline()
        pipe.append("a", lambda c: None)
        with pytest.raises(ValueError, match="not periodic"):
            pipe.set_period("a", 10)

    def test_unknown_phase_lookup(self):
        pipe = PhasePipeline()
        with pytest.raises(KeyError):
            pipe.phase("missing")
        with pytest.raises(KeyError):
            pipe.post_hook("missing", lambda c: None)

    def test_phases_run_in_registration_order(self):
        log = []
        pipe = PhasePipeline()
        for tag in ("a", "b", "c"):
            pipe.append(tag, Recorder(log, tag))
        cycle_fns, periodic = pipe.compiled()
        assert periodic == ()
        for fn in cycle_fns:
            fn(0)
        assert log == [("a", 0), ("b", 0), ("c", 0)]

    def test_hooks_run_after_phase_in_order(self):
        log = []
        pipe = PhasePipeline()
        pipe.append("a", Recorder(log, "a"))
        pipe.post_hook("a", Recorder(log, "hook1"))
        pipe.post_hook("a", Recorder(log, "hook2"))
        (fn,), _ = pipe.compiled()
        fn(7)
        assert log == [("a", 7), ("hook1", 7), ("hook2", 7)]

    def test_periodic_phase_schedule(self):
        """Periodic phases run post-increment on period boundaries —
        the same epoch semantics the original hand-written loop had."""
        log = []
        pipe = PhasePipeline()
        pipe.append("step", Recorder(log, "step"))
        pipe.append("epoch", Recorder(log, "epoch"), every=3)
        cycle_fns, periodic = pipe.compiled()
        cycle = 0
        while cycle < 7:
            for fn in cycle_fns:
                fn(cycle)
            cycle += 1
            for every, fn in periodic:
                if cycle % every == 0:
                    fn(cycle)
        assert [c for tag, c in log if tag == "epoch"] == [3, 6]
        assert [c for tag, c in log if tag == "step"] == list(range(7))

    def test_timer_wraps_every_phase(self):
        class FakeTimer:
            def __init__(self):
                self.calls = []

            def begin_cycle(self):
                self.calls.append("begin")

            def lap(self, name):
                self.calls.append(name)

        pipe = PhasePipeline()
        pipe.append("a", lambda c: None)
        pipe.append("b", lambda c: None)
        timer = FakeTimer()
        cycle_fns, _ = pipe.compiled(timer)
        for fn in cycle_fns:
            fn(0)
        assert timer.calls == ["begin", "a", "begin", "b"]

    def test_simulator_pipeline_order(self):
        w = make_category_workload("M", 16, child_rng(1, "pipe"))
        sim = Simulator(SimulationConfig(w))
        assert sim.pipeline.names == (
            "behavior", "cores", "memory", "network", "ejection", "epoch"
        )
        assert sim.pipeline.phase("network").hooks == []

    def test_simulator_registers_guardrail_hooks(self):
        w = make_category_workload("M", 16, child_rng(1, "pipe"))
        sim = Simulator(
            SimulationConfig(w, check_invariants=True, watchdog_window=64)
        )
        assert len(sim.pipeline.phase("network").hooks) == 2


class TestDeadlineAbortPartialResult:
    """A wall-clock abort must leave a usable partial result behind."""

    @pytest.fixture()
    def aborted(self):
        w = make_category_workload("H", 16, child_rng(7, "abort"))
        sim = Simulator(SimulationConfig(w, seed=2, epoch=256))
        sim.run(300)  # a completed stretch first, mid-epoch
        with pytest.raises(SimulationTimeout):
            # The zero budget trips at the next 256-aligned check, after
            # cycle 512's epoch phase already ran — a clean boundary.
            sim.run(1_000_000, deadline=0.0)
        return sim

    def test_aborts_on_cycle_boundary(self, aborted):
        assert aborted.cycle == 512

    def test_partial_result_is_consistent(self, aborted):
        result = aborted.result()
        assert result.cycles == 512
        assert result.flit_conservation_ok
        assert result.injected_flits > 0
        assert np.isfinite(result.avg_net_latency)

    def test_no_half_updated_epoch_series(self, aborted):
        result = aborted.result()
        # Exactly one sample per completed epoch, every series aligned.
        assert len(result.epochs) == result.cycles // 256
        assert result.epochs.cycles == [256, 512]
        for name in result.epochs.names():
            assert len(result.epochs[name]) == len(result.epochs)

    def test_partial_result_serializes(self, aborted):
        result = aborted.result()
        payload = json.dumps(result.to_dict(), allow_nan=False)
        restored = SimulationResult.from_dict(json.loads(payload))
        assert restored.cycles == result.cycles
        assert restored.injected_flits == result.injected_flits
        assert restored.to_dict() == result.to_dict()
        assert result.to_dict()["schema"] == RESULT_SCHEMA_VERSION

    def test_aborted_simulator_can_resume(self, aborted):
        """An abort is recoverable: the same simulator can keep running."""
        result = aborted.run(256)
        assert result.cycles == 512 + 256
        assert result.flit_conservation_ok
