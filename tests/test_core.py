"""Unit tests for the closed-loop core model."""

import numpy as np
import pytest

from repro.cpu.core import CoreArray
from repro.network.flit import SEQ_RING
from repro.traffic.applications import APPLICATION_CATALOG, ApplicationBehaviorArray


class FakeNetwork:
    """Accepts every request and records it."""

    def __init__(self, num_nodes, reject=False):
        self.num_nodes = num_nodes
        self.requests = []
        self.reject = reject
        self.backpressure = np.zeros(num_nodes, dtype=bool)

    def request_backpressure(self):
        return self.backpressure

    def enqueue_requests(self, nodes, dest, flits, cycle=0, seq=0):
        if self.reject:
            return np.zeros(nodes.size, dtype=bool)
        self.requests.append((cycle, nodes.copy(), np.asarray(dest).copy(),
                              np.broadcast_to(seq, nodes.shape).copy()))
        return np.ones(nodes.size, dtype=bool)


class FakeLocality:
    def sample(self, nodes, rng):
        return (np.asarray(nodes) + 1) % 16


def make_core(app="mcf", n=16, **kw):
    specs = [APPLICATION_CATALOG[app]] * n
    behavior = ApplicationBehaviorArray(specs, phase_sigma=0.0)
    net = FakeNetwork(n)
    core = CoreArray(
        behavior, FakeLocality(), net, rng=np.random.default_rng(0), **kw
    )
    return core, net


class TestProgress:
    def test_cpu_bound_app_reaches_full_ipc(self):
        core, net = make_core("povray")
        for c in range(1000):
            core.step(c)
            self_deliver(core, net, c, lag=10)
        assert core.ipc(1000).mean() == pytest.approx(3.0, rel=0.05)

    def test_idle_nodes_do_nothing(self):
        specs = [None] * 4
        behavior = ApplicationBehaviorArray(specs)
        net = FakeNetwork(4)
        core = CoreArray(behavior, FakeLocality(), net, rng=np.random.default_rng(0))
        for c in range(100):
            core.step(c)
        assert core.retired.sum() == 0
        assert not net.requests

    def test_memory_bound_app_generates_misses(self):
        core, net = make_core("mcf")
        for c in range(200):
            core.step(c)
            self_deliver(core, net, c, lag=5)
        assert core.misses_issued.sum() > 100

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            make_core(mshr_limit=0)
        with pytest.raises(ValueError):
            make_core(mshr_limit=SEQ_RING)


def self_deliver(core, net, cycle, lag):
    """Deliver replies for all requests issued at least *lag* cycles ago."""
    remaining = []
    for issued_cycle, nodes, dest, seq in net.requests:
        if cycle - issued_cycle >= lag:
            core.on_reply_flits(np.repeat(nodes, 2), np.repeat(seq, 2))
        else:
            remaining.append((issued_cycle, nodes, dest, seq))
    net.requests = remaining


class TestSelfThrottling:
    def test_no_replies_means_core_stalls_at_mshr(self):
        """Without any replies a core issues at most mshr_limit misses —
        the paper's self-throttling property (§3.1)."""
        core, net = make_core("mcf", mshr_limit=8)
        for c in range(2000):
            core.step(c)
        assert core.outstanding.max() <= 8
        assert core.misses_issued.max() <= 8
        assert core.stall_cycles.sum() > 0

    def test_replies_release_stall(self):
        core, net = make_core("mcf", mshr_limit=4)
        for c in range(300):
            core.step(c)
            self_deliver(core, net, c, lag=8)
        # the core keeps making progress well past 4 misses
        assert core.misses_issued.min() > 20

    def test_slower_replies_mean_lower_ipc(self):
        def run(lag):
            core, net = make_core("mcf", mshr_limit=4)
            for c in range(1500):
                core.step(c)
                self_deliver(core, net, c, lag=lag)
            return core.ipc(1500).mean()

        assert run(50) < run(5) * 0.75

    def test_backpressure_stalls(self):
        core, net = make_core("mcf")
        net.backpressure = np.ones(16, dtype=bool)
        for c in range(300):
            core.step(c)
        # cores stall against the full queue after their first gap
        assert not net.requests
        assert core.stall_cycles.sum() > 0


class TestWindowModel:
    def test_straggler_blocks_window(self):
        """In-order retirement: an unanswered oldest miss caps progress
        at window_size instructions even when later misses complete."""
        core, net = make_core("mcf", window_size=64, mshr_limit=16)
        # Run, answering every miss EXCEPT the very first one issued.
        first = None
        for c in range(2000):
            core.step(c)
            remaining = []
            for issued_cycle, nodes, dest, seq in net.requests:
                for i in range(nodes.size):
                    key = (int(nodes[i]), int(seq[i]))
                    if first is None:
                        first = key
                        continue  # never answer the first miss
                    if key != first:
                        core.on_reply_flits(
                            np.array([nodes[i]] * 2), np.array([seq[i]] * 2)
                        )
            net.requests = []
        node = first[0]
        # Progress stopped within window_size of the unanswered miss.
        assert core.retired[node] <= core._issue_pos[node, first[1]] + 64
        assert core.window_stall_cycles[node] > 0

    def test_window_not_binding_for_short_latencies(self):
        core, net = make_core("mcf", window_size=128)
        for c in range(500):
            core.step(c)
            self_deliver(core, net, c, lag=4)
        assert core.window_stall_cycles.sum() == 0


class TestEpochCounters:
    def test_measured_ipf_tracks_application(self):
        core, net = make_core("mcf")
        for c in range(2000):
            core.step(c)
            self_deliver(core, net, c, lag=5)
        ipf = core.measured_ipf()
        # mcf: IPF ~= 1 (Table 1); gap model uses IPF * 3 flits/miss
        assert 0.4 < ipf.mean() < 2.5

    def test_reset_epoch_clears_counters(self):
        core, net = make_core("mcf")
        for c in range(100):
            core.step(c)
            self_deliver(core, net, c, lag=5)
        assert core.epoch_insns.sum() > 0
        core.reset_epoch()
        assert core.epoch_insns.sum() == 0
        assert core.epoch_flits.sum() == 0

    def test_idle_node_reports_infinite_ipf(self):
        specs = [APPLICATION_CATALOG["mcf"], None]
        behavior = ApplicationBehaviorArray(specs, phase_sigma=0.0)
        net = FakeNetwork(2)
        core = CoreArray(behavior, FakeLocality(), net, rng=np.random.default_rng(0))
        for c in range(50):
            core.step(c)
        assert np.isinf(core.measured_ipf()[1])


class TestCompletionAccounting:
    def test_duplicate_node_completions_in_one_cycle(self):
        """Two packets finishing at one node in one call must both count."""
        core, net = make_core("mcf", mshr_limit=8)
        for c in range(50):
            core.step(c)
        node = 0
        reqs = [(n, s) for _, nodes, _, seqs in net.requests
                for n, s in zip(nodes.tolist(), seqs.tolist()) if n == node][:2]
        assert len(reqs) == 2
        before = int(core.outstanding[node])
        nodes = np.array([node] * 4)
        seqs = np.array([reqs[0][1], reqs[0][1], reqs[1][1], reqs[1][1]])
        core.on_reply_flits(nodes, seqs)
        assert core.outstanding[node] == before - 2

    def test_outstanding_never_negative(self):
        core, net = make_core("mcf")
        for c in range(500):
            core.step(c)
            self_deliver(core, net, c, lag=3)
            assert (core.outstanding >= 0).all()
