"""Golden-result regression tests: the refactor's safety net.

``golden_results.json`` pins the sha256 of the canonical JSON encoding
of ``SimulationResult.to_dict()`` for a matrix of bless and buffered
configurations, recorded *before* the phase-pipeline / router-engine
refactor (PR 4).  The tests assert that today's code still produces
bit-identical results for every point — executed serially and through
the parallel harness — so any unintended behavioral change to the
simulator core or the router models fails loudly instead of silently
shifting every number downstream.

Regenerate the fixture (only when a change is *meant* to alter results,
alongside a RESULT_SCHEMA_VERSION review) with::

    PYTHONPATH=src python tests/test_golden_results.py --write
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.harness import JobSpec, run_job, run_jobs
from repro.rng import child_rng
from repro.traffic.workloads import make_category_workload

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_results.json"

#: Seed for the deterministic golden workload assignments.
_WORKLOAD_SEED = 77


def _workload(category: str, nodes: int, tag: str):
    return make_category_workload(
        category, nodes, child_rng(_WORKLOAD_SEED, f"golden-{tag}")
    )


def golden_specs() -> list:
    """The pinned config matrix, as declarative harness job specs.

    Covers both router models, every arbitration policy, both
    topologies, the central controller with modeled control traffic,
    and guardrail-instrumented runs (invariants + watchdog), so the
    refactored engine is compared against the recorded behavior on all
    code paths that must not change results.
    """
    specs = []

    def add(tag, category, nodes, *, network="bless", cycles=2200,
            seed=3, epoch=500, controller=("none",), **config):
        specs.append(
            JobSpec.for_workload(
                _workload(category, nodes, tag),
                cycles,
                seed=seed,
                epoch=epoch,
                controller=controller,
                network=network,
                config=config,
            )
        )

    add("bless-h", "H", 16)
    add("bless-central", "HM", 16, controller=("central",), seed=4,
        model_control_traffic=True)
    add("bless-youngest", "H", 16, arbitration="youngest_first")
    add("bless-random", "H", 16, arbitration="random")
    add("bless-torus", "ML", 25, topology="torus", locality="exponential",
        locality_param=1.0)
    add("bless-guarded", "H", 16, check_invariants=True,
        watchdog_window=2000, max_flit_age=4000)
    add("buffered-h", "H", 16, network="buffered")
    add("buffered-central", "HM", 16, network="buffered",
        controller=("central",), seed=4)
    add("buffered-torus", "ML", 25, network="buffered", topology="torus",
        locality="exponential", locality_param=1.0)
    add("buffered-guarded", "H", 16, network="buffered",
        check_invariants=True)
    return specs


def result_hash(result) -> str:
    """sha256 of the canonical strict-JSON encoding of a result."""
    payload = json.dumps(
        result.to_dict(), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing: {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_results.py --write`"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def golden() -> dict:
    return _load_golden()


class TestGoldenResults:
    def test_fixture_matches_spec_matrix(self, golden):
        """Every matrix point is pinned, keyed by its content hash."""
        expected = {spec.content_hash() for spec in golden_specs()}
        assert set(golden["results"]) == expected

    @pytest.mark.parametrize(
        "spec", golden_specs(), ids=lambda s: s.label()
    )
    def test_serial_result_is_bit_identical(self, golden, spec):
        entry = golden["results"][spec.content_hash()]
        assert result_hash(run_job(spec)) == entry["result_hash"]

    def test_parallel_results_are_bit_identical(self, golden):
        """The process-pool path produces the same bytes as serial."""
        specs = golden_specs()[:4] + golden_specs()[-2:]
        report = run_jobs(specs, jobs=2, progress=False)
        for spec, result in zip(specs, report.results):
            entry = golden["results"][spec.content_hash()]
            assert result_hash(result) == entry["result_hash"]


def write_golden() -> dict:
    """Record the fixture from the current code (regeneration entry)."""
    payload = {"workload_seed": _WORKLOAD_SEED, "results": {}}
    for spec in golden_specs():
        result = run_job(spec)
        payload["results"][spec.content_hash()] = {
            "label": spec.label(),
            "result_hash": result_hash(result),
        }
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return payload


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        sys.exit("usage: python tests/test_golden_results.py --write")
    recorded = write_golden()
    for entry in recorded["results"].values():
        print(f"{entry['result_hash']}  {entry['label']}")
    print(f"wrote {GOLDEN_PATH}")
