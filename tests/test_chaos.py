"""Tests for repro.chaos: campaigns, determinism, reports, failover.

The campaign tests run with ``check_invariants=True`` on purpose: the
whole point of the two-phase quiesce/hard-down protocol is that the
losslessness invariant holds *through* every topology transition, so
every run here doubles as an invariant-checker stress test.
"""

import json
import pathlib

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosEvent,
    ChaosReport,
    ChaosSchedule,
)
from repro.control.central import CentralController, ControlParams
from repro.experiments.runner import run_workload
from repro.harness import JobSpec, run_job, run_jobs
from repro.sim.results import SimulationResult
from repro.topology.mesh import Mesh2D
from repro.traffic.workloads import make_homogeneous_workload

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow

DEMO = pathlib.Path(__file__).resolve().parents[1] / "examples" / "chaos_demo.json"

#: The reference campaign: one link fails and heals, then one router
#: fail-stops and comes back, all mid-run.
CAMPAIGN = ChaosConfig(
    events=(
        ChaosEvent(500, "link_down", node=5, port=1),
        ChaosEvent(1500, "link_up", node=5, port=1),
        ChaosEvent(2000, "router_down", node=10),
        ChaosEvent(3500, "router_up", node=10),
    ),
    seed=3,
)


def run_campaign(network, config=CAMPAIGN, cycles=4500, nodes=16, **kw):
    wl = make_homogeneous_workload("mcf", nodes)
    return run_workload(
        wl, cycles, seed=1, epoch=500, chaos=config,
        check_invariants=True, network=network, **kw,
    )


@pytest.fixture(scope="module")
def bless_campaign():
    return run_campaign("bless")


class TestCampaigns:
    def test_bless_link_campaign_lossless_with_finite_recovery(self):
        """The ISSUE's acceptance scenario: BLESS survives a mid-run
        link failure + repair with zero flit loss and measured,
        finite recovery after both transitions."""
        config = ChaosConfig(
            events=(
                ChaosEvent(400, "link_down", node=5, port=1),
                ChaosEvent(1500, "link_up", node=5, port=1),
            ),
            seed=3,
        )
        res = run_campaign("bless", config=config, cycles=3000)
        assert res.flit_conservation_ok
        assert res.ejected_flits > 0
        report = res.chaos
        assert isinstance(report, ChaosReport)
        assert len(report.events) == 2
        for rec in report.events:
            assert not rec.skipped
            assert rec.applied_cycle >= rec.cycle
            assert rec.recovery_cycles >= 0  # finite, measured recovery
        assert report.degraded_cycles > 0
        assert report.degraded_flits > 0
        assert 0.0 < report.availability < 1.0

    def test_bless_full_campaign_applies_every_event(self, bless_campaign):
        res = bless_campaign
        assert res.flit_conservation_ok
        report = res.chaos
        assert report.applied_events == len(CAMPAIGN.events)
        assert report.recovered_events >= 1
        assert report.max_recovery_cycles() > 0
        assert report.total_cycles == res.cycles
        # The router fail-stop took effect only after its drain, so the
        # applied cycle trails the scheduled one.
        down = next(e for e in report.events if e.kind == "router_down")
        assert down.applied_cycle > down.cycle

    @pytest.mark.parametrize("network", ["buffered", "hybrid"])
    def test_campaign_lossless_on_every_network(self, network):
        res = run_campaign(network)
        assert res.flit_conservation_ok
        assert res.chaos.applied_events == len(CAMPAIGN.events)

    def test_mtbf_campaign_is_lossless(self):
        """Random (renewal-process) faults obey the same drain protocol
        as scripted ones; connectivity-guarded skips are acceptable,
        flit loss is not."""
        config = ChaosConfig(
            link_mtbf=600.0, link_mttr=200.0, seed=5, max_random_events=6
        )
        res = run_campaign("bless", config=config, cycles=2500)
        assert res.flit_conservation_ok
        assert res.chaos.total_cycles == 2500
        assert len(res.chaos.events) == 12  # 6 down/up pairs materialized

    def test_connectivity_guard_skips_disconnecting_event(self):
        """On a 2x2 mesh, failing a second link of node 0 would isolate
        it; the engine must refuse that event, not partition the
        network."""
        config = ChaosConfig(
            events=(
                ChaosEvent(300, "link_down", node=0, port=1),   # 0-1
                ChaosEvent(1200, "link_down", node=0, port=2),  # 0-2
            ),
            seed=3,
        )
        res = run_campaign("bless", config=config, cycles=2000, nodes=4)
        assert res.flit_conservation_ok
        first, second = res.chaos.events
        assert first.applied_cycle >= 0 and not first.skipped
        assert second.skipped
        assert "disconnect" in second.reason


class TestControllerFailStop:
    CONFIG = dict(
        events=(
            ChaosEvent(800, "controller_down"),
            ChaosEvent(1600, "controller_up"),
        ),
        seed=3,
    )

    def run(self, mode):
        return run_campaign(
            "bless",
            config=ChaosConfig(degraded_mode=mode, **self.CONFIG),
            cycles=2400,
            controller=CentralController(ControlParams(epoch=500)),
        )

    def test_failover_hands_off_to_standby(self):
        report = self.run("failover").chaos
        assert report.applied_events == 2
        assert report.controller_down_epochs >= 1
        assert report.controller_failovers >= 1

    def test_freeze_mode_has_no_failover(self):
        report = self.run("freeze").chaos
        assert report.applied_events == 2
        assert report.controller_down_epochs >= 1
        assert report.controller_failovers == 0


class TestDeterminism:
    def spec(self, chaos=CAMPAIGN):
        return JobSpec(
            app_names=("mcf",) * 16, cycles=2600, seed=1, epoch=500,
            chaos=chaos,
            config=(("check_invariants", True),),
        )

    def test_same_spec_twice_is_bit_identical(self):
        a, b = run_job(self.spec()), run_job(self.spec())
        assert a.to_dict() == b.to_dict()

    def test_parallel_matches_serial(self):
        specs = [self.spec(), self.spec(chaos=None)]
        serial = run_jobs(specs, jobs=1, cache=False)
        parallel = run_jobs(specs, jobs=2, cache=False)
        for a, b in zip(serial.results, parallel.results):
            assert a.to_dict() == b.to_dict()
        assert serial.results[0].chaos is not None
        assert serial.results[1].chaos is None

    def test_empty_chaos_config_is_no_chaos(self):
        """A config that can never emit an event must not perturb the
        run at all: results are bit-identical to ``chaos=None`` and no
        report is attached."""
        wl = make_homogeneous_workload("mcf", 16)
        plain = run_workload(wl, 1500, seed=1, epoch=500)
        empty = run_workload(wl, 1500, seed=1, epoch=500, chaos=ChaosConfig())
        assert not ChaosConfig().any_events
        assert empty.chaos is None
        assert empty.to_dict() == plain.to_dict()

    def test_schedule_is_deterministic_and_sorted(self):
        config = ChaosConfig(
            link_mtbf=400.0, link_mttr=150.0,
            router_mtbf=900.0, router_mttr=300.0,
            controller_mtbf=1200.0, controller_mttr=250.0,
            seed=7, max_random_events=8,
        )
        topo = Mesh2D(4)
        a, b = ChaosSchedule(config, topo), ChaosSchedule(config, topo)
        assert a.events == b.events
        assert len(a) == 2 * 8 * 3
        keys = [(e.cycle, e.kind, e.node, e.port) for e in a.events]
        assert keys == sorted(keys)
        assert a.due(10**9) == list(a.events)
        assert a.exhausted


class TestTransport:
    def test_jobspec_coerces_chaos_config(self):
        spec = JobSpec(app_names=("mcf",) * 16, cycles=1200, chaos=CAMPAIGN)
        assert spec.chaos == CAMPAIGN.to_json()
        assert ChaosConfig.from_json(spec.chaos) == CAMPAIGN
        base = JobSpec(app_names=("mcf",) * 16, cycles=1200)
        assert spec.content_hash() != base.content_hash()
        # with_config must carry the campaign through unchanged.
        assert spec.with_config(profile=True).chaos == spec.chaos

    def test_chaos_runs_are_cacheable(self, tmp_path):
        spec = JobSpec(
            app_names=("mcf",) * 16, cycles=1500, epoch=500, chaos=CAMPAIGN
        )
        cold = run_jobs([spec], jobs=1, cache=tmp_path)
        assert cold.executed == 1
        warm = run_jobs([spec], jobs=1, cache=tmp_path)
        assert warm.all_cached
        assert warm.results[0].to_dict() == cold.results[0].to_dict()
        assert isinstance(warm.results[0].chaos, ChaosReport)

    def test_report_roundtrips_through_result_dict(self, bless_campaign):
        res = bless_campaign
        report = res.chaos
        assert ChaosReport.from_dict(report.to_dict()) == report
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(res.to_dict(), allow_nan=False))
        )
        assert clone.chaos == report
        assert clone.to_dict() == res.to_dict()

    def test_config_json_is_canonical(self):
        text = CAMPAIGN.to_json()
        assert ChaosConfig.from_json(text).to_json() == text
        assert json.dumps(json.loads(text), sort_keys=True,
                          separators=(",", ":")) == text

    def test_committed_demo_campaign_parses(self):
        config = ChaosConfig.from_json(DEMO.read_text())
        assert config.any_events
        assert len(config.events) == 8
        assert config.degraded_mode == "failover"
        kinds = {e.kind for e in config.events}
        assert {"link_down", "router_down", "controller_down",
                "noise_start"} <= kinds


class TestZooTopologies:
    """Chaos campaigns on graph-described topologies (PR 7).

    The quiesce/hard-down drain machinery must be port-count generic:
    a z-axis link on a 3D torus and an inter-chiplet bridge link fail
    and heal mid-run with zero flit loss, exactly like mesh links.
    """

    def _run(self, topology, nodes, events, **kw):
        config = ChaosConfig(events=tuple(events), seed=3)
        return run_campaign(
            "bless", config=config, cycles=3500, nodes=nodes,
            topology=topology, **kw,
        )

    def test_torus3d_z_link_campaign_lossless(self):
        from repro.topology.zoo import UP

        res = self._run("torus3d", 27, [
            ChaosEvent(400, "link_down", node=5, port=UP),
            ChaosEvent(1600, "link_up", node=5, port=UP),
        ])
        assert res.flit_conservation_ok
        assert res.ejected_flits > 0
        report = res.chaos
        assert report.applied_events == 2
        for rec in report.events:
            assert not rec.skipped
            assert rec.recovery_cycles >= 0

    def test_chiplet_bridge_campaign_lossless(self):
        from repro.topology.zoo import BRIDGE_E
        from repro.topology.mesh import EAST

        # Hub 18 bridges tile (0,0) to tile (1,0); node 5's EAST link
        # is an ordinary intra-tile mesh link.
        res = self._run("chiplet", 64, [
            ChaosEvent(400, "link_down", node=18, port=BRIDGE_E),
            ChaosEvent(1200, "link_down", node=5, port=EAST),
            ChaosEvent(2000, "link_up", node=18, port=BRIDGE_E),
            ChaosEvent(2400, "link_up", node=5, port=EAST),
        ])
        assert res.flit_conservation_ok
        assert res.ejected_flits > 0
        report = res.chaos
        assert report.applied_events == 4
        assert all(not rec.skipped for rec in report.events)

    def test_router_fail_stop_on_torus3d(self):
        res = self._run("torus3d", 27, [
            ChaosEvent(500, "router_down", node=13),
            ChaosEvent(2200, "router_up", node=13),
        ])
        assert res.flit_conservation_ok
        assert res.chaos.applied_events == 2
