"""Unit tests for the data-locality models (§3.2)."""

import numpy as np
import pytest

from repro import Mesh2D, Torus2D
from repro.traffic.locality import (
    ExponentialLocality,
    PowerLawLocality,
    UniformStriping,
)


def sample_distances(locality, topo, n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, topo.num_nodes, n)
    dest = locality.sample(src, rng)
    return topo.distance(src, dest), src, dest


class TestUniformStriping:
    def test_never_self(self, mesh8):
        loc = UniformStriping(mesh8)
        _, src, dest = sample_distances(loc, mesh8)
        assert (src != dest).all()

    def test_destinations_cover_whole_mesh(self, mesh4):
        loc = UniformStriping(mesh4)
        rng = np.random.default_rng(1)
        dest = loc.sample(np.zeros(5000, dtype=np.int64), rng)
        assert set(dest.tolist()) == set(range(1, 16))

    def test_destinations_approximately_uniform(self, mesh4):
        loc = UniformStriping(mesh4)
        rng = np.random.default_rng(2)
        dest = loc.sample(np.zeros(30_000, dtype=np.int64), rng)
        counts = np.bincount(dest, minlength=16)[1:]
        assert counts.min() > 0.8 * counts.mean()

    def test_mean_distance_matches_enumeration(self, mesh4):
        loc = UniformStriping(mesh4)
        d, _, _ = sample_distances(loc, mesh4, n=40_000)
        assert d.mean() == pytest.approx(loc.mean_distance(), rel=0.05)

    def test_mean_distance_grows_with_size(self):
        small = UniformStriping(Mesh2D(4)).mean_distance()
        large = UniformStriping(Mesh2D(16)).mean_distance()
        assert large > 3 * small


class TestExponentialLocality:
    def test_rejects_bad_mean(self, mesh8):
        with pytest.raises(ValueError):
            ExponentialLocality(mesh8, mean_distance=0)

    def test_never_self(self, mesh8):
        loc = ExponentialLocality(mesh8, mean_distance=1.0)
        _, src, dest = sample_distances(loc, mesh8)
        assert (src != dest).all()

    def test_paper_percentiles_lambda_one(self):
        """lambda=1: ~95% of requests within 3 hops, ~99% within 5 (§3.2)."""
        topo = Mesh2D(64)
        loc = ExponentialLocality(topo, mean_distance=1.0)
        d, _, _ = sample_distances(loc, topo, n=50_000)
        assert (d <= 3).mean() > 0.93
        assert (d <= 5).mean() > 0.985

    def test_mean_distance_tracks_parameter(self):
        topo = Mesh2D(32)
        for mean in (1.0, 2.0, 4.0):
            loc = ExponentialLocality(topo, mean_distance=mean)
            d, _, _ = sample_distances(loc, topo, n=30_000)
            # discretization (round, min 1) biases small means upward
            assert mean * 0.8 < d.mean() < mean + 0.6

    def test_locality_much_tighter_than_striping(self):
        topo = Mesh2D(16)
        exp_d, _, _ = sample_distances(ExponentialLocality(topo, 1.0), topo)
        uni_d, _, _ = sample_distances(UniformStriping(topo), topo)
        assert exp_d.mean() < uni_d.mean() / 3

    def test_works_on_torus(self):
        topo = Torus2D(8)
        loc = ExponentialLocality(topo, mean_distance=1.0)
        d, src, dest = sample_distances(loc, topo)
        assert (src != dest).all()
        assert d.mean() < 2.5

    def test_edge_nodes_get_valid_destinations(self, mesh4):
        loc = ExponentialLocality(mesh4, mean_distance=3.0)
        rng = np.random.default_rng(3)
        src = np.zeros(5000, dtype=np.int64)  # corner node
        dest = loc.sample(src, rng)
        assert (dest >= 0).all() and (dest < 16).all()
        assert (dest != 0).all()


class TestPowerLawLocality:
    def test_rejects_bad_alpha(self, mesh8):
        with pytest.raises(ValueError):
            PowerLawLocality(mesh8, alpha=1.0)

    def test_never_self(self, mesh8):
        loc = PowerLawLocality(mesh8, alpha=2.5)
        _, src, dest = sample_distances(loc, mesh8)
        assert (src != dest).all()

    def test_heavier_tail_than_exponential(self):
        topo = Mesh2D(32)
        pl_d, _, _ = sample_distances(PowerLawLocality(topo, alpha=2.0), topo)
        ex_d, _, _ = sample_distances(ExponentialLocality(topo, 1.0), topo)
        assert (pl_d > 6).mean() > (ex_d > 6).mean()

    def test_mostly_local(self):
        topo = Mesh2D(32)
        d, _, _ = sample_distances(PowerLawLocality(topo, alpha=2.5), topo)
        assert (d <= 3).mean() > 0.8


class TestRepr:
    def test_reprs_are_informative(self, mesh4):
        assert "1.5" in repr(ExponentialLocality(mesh4, 1.5))
        assert "2.5" in repr(PowerLawLocality(mesh4, 2.5))
        assert "Uniform" in repr(UniformStriping(mesh4))
