"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import Mesh2D, Torus2D, make_category_workload


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def mesh4():
    return Mesh2D(4)


@pytest.fixture
def mesh8():
    return Mesh2D(8)


@pytest.fixture
def torus4():
    return Torus2D(4)


@pytest.fixture
def heavy_workload16(rng):
    """A 16-node workload of high-network-intensity applications."""
    return make_category_workload("H", 16, rng)


@pytest.fixture
def light_workload16(rng):
    """A 16-node workload of CPU-bound applications."""
    return make_category_workload("L", 16, rng)
