"""Unit tests for system-level metrics."""

import numpy as np
import pytest

from repro.metrics import max_slowdown, system_throughput, weighted_speedup
from repro.metrics.collectors import EpochSeries


class TestSystemThroughput:
    def test_sums_ipc(self):
        assert system_throughput([1.0, 2.0, 0.5]) == 3.5

    def test_empty(self):
        assert system_throughput(np.zeros(0)) == 0.0


class TestWeightedSpeedup:
    def test_no_interference_equals_n(self):
        """§6.2: WS is N in an ideal N-node system with no interference."""
        alone = np.array([1.0, 2.0, 3.0])
        assert weighted_speedup(alone, alone) == pytest.approx(3.0)

    def test_contention_lowers_ws(self):
        alone = np.array([2.0, 2.0])
        shared = np.array([1.0, 2.0])
        assert weighted_speedup(shared, alone) == pytest.approx(1.5)

    def test_idle_nodes_excluded(self):
        alone = np.array([2.0, 0.0])
        shared = np.array([1.0, 0.0])
        assert weighted_speedup(shared, alone) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup(np.ones(3), np.ones(2))

    def test_unfair_throughput_gain_visible(self):
        """Raising ΣIPC by starving a slow app does not raise WS — the
        reason the paper evaluates with WS at all."""
        alone = np.array([0.5, 3.0])
        fair = np.array([0.4, 2.4])
        unfair = np.array([0.05, 3.0])  # higher ΣIPC? no: 3.05 > 2.8
        assert system_throughput(unfair) > system_throughput(fair)
        assert weighted_speedup(unfair, alone) < weighted_speedup(fair, alone)


class TestMaxSlowdown:
    def test_ideal_is_one(self):
        alone = np.array([1.0, 2.0])
        assert max_slowdown(alone, alone) == pytest.approx(1.0)

    def test_picks_worst(self):
        alone = np.array([1.0, 2.0])
        shared = np.array([0.5, 1.9])
        assert max_slowdown(shared, alone) == pytest.approx(2.0)

    def test_all_idle(self):
        assert max_slowdown(np.zeros(2), np.zeros(2)) == 1.0


class TestEpochSeries:
    def test_append_and_read(self):
        s = EpochSeries()
        s.append(100, util=0.5, ipc=1.0)
        s.append(200, util=0.7, ipc=0.9)
        np.testing.assert_allclose(s["util"], [0.5, 0.7])
        assert s.cycles == [100, 200]
        assert len(s) == 2

    def test_unknown_series_raises(self):
        s = EpochSeries()
        s.append(1, util=0.1)
        with pytest.raises(KeyError):
            s["nope"]

    def test_names_sorted(self):
        s = EpochSeries()
        s.append(1, b=1.0, a=2.0)
        assert s.names() == ["a", "b"]
