"""Unit tests for system-level metrics."""

import numpy as np
import pytest

from repro.metrics import max_slowdown, system_throughput, weighted_speedup
from repro.metrics.collectors import EpochSeries


class TestSystemThroughput:
    def test_sums_ipc(self):
        assert system_throughput([1.0, 2.0, 0.5]) == 3.5

    def test_empty(self):
        assert system_throughput(np.zeros(0)) == 0.0


class TestWeightedSpeedup:
    def test_no_interference_equals_n(self):
        """§6.2: WS is N in an ideal N-node system with no interference."""
        alone = np.array([1.0, 2.0, 3.0])
        assert weighted_speedup(alone, alone) == pytest.approx(3.0)

    def test_contention_lowers_ws(self):
        alone = np.array([2.0, 2.0])
        shared = np.array([1.0, 2.0])
        assert weighted_speedup(shared, alone) == pytest.approx(1.5)

    def test_idle_nodes_excluded(self):
        alone = np.array([2.0, 0.0])
        shared = np.array([1.0, 0.0])
        assert weighted_speedup(shared, alone) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup(np.ones(3), np.ones(2))

    def test_unfair_throughput_gain_visible(self):
        """Raising ΣIPC by starving a slow app does not raise WS — the
        reason the paper evaluates with WS at all."""
        alone = np.array([0.5, 3.0])
        fair = np.array([0.4, 2.4])
        unfair = np.array([0.05, 3.0])  # higher ΣIPC? no: 3.05 > 2.8
        assert system_throughput(unfair) > system_throughput(fair)
        assert weighted_speedup(unfair, alone) < weighted_speedup(fair, alone)


class TestMaxSlowdown:
    def test_ideal_is_one(self):
        alone = np.array([1.0, 2.0])
        assert max_slowdown(alone, alone) == pytest.approx(1.0)

    def test_picks_worst(self):
        alone = np.array([1.0, 2.0])
        shared = np.array([0.5, 1.9])
        assert max_slowdown(shared, alone) == pytest.approx(2.0)

    def test_all_idle(self):
        assert max_slowdown(np.zeros(2), np.zeros(2)) == 1.0


class TestEpochSeries:
    def test_append_and_read(self):
        s = EpochSeries()
        s.append(100, util=0.5, ipc=1.0)
        s.append(200, util=0.7, ipc=0.9)
        np.testing.assert_allclose(s["util"], [0.5, 0.7])
        assert s.cycles == [100, 200]
        assert len(s) == 2

    def test_unknown_series_raises(self):
        s = EpochSeries()
        s.append(1, util=0.1)
        with pytest.raises(KeyError):
            s["nope"]

    def test_names_sorted(self):
        s = EpochSeries()
        s.append(1, b=1.0, a=2.0)
        assert s.names() == ["a", "b"]

    def test_series_first_recorded_midrun_is_backfilled(self):
        """Regression: a series that first appears at epoch 3 used to
        start at index 0, silently misaligning with ``cycles``."""
        s = EpochSeries()
        s.append(100, util=0.5)
        s.append(200, util=0.6)
        s.append(300, util=0.7, throttle=0.9)  # first appears mid-run
        assert len(s["throttle"]) == len(s) == 3
        np.testing.assert_array_equal(
            np.isnan(s["throttle"]), [True, True, False]
        )
        assert s["throttle"][2] == 0.9
        np.testing.assert_allclose(s["util"], [0.5, 0.6, 0.7])

    def test_series_omitted_from_an_epoch_is_padded(self):
        s = EpochSeries()
        s.append(100, util=0.5, throttle=0.9)
        s.append(200, util=0.6)  # throttle omitted this epoch
        s.append(300, util=0.7, throttle=0.8)
        np.testing.assert_array_equal(
            np.isnan(s["throttle"]), [False, True, False]
        )
        assert all(len(s[name]) == 3 for name in s.names())

    def test_backfilled_series_roundtrips_strict_json(self):
        import json

        s = EpochSeries()
        s.append(100, util=0.5)
        s.append(200, util=0.6, late=1.0)
        text = json.dumps(s.to_dict(), allow_nan=False)  # must not raise
        clone = EpochSeries.from_dict(json.loads(text))
        assert clone == s
        np.testing.assert_array_equal(np.isnan(clone["late"]), [True, False])
