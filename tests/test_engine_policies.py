"""Arbitration-policy equivalence for the unified router engine.

The refactor moved arbitration out of ``bless.py`` into pluggable
:class:`~repro.network.engine.ArbitrationPolicy` objects.  These tests
pin the equivalence contract: the named policies must compute exactly
the keys the pre-refactor code computed, and a ``BlessNetwork`` must
behave identically to a hand-assembled ``RouterEngine`` carrying the
same policy — same seed, same traffic, same ejection order.
"""

import numpy as np
import pytest

from repro.network.bless import BlessNetwork
from repro.network.engine import (
    ARBITRATION_POLICIES,
    DeflectFlowControl,
    OldestFirst,
    RandomArbitration,
    RouterEngine,
    YoungestFirst,
)
from repro.network.flit import meta_src, pack_meta, priority_key

_KEY_MAX = np.iinfo(np.int64).max


def _drive(net, cycles, nodes, p, seed=11):
    """Random all-to-all traffic; returns the full ejection trace."""
    rng = np.random.default_rng(seed)
    trace = []
    for c in range(cycles):
        srcs = np.flatnonzero(rng.random(nodes) < p)
        if srcs.size:
            dests = (srcs + 1 + rng.integers(0, nodes - 1, srcs.size)) % nodes
            net.enqueue_requests(srcs, dests, 1, cycle=c)
        ej = net.step(c)
        trace.append(
            (c, ej.node.tolist(), ej.src.tolist(), ej.seq.tolist())
        )
    return trace


def _random_flits(rng, n):
    src = rng.integers(0, 64, n)
    meta = pack_meta(rng.integers(0, 64, n), src, 1, rng.integers(0, 1000, n))
    birth = rng.integers(0, 10_000, n)
    return meta, birth.astype(np.int64)


class TestPolicyKeys:
    """The key formulas each named policy must implement."""

    def test_registry_names(self):
        assert set(ARBITRATION_POLICIES) == {
            "oldest_first", "youngest_first", "random"
        }
        for name, cls in ARBITRATION_POLICIES.items():
            assert cls.name == name

    def test_oldest_first_is_priority_key(self, rng):
        meta, birth = _random_flits(rng, 200)
        keys = OldestFirst().keys(None, birth, meta)
        assert np.array_equal(keys, priority_key(birth, meta_src(meta)))

    def test_youngest_first_inverts_oldest(self, rng):
        meta, birth = _random_flits(rng, 200)
        oldest = OldestFirst().keys(None, birth, meta)
        youngest = YoungestFirst().keys(None, birth, meta)
        assert np.array_equal(youngest, -oldest)

    def test_random_draws_from_engine_stream(self, mesh4):
        """Random keys come off the engine's arbitration RNG, nothing else."""
        net = RouterEngine(
            mesh4, DeflectFlowControl(), arbitration="random",
            rng=np.random.default_rng(77),
        )
        meta = np.zeros(50, dtype=np.int64)
        birth = np.zeros(50, dtype=np.int64)
        keys = RandomArbitration().keys(net, birth, meta)
        expected = np.random.default_rng(77).integers(
            0, _KEY_MAX, size=50, dtype=np.int64
        )
        assert np.array_equal(keys, expected)

    def test_unknown_policy_rejected(self, mesh4):
        with pytest.raises(ValueError, match="fifo"):
            BlessNetwork(mesh4, arbitration="fifo")


class TestBlessEngineEquivalence:
    """BlessNetwork must be exactly engine + DeflectFlowControl + policy."""

    @pytest.mark.parametrize("policy", sorted(ARBITRATION_POLICIES))
    @pytest.mark.parametrize("traffic_seed", [3, 11, 42])
    def test_same_ejection_order(self, mesh4, policy, traffic_seed):
        bless = BlessNetwork(
            mesh4, arbitration=policy, rng=np.random.default_rng(9)
        )
        engine = RouterEngine(
            mesh4, DeflectFlowControl(eject_width=1), arbitration=policy,
            rng=np.random.default_rng(9),
        )
        t1 = _drive(bless, 300, 16, 0.6, seed=traffic_seed)
        t2 = _drive(engine, 300, 16, 0.6, seed=traffic_seed)
        assert t1 == t2
        assert bless.stats.deflections == engine.stats.deflections
        assert bless.stats.flit_hops == engine.stats.flit_hops
        assert bless.stats.latency_sum == engine.stats.latency_sum

    def test_eject_width_carries_over(self, mesh4):
        bless = BlessNetwork(mesh4, eject_width=2)
        engine = RouterEngine(mesh4, DeflectFlowControl(eject_width=2))
        t1 = _drive(bless, 200, 16, 0.7)
        t2 = _drive(engine, 200, 16, 0.7)
        assert t1 == t2


class TestPolicyBehavior:
    """The policies must actually change arbitration outcomes."""

    def test_oldest_vs_youngest_diverge(self, mesh4):
        oldest = BlessNetwork(mesh4, arbitration="oldest_first")
        youngest = BlessNetwork(mesh4, arbitration="youngest_first")
        t1 = _drive(oldest, 400, 16, 0.7)
        t2 = _drive(youngest, 400, 16, 0.7)
        assert t1 != t2

    def test_random_reproducible_per_seed(self, mesh4):
        a = BlessNetwork(mesh4, arbitration="random", rng=np.random.default_rng(5))
        b = BlessNetwork(mesh4, arbitration="random", rng=np.random.default_rng(5))
        assert _drive(a, 300, 16, 0.7) == _drive(b, 300, 16, 0.7)

    def test_random_differs_across_seeds(self, mesh4):
        a = BlessNetwork(mesh4, arbitration="random", rng=np.random.default_rng(5))
        b = BlessNetwork(mesh4, arbitration="random", rng=np.random.default_rng(6))
        assert _drive(a, 300, 16, 0.7) != _drive(b, 300, 16, 0.7)

    @pytest.mark.parametrize("policy", sorted(ARBITRATION_POLICIES))
    def test_all_policies_remain_lossless(self, mesh4, policy):
        net = BlessNetwork(
            mesh4, arbitration=policy, rng=np.random.default_rng(2)
        )
        _drive(net, 300, 16, 0.7)
        assert (
            net.stats.injected_flits
            == net.stats.ejected_flits + net.in_flight_flits()
        )
