"""Tests for repro.analysis: the simulation-safety static analyzer.

Three layers:

- exact per-rule findings over the fixture corpus in
  ``tests/analysis_fixtures/`` (rule id, line, message fragment);
- drift demonstrations: mutating *real* source (a new SimulationResult
  field without a version bump, an undeclared phase write, an orphaned
  CLI flag) must produce the corresponding finding;
- the meta-test: the analyzer exits 0 over ``src/`` — the tree it
  polices stays clean.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, RULE_IDS, analyze, field_hash
from repro.analysis.schema import expected_hash_for_source

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "analysis_fixtures"
RESULTS_PY = REPO / "src" / "repro" / "sim" / "results.py"
SIMULATOR_PY = REPO / "src" / "repro" / "sim" / "simulator.py"
MAIN_PY = REPO / "src" / "repro" / "__main__.py"


def findings_for(path, **kwargs):
    return analyze([str(path)], **kwargs)


def as_tuples(findings):
    return [(f.rule, f.line) for f in findings]


def run_cli(*args, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# Fixture corpus: exact findings per rule
# ----------------------------------------------------------------------
def test_det001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "det001_clock.py")
    assert as_tuples(findings) == [
        ("DET001", 12),
        ("DET001", 13),
        ("DET001", 14),
        ("DET001", 15),
        ("DET001", 16),
    ]
    messages = [f.message for f in findings]
    assert "time.time()" in messages[0]
    assert "os.urandom()" in messages[1]
    assert "random.random()" in messages[2]
    assert "numpy.random.random()" in messages[3]
    assert "unseeded numpy.random.default_rng()" in messages[4]
    # line 17 carries `# repro: noqa[DET001]` and must be absent
    assert 17 not in [f.line for f in findings]


def test_det002_fixture_exact_findings():
    findings = findings_for(FIXTURES / "det002_iteration.py")
    assert as_tuples(findings) == [
        ("DET002", 7),
        ("DET002", 9),
        ("DET002", 10),
        ("DET002", 11),
    ]
    assert "table.keys()" in findings[0].message
    assert "table.values()" in findings[1].message
    assert "a set literal" in findings[2].message
    assert "set(...)" in findings[3].message
    # line 13 iterates sorted(...); line 15 is noqa'd: both absent
    assert {13, 15}.isdisjoint({f.line for f in findings})


def test_det003_fixture_exact_findings():
    findings = findings_for(FIXTURES / "det003_rng.py")
    assert as_tuples(findings) == [("DET003", 11), ("DET003", 12)]
    assert "numpy.random.default_rng(...)" in findings[0].message
    assert "numpy.random.PCG64(...)" in findings[1].message
    # the child_rng call and the noqa'd constructor produce nothing
    assert {13, 14}.isdisjoint({f.line for f in findings})


def test_det004_fixture_exact_findings():
    findings = findings_for(FIXTURES / "det004_sort.py")
    assert as_tuples(findings) == [
        ("DET004", 8),
        ("DET004", 9),
        ("DET004", 10),
        ("DET004", 11),
        ("DET004", 12),
    ]
    messages = [f.message for f in findings]
    assert "numpy.argsort()" in messages[0]
    assert "numpy.sort()" in messages[1]
    assert "data.argsort()" in messages[2]
    assert "non-stable kind=" in messages[3]
    assert "data.sort()" in messages[4]
    # stable/mergesort kinds, list.sort(key=...), sorted(), and the
    # noqa'd call (lines 13-17) produce nothing
    assert {13, 14, 15, 16, 17}.isdisjoint({f.line for f in findings})


def test_schema001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "schema001_drift.py")
    assert as_tuples(findings) == [
        ("SCHEMA001", 4),
        ("SCHEMA001", 8),
        ("SCHEMA001", 16),
    ]
    stale_hash, not_restored, not_serialized = findings
    assert "'not-the-right-hash'" in stale_hash.message
    # the message carries the correct replacement value
    expected = field_hash(7, frozenset({"schema", "cycles", "extra"}))
    assert expected in stale_hash.message
    assert "'extra' is serialized by to_dict" in not_restored.message
    assert "'legacy' is read in from_dict" in not_serialized.message


def test_phase001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "phase001_contract.py")
    assert as_tuples(findings) == [
        ("PHASE001", 3),
        ("PHASE001", 3),
        ("PHASE001", 13),
        ("PHASE001", 20),
    ]
    messages = "\n".join(f.message for f in findings)
    assert "'step_missing' but no class in this module defines it" in messages
    assert "'step_epoch' writes self.ghost, but no reachable code" in messages
    assert "'step_network' writes undeclared attribute self.sneaky" in messages
    assert (
        "'step_epoch' writes undeclared attribute self.hidden "
        "(via self._refresh())" in messages
    )


def test_cfg001_fixture_exact_findings():
    findings = findings_for(FIXTURES / "cfg001_drift.py")
    assert as_tuples(findings) == [
        ("CFG001", 6),
        ("CFG001", 6),
        ("CFG001", 20),
        ("CFG001", 29),
        ("CFG001", 29),
    ]
    messages = "\n".join(f.message for f in findings)
    assert "'phantom', but build_parser registers no such dest" in messages
    assert "'seed', which IS a SimulationConfig field" in messages
    assert "CLI dest 'typo_field' matches no SimulationConfig field" in messages
    assert "JobSpec field 'cycles' is missing from the canonical()" in messages
    assert "encodes key 'extra_key', which is not a JobSpec field" in messages


def test_clean_fixture_has_no_findings():
    assert findings_for(FIXTURES / "clean_ok.py") == []


def test_fixture_directory_totals():
    findings = findings_for(FIXTURES)
    by_rule = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    assert by_rule == {
        "CACHE001": 3,
        "CFG001": 5,
        "DET001": 5,
        "DET002": 4,
        "DET003": 2,
        "DET004": 5,
        "NATIVE001": 2,
        "NATIVE002": 2,
        "NATIVE003": 2,
        "PHASE001": 4,
        "REG001": 3,
        "RNG001": 4,
        "RNG002": 3,
        "SCHEMA001": 3,
    }


# ----------------------------------------------------------------------
# Scope model and suppressions
# ----------------------------------------------------------------------
def test_det_rules_ignore_files_outside_sim_scope(tmp_path):
    victim = tmp_path / "helper.py"
    victim.write_text("import time\n\nNOW = time.time()\n")
    assert findings_for(victim) == []


def test_scope_pragma_opts_a_file_in(tmp_path):
    victim = tmp_path / "helper.py"
    victim.write_text(
        "# repro: analysis-scope=sim\nimport time\n\nNOW = time.time()\n"
    )
    findings = findings_for(victim)
    assert as_tuples(findings) == [("DET001", 4)]


def test_bare_noqa_suppresses_every_rule(tmp_path):
    victim = tmp_path / "helper.py"
    victim.write_text(
        "# repro: analysis-scope=sim\nimport time\n\n"
        "NOW = time.time()  # repro: noqa\n"
    )
    assert findings_for(victim) == []


def test_select_and_ignore_filter_rules():
    path = FIXTURES / "det001_clock.py"
    only_det2 = findings_for(path, select=["DET002"])
    assert only_det2 == []
    both = findings_for(FIXTURES, select=["DET001", "DET002"])
    assert {f.rule for f in both} == {"DET001", "DET002"}
    without = findings_for(FIXTURES, ignore=["DET001"])
    assert "DET001" not in {f.rule for f in without}


def test_parse_error_becomes_parse000_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = findings_for(bad)
    assert [f.rule for f in findings] == ["PARSE000"]


def test_finding_format_is_location_prefixed():
    finding = findings_for(FIXTURES / "det003_rng.py")[0]
    assert re.match(
        r".*det003_rng\.py:11:\d+: DET003 ", finding.format()
    )


# ----------------------------------------------------------------------
# Drift demonstrations against the real tree
# ----------------------------------------------------------------------
def test_real_results_module_hash_is_pinned_correctly():
    text = RESULTS_PY.read_text(encoding="utf-8")
    version, expected = expected_hash_for_source(text, str(RESULTS_PY))
    match = re.search(r'"([0-9a-f]{64})"', text)
    assert match is not None, "RESULT_SCHEMA_FIELD_HASH missing"
    assert match.group(1) == expected
    import repro.sim.results as results

    assert version == results.RESULT_SCHEMA_VERSION
    assert results.RESULT_SCHEMA_FIELD_HASH == expected


def test_schema001_catches_new_field_without_version_bump(tmp_path):
    """Adding a to_dict field and not bumping the version must fail."""
    text = RESULTS_PY.read_text(encoding="utf-8")
    mutated = text.replace(
        '"schema": RESULT_SCHEMA_VERSION,',
        '"schema": RESULT_SCHEMA_VERSION,\n            "sneaky_field": 0,',
        1,
    )
    assert mutated != text
    victim = tmp_path / "results.py"
    victim.write_text(mutated)
    findings = findings_for(victim, select=["SCHEMA001"])
    hash_findings = [
        f for f in findings if "sneaky_field" in f.message or "hashes to" in f.message
    ]
    assert hash_findings, findings
    assert any(
        "bump RESULT_SCHEMA_VERSION" in f.message for f in hash_findings
    )


def test_phase001_catches_undeclared_write_in_real_simulator(tmp_path):
    """A phase writing undeclared simulator state must fail."""
    text = SIMULATOR_PY.read_text(encoding="utf-8")
    mutated = text.replace(
        "    def _behavior_phase(self, cycle: int) -> None:\n",
        "    def _behavior_phase(self, cycle: int) -> None:\n"
        "        self.rogue_state = cycle\n",
        1,
    )
    assert mutated != text
    victim = tmp_path / "simulator.py"
    victim.write_text(mutated)
    findings = findings_for(victim, select=["PHASE001"])
    assert any(
        "'_behavior_phase' writes undeclared attribute self.rogue_state"
        in f.message
        for f in findings
    ), findings


def test_phase001_requires_contract_where_pipelines_are_built(tmp_path):
    victim = tmp_path / "pipe.py"
    victim.write_text(
        "# repro: analysis-scope=sim\n"
        "from repro.sim.pipeline import PhasePipeline\n\n"
        "def build():\n"
        "    return PhasePipeline()\n"
    )
    findings = findings_for(victim, select=["PHASE001"])
    assert len(findings) == 1
    assert "declares no PHASE_WRITES contract" in findings[0].message


def test_cfg001_catches_orphaned_cli_flag(tmp_path):
    """Renaming a config field out from under its flag must fail.

    The mutated CLI module and the real config are analyzed together so
    the cross-file check sees both sides.
    """
    text = MAIN_PY.read_text(encoding="utf-8")
    mutated = text.replace('"--locality-param"', '"--locality-sigma"', 1)
    assert mutated != text
    victim = tmp_path / "cli.py"
    victim.write_text(mutated)
    config_py = REPO / "src" / "repro" / "config.py"
    findings = analyze(
        [str(config_py), str(victim)], select=["CFG001"]
    )
    assert any(
        "CLI dest 'locality_sigma' matches no SimulationConfig field"
        in f.message
        for f in findings
    ), findings


# ----------------------------------------------------------------------
# CLI behavior
# ----------------------------------------------------------------------
def test_cli_exits_zero_on_src():
    """The meta-test: the tree the analyzer polices is clean."""
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip() == ""


def test_cli_exits_nonzero_with_rule_ids_on_fixtures():
    proc = run_cli(str(FIXTURES))
    assert proc.returncode == 1
    for rule in ("DET001", "DET002", "DET003", "DET004", "SCHEMA001",
                 "PHASE001", "CFG001"):
        assert rule in proc.stdout


def test_cli_json_format_and_output_artifact(tmp_path):
    artifact = tmp_path / "findings.json"
    proc = run_cli(
        str(FIXTURES / "det003_rng.py"),
        "--format", "json",
        "--output", str(artifact),
    )
    assert proc.returncode == 1
    document = json.loads(proc.stdout)
    assert document["count"] == 2
    assert [f["rule"] for f in document["findings"]] == ["DET003", "DET003"]
    assert {r["id"] for r in document["rules"]} == set(RULE_IDS)
    assert json.loads(artifact.read_text()) == document


def test_cli_select_and_ignore():
    proc = run_cli(str(FIXTURES), "--select", "DET003")
    assert proc.returncode == 1
    assert set(re.findall(r"\b([A-Z]+\d{3})\b", proc.stdout)) == {"DET003"}
    proc = run_cli(str(FIXTURES / "det003_rng.py"), "--ignore", "DET003")
    assert proc.returncode == 0


def test_cli_rejects_unknown_rule_id():
    proc = run_cli("src", "--select", "NOPE999")
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in RULE_IDS:
        assert rule in proc.stdout


def test_rule_registry_is_id_sorted_and_unique():
    assert list(RULE_IDS) == sorted(RULE_IDS)
    assert len(set(RULE_IDS)) == len(RULE_IDS) == len(ALL_RULES)


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
