"""Compiled hot-path backend: equivalence, gating, and allocation tests.

The native backend (``SimulationConfig.backend = "native"``) must be a
pure accelerator: every supported configuration produces results
bit-identical to the numpy engine, and every unsupported configuration
refuses loudly at construction instead of silently diverging.  The
allocation tests pin the PR's zero-allocation claim: after warm-up, the
network phase performs no new numpy array allocations.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.guardrails.faults import FaultConfig
from repro.native import NativeUnsupported, native_available
from repro.sim.simulator import Simulator
from repro.traffic.workloads import make_category_workload

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native backend"
)


def _run(network, backend, nodes=16, cycles=800, seed=7, controller=None, **kw):
    workload = make_category_workload("H", nodes, np.random.default_rng(seed))
    config = SimulationConfig(
        workload, seed=seed, epoch=200, network=network, backend=backend, **kw
    )
    sim = Simulator(config)
    if controller == "distributed":
        from repro.control.distributed import DistributedController

        sim.controller = DistributedController(sim.network)
    return sim.run(cycles).to_dict()


def _canon(result):
    return json.dumps(result, sort_keys=True, default=str)


EQUIVALENCE_CASES = {
    "bless-oldest": dict(network="bless"),
    "bless-youngest": dict(network="bless", arbitration="youngest_first"),
    "bless-random": dict(network="bless", arbitration="random"),
    "bless-eject-width-2": dict(network="bless", eject_width=2),
    "bless-torus": dict(network="bless", topology="torus"),
    "bless-distributed": dict(network="bless", controller="distributed"),
    "buffered-oldest": dict(network="buffered"),
    "buffered-random": dict(network="buffered", arbitration="random"),
    "buffered-distributed": dict(network="buffered", controller="distributed"),
    "bless-control-traffic": dict(network="bless", model_control_traffic=True),
    "bless-watchdog": dict(
        network="bless", watchdog_window=0, max_flit_age=100_000
    ),
}


@needs_native
@pytest.mark.slow
@pytest.mark.parametrize("case", sorted(EQUIVALENCE_CASES))
def test_native_matches_numpy(case):
    """Full-result bit-identity between the numpy and native backends."""
    kwargs = EQUIVALENCE_CASES[case]
    assert _canon(_run(backend="numpy", **kwargs)) == _canon(
        _run(backend="native", **kwargs)
    )


@needs_native
@pytest.mark.slow
def test_native_matches_numpy_8x8():
    """The benchmark-sized grid agrees too, not just the small test mesh."""
    kwargs = dict(network="bless", nodes=64, cycles=600)
    assert _canon(_run(backend="numpy", **kwargs)) == _canon(
        _run(backend="native", **kwargs)
    )


@needs_native
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(network="hybrid"),
        dict(network="bless", trace=True),
        dict(network="bless", check_invariants=True),
        dict(network="bless", faults=FaultConfig(link_fault_rate=0.05)),
    ],
    ids=["hybrid", "trace", "invariants", "faults"],
)
def test_unsupported_configs_refuse(kwargs):
    """Configurations the kernels do not model raise at construction."""
    workload = make_category_workload("H", 16, np.random.default_rng(1))
    config = SimulationConfig(workload, seed=1, backend="native", **kwargs)
    with pytest.raises(NativeUnsupported):
        Simulator(config)


def _warm_simulator(network, backend):
    workload = make_category_workload("H", 64, np.random.default_rng(3))
    sim = Simulator(
        SimulationConfig(
            workload, seed=3, epoch=1000, network=network, backend=backend
        )
    )
    sim.run(600)
    return sim


_NUMPY_DOMAIN = [
    tracemalloc.DomainFilter(inclusive=True, domain=np.lib.tracemalloc_domain)
]


@pytest.mark.parametrize("network", ["bless", "buffered"])
def test_network_phase_steady_state_allocations(network):
    """After warm-up, 100 network-phase cycles retain no new numpy arrays.

    The arena preallocates every cycle-lifetime buffer, so the steady
    state must not accumulate array allocations; only small transient
    compaction outputs (index vectors from ``flatnonzero`` and friends)
    may come and go within a cycle.
    """
    sim = _warm_simulator(network, "numpy")
    net, cycle = sim.network, sim.cycle
    tracemalloc.start()
    try:
        for i in range(20):  # settle tracemalloc's own bookkeeping
            net.step(cycle + i)
        before = tracemalloc.take_snapshot().filter_traces(_NUMPY_DOMAIN)
        worst_peak = 0
        for i in range(100):
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            net.step(cycle + 20 + i)
            peak = tracemalloc.get_traced_memory()[1]
            worst_peak = max(worst_peak, peak - base)
        after = tracemalloc.take_snapshot().filter_traces(_NUMPY_DOMAIN)
    finally:
        tracemalloc.stop()
    grown = [
        d for d in after.compare_to(before, "traceback") if d.size_diff > 0
    ]
    assert not grown, [d.traceback.format() for d in grown[:3]]
    # Transient churn stays far below one cycle-lifetime grid buffer
    # (the pre-arena engine allocated hundreds of KB per cycle here).
    assert worst_peak < 64 * 1024


@needs_native
@pytest.mark.parametrize("network", ["bless", "buffered"])
def test_native_network_phase_is_allocation_free(network):
    """The compiled network phase performs zero numpy allocations."""
    sim = _warm_simulator(network, "native")
    cycle = sim.cycle
    tracemalloc.start()
    try:
        for i in range(20):
            sim._network_phase_native(cycle + i)
        before = tracemalloc.take_snapshot().filter_traces(_NUMPY_DOMAIN)
        worst_peak = 0
        for i in range(100):
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            sim._network_phase_native(cycle + 20 + i)
            peak = tracemalloc.get_traced_memory()[1]
            worst_peak = max(worst_peak, peak - base)
        after = tracemalloc.take_snapshot().filter_traces(_NUMPY_DOMAIN)
    finally:
        tracemalloc.stop()
    new_blocks = [
        d for d in after.compare_to(before, "traceback") if d.size_diff > 0
    ]
    assert not new_blocks
    # Only interpreter-level churn (a few ints and frames), no arrays.
    assert worst_peak < 4 * 1024
