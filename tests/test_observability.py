"""Tests for repro.observability: phase timer, flit tracer, counters,
and the profile driver."""

import json

import numpy as np
import pytest

from repro import (
    FlitTracer,
    PerfCounters,
    PhaseTimer,
    SimulationConfig,
    Simulator,
    make_homogeneous_workload,
)
from repro.observability import EVENT_NAMES, EV_EJECT, EV_HOP, EV_INJECT
from repro.observability.phases import PHASES
from repro.observability.profile import run_profile, write_bench_json


def run(workload=None, cycles=2000, **kw):
    workload = workload or make_homogeneous_workload("mcf", 16)
    kw.setdefault("seed", 5)
    kw.setdefault("epoch", 500)
    sim = Simulator(SimulationConfig(workload, **kw))
    return sim, sim.run(cycles)


class TestPhaseTimer:
    def test_laps_accumulate_into_named_phases(self):
        t = PhaseTimer()
        t.begin_cycle()
        t.lap("cores")
        t.lap("network")
        assert t.seconds["cores"] >= 0.0
        assert t.seconds["network"] >= 0.0
        assert t.total_seconds == pytest.approx(
            sum(t.seconds.values())
        )

    def test_all_phases_present_from_start(self):
        assert set(PhaseTimer().seconds) == set(PHASES)

    def test_shares_sum_to_one_when_any_time(self):
        t = PhaseTimer()
        t.seconds["network"] = 3.0
        t.seconds["cores"] = 1.0
        shares = t.shares()
        assert shares["network"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_timer_shares_are_zero(self):
        assert all(v == 0.0 for v in PhaseTimer().shares().values())

    def test_table_lists_every_phase(self):
        table = PhaseTimer().table()
        for name in PHASES:
            assert name in table


class TestFlitTracer:
    def test_sampling_is_deterministic_per_salt(self):
        a = FlitTracer(sample=0.5, salt=7)
        b = FlitTracer(sample=0.5, salt=7)
        src = np.arange(200)
        seq = np.arange(200) * 3
        kind = np.zeros(200, dtype=int)
        np.testing.assert_array_equal(
            a.sampled(src, seq, kind), b.sampled(src, seq, kind)
        )

    def test_different_salts_sample_different_subsets(self):
        src = np.arange(500)
        seq = np.zeros(500, dtype=int)
        kind = np.zeros(500, dtype=int)
        a = FlitTracer(sample=0.5, salt=1).sampled(src, seq, kind)
        b = FlitTracer(sample=0.5, salt=2).sampled(src, seq, kind)
        assert not np.array_equal(a, b)

    def test_sample_rate_extremes(self):
        src = np.arange(300)
        seq = np.zeros(300, dtype=int)
        kind = np.zeros(300, dtype=int)
        assert not FlitTracer(sample=0.0).sampled(src, seq, kind).any()
        assert FlitTracer(sample=1.0).sampled(src, seq, kind).all()

    def test_sample_rate_roughly_honored(self):
        n = 20_000
        src = np.arange(n) % 64
        seq = np.arange(n)
        kind = np.zeros(n, dtype=int)
        frac = FlitTracer(sample=0.25, salt=3).sampled(src, seq, kind).mean()
        assert 0.2 < frac < 0.3

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tr = FlitTracer(capacity=8, sample=1.0)
        for cycle in range(5):
            tr.record(EV_HOP, cycle, np.arange(4), np.arange(4),
                      np.arange(4), 0, np.arange(4), 1)
        assert len(tr) == 8
        assert tr.recorded == 20
        assert tr.dropped == 12
        # Chronological order survives the wrap: oldest held first.
        cycles = tr.events()["cycle"]
        assert list(cycles) == sorted(cycles)
        assert cycles[0] == 3 and cycles[-1] == 4

    def test_record_filters_by_identity(self):
        tr = FlitTracer(capacity=64, sample=0.5, salt=9)
        src = np.arange(32)
        seq = np.full(32, 5)
        kind = np.zeros(32, dtype=int)
        keep = tr.sampled(src, seq, kind)
        written = tr.record(EV_INJECT, 0, src, src, src + 1, kind, seq, 0)
        assert written == int(keep.sum())
        np.testing.assert_array_equal(
            np.sort(tr.events()["src"][:written]), src[keep]
        )

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            FlitTracer(capacity=0)
        with pytest.raises(ValueError):
            FlitTracer(sample=1.5)

    def test_journeys_reassemble_inject_to_eject(self):
        tr = FlitTracer(capacity=64, sample=1.0)
        tr.record(EV_INJECT, 10, 0, 0, 5, 0, 1, 0)
        tr.record(EV_HOP, 11, 1, 0, 5, 0, 1, 1)
        tr.record(EV_HOP, 12, 2, 0, 5, 0, 1, 2)
        tr.record(EV_EJECT, 13, 5, 0, 5, 0, 1, 3)
        trips = tr.journeys()
        assert len(trips) == 1
        trip = trips[0]
        assert trip["src"] == 0 and trip["dest"] == 5
        assert trip["hops"] == 2
        assert trip["latency"] == 3

    def test_journeys_identity_reuse_opens_fresh_trip(self):
        # seq wraps mod 256: the same (src, seq, kind) identity re-used
        # later must start a new journey, and the first (unejected)
        # instance must not leak its hops into the second.
        tr = FlitTracer(capacity=64, sample=1.0)
        tr.record(EV_INJECT, 0, 0, 0, 5, 0, 1, 0)
        tr.record(EV_HOP, 1, 1, 0, 5, 0, 1, 1)
        tr.record(EV_INJECT, 10, 0, 0, 7, 0, 1, 0)  # re-inject, same identity
        tr.record(EV_HOP, 11, 1, 0, 7, 0, 1, 1)
        tr.record(EV_EJECT, 12, 7, 0, 7, 0, 1, 2)
        trips = tr.journeys()
        assert len(trips) == 1
        assert trips[0]["dest"] == 7
        assert trips[0]["hops"] == 1
        assert trips[0]["inject_cycle"] == 10

    def test_journeys_orphan_events_before_inject_are_dropped(self):
        tr = FlitTracer(capacity=64, sample=1.0)
        three = np.array([3])
        tr.record(EV_HOP, 0, 1, three, 5, 0, 1, 1)  # no inject held (wrapped)
        tr.record(EV_EJECT, 1, 5, three, 5, 0, 1, 2)
        assert tr.journeys() == []

    def test_journeys_matches_reference_loop_randomized(self):
        # Equivalence: the vectorized stable-argsort implementation must
        # reproduce the event-by-event loop exactly, including identity
        # reuse, orphans from ring wrap-around, deflections, and limits.
        rng = np.random.default_rng(1234)
        for capacity in (64, 256, 4096):
            tr = FlitTracer(capacity=capacity, sample=1.0)
            for cycle in range(400):
                count = int(rng.integers(1, 6))
                src = rng.integers(0, 8, size=count)
                seq = rng.integers(0, 4, size=count)  # heavy identity reuse
                kind = rng.integers(0, 2, size=count)
                dest = rng.integers(0, 16, size=count)
                event = int(rng.integers(0, 4))
                tr.record(event, cycle, src, src, dest, kind, seq, 0)
            for limit in (1, 5, 10, 10_000):
                assert tr.journeys(limit) == tr._journeys_loop(limit)

    def test_journeys_matches_reference_loop_real_run(self):
        sim, _ = run(cycles=1500, trace=True, trace_sample=1.0)
        tracer = sim.tracer
        assert tracer is not None and len(tracer) > 0
        assert tracer.journeys(50) == tracer._journeys_loop(50)

    def test_summary_mentions_every_event_kind(self):
        tr = FlitTracer(capacity=16, sample=1.0)
        tr.record(EV_INJECT, 0, 0, 0, 1, 0, 1, 0)
        text = tr.summary()
        for name in EVENT_NAMES:
            assert name in text


class TestPerfCounters:
    def test_derived_rates(self):
        perf = PerfCounters(wall_seconds=2.0, cycles=1000,
                            ejected_flits=5000)
        assert perf.cycles_per_sec == pytest.approx(500.0)
        assert perf.flits_per_sec == pytest.approx(2500.0)

    def test_zero_wall_time_rates_are_zero(self):
        assert PerfCounters().cycles_per_sec == 0.0
        assert PerfCounters().flits_per_sec == 0.0

    def test_dict_roundtrip(self):
        perf = PerfCounters(
            wall_seconds=1.5, cycles=300, injected_flits=10,
            ejected_flits=9, phase_seconds={"network": 1.0, "cores": 0.5},
            trace_events=7, trace_dropped=2,
        )
        clone = PerfCounters.from_dict(perf.to_dict())
        assert clone == perf
        assert json.dumps(perf.to_dict(), allow_nan=False)

    def test_phase_shares_normalize(self):
        perf = PerfCounters(phase_seconds={"network": 3.0, "cores": 1.0})
        assert perf.phase_shares()["network"] == pytest.approx(0.75)


@pytest.mark.slow
class TestSimulatorIntegration:
    def test_default_run_attaches_no_perf(self):
        _, res = run()
        assert res.perf is None

    def test_profiled_run_attaches_phase_breakdown(self):
        sim, res = run(profile=True)
        assert sim.phase_timer is not None
        perf = res.perf
        assert perf is not None
        assert perf.cycles == 2000
        assert perf.wall_seconds > 0.0
        assert set(perf.phase_seconds) == set(PHASES)
        # The attributed time is a large, sane fraction of the wall time.
        assert 0.5 < sum(perf.phase_seconds.values()) / perf.wall_seconds <= 1.01
        assert sum(perf.phase_shares().values()) == pytest.approx(1.0)

    def test_traced_run_records_events(self):
        sim, res = run(trace=True, trace_sample=0.5, trace_capacity=4096)
        assert sim.tracer is not None
        counts = sim.tracer.event_counts()
        assert counts["inject"] > 0
        assert counts["hop"] > 0
        assert counts["eject"] > 0
        assert res.perf is not None
        assert res.perf.trace_events == sim.tracer.recorded

    def test_trace_is_deterministic_given_seed(self):
        kw = dict(trace=True, trace_sample=0.25, trace_capacity=8192, seed=11)
        sim_a, _ = run(**kw)
        sim_b, _ = run(**kw)
        ev_a, ev_b = sim_a.tracer.events(), sim_b.tracer.events()
        for name in ev_a:
            np.testing.assert_array_equal(ev_a[name], ev_b[name])

    def test_buffered_network_traces_too(self):
        sim, _ = run(network="buffered", trace=True, trace_sample=0.5)
        counts = sim.tracer.event_counts()
        assert counts["inject"] > 0
        assert counts["eject"] > 0
        assert counts["deflect"] == 0  # buffered routers never deflect

    def test_observability_does_not_change_simulation(self):
        """Profiling and tracing are read-only: the simulated outcome is
        bit-identical with and without them."""
        _, plain = run(seed=9)
        _, observed = run(seed=9, profile=True, trace=True, trace_sample=0.5)
        d_plain, d_obs = plain.to_dict(), observed.to_dict()
        assert d_plain["perf"] is None and d_obs["perf"] is not None
        d_plain.pop("perf"), d_obs.pop("perf")
        assert d_plain == d_obs


class TestProfileDriver:
    def test_payload_shape_and_strict_json(self, tmp_path):
        payload = run_profile(nodes=16, cycles=600, epoch=300, trace=True)
        assert payload["bench"] == "pr3-observability"
        assert payload["cycles_per_sec"] > 0
        assert payload["flits_per_sec"] > 0
        assert set(payload["phase_seconds"]) == set(PHASES)
        assert sum(payload["phase_shares"].values()) == pytest.approx(1.0)
        assert payload["trace"]["recorded"] > 0
        path = write_bench_json(tmp_path / "bench.json", payload)
        restored = json.loads(path.read_text())
        assert restored["config"]["nodes"] == 16
        assert restored["perf"]["cycles"] == 600

    def test_overhead_check_populates_gate_fields(self):
        payload = run_profile(
            nodes=16, cycles=400, epoch=200, overhead_check=95.0, repeats=1
        )
        assert payload["baseline_cycles_per_sec"] > 0
        assert payload["tracing_disabled_cycles_per_sec"] > 0
        assert payload["overhead_pct"] is not None
        assert payload["overhead_limit_pct"] == 95.0
        assert payload["overhead_ok"] in (True, False)
