"""Robustness tests for the harness: worker death, job timeouts, and
seeded retry-backoff jitter.

The worker-death tests patch ``repro.harness.executor.run_job`` and rely
on the ``fork`` start method to carry the patch into pool workers; they
skip on platforms where workers are spawned fresh.
"""

import multiprocessing
import os
import time

import pytest

from repro.guardrails.errors import GuardrailError
from repro.harness import JobSpec, ResultCache, run_jobs
from repro.harness.executor import _timed_run, job_timeout_s
from repro.harness.jobs import run_job as real_run_job
from repro.experiments.runner import run_workload_safe
from repro.traffic.workloads import make_homogeneous_workload

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-death injection requires fork-inherited patches",
)

#: Sentinel seed: the patched run_job kills its worker for this spec.
CRASH_SEED = 666


def small_spec(**overrides) -> JobSpec:
    kw = dict(app_names=("mcf",) * 16, cycles=1200, seed=1, epoch=400)
    kw.update(overrides)
    return JobSpec(**kw)


def _crash_or_run(spec):
    if spec.seed == CRASH_SEED:
        os._exit(13)  # simulate an OOM kill / segfault: no cleanup, no excuses
    return real_run_job(spec)


def _sleep_or_run(spec):
    if spec.seed == CRASH_SEED:
        time.sleep(60)
    return real_run_job(spec)


class TestWorkerDeath:
    @needs_fork
    def test_dead_worker_fails_only_its_job(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.run_job", _crash_or_run)
        specs = [small_spec(seed=s) for s in (1, CRASH_SEED, 2, 3)]
        report = run_jobs(specs, jobs=2, cache=False)
        victim = report.records[1]
        assert not victim.ok
        assert "WorkerDeath" in victim.error
        assert report.results[1] is None
        # Innocent bystanders — including futures poisoned by the pool
        # break — all complete.
        assert report.failed == 1
        for i in (0, 2, 3):
            assert report.records[i].ok
            assert report.results[i] is not None
            assert report.results[i].to_dict() == real_run_job(specs[i]).to_dict()

    @needs_fork
    def test_crash_results_are_not_cached(self, monkeypatch, tmp_path):
        monkeypatch.setattr("repro.harness.executor.run_job", _crash_or_run)
        specs = [small_spec(seed=CRASH_SEED), small_spec(seed=2)]
        run_jobs(specs, jobs=2, cache=tmp_path)
        # Only the surviving job may populate the cache.
        cache = ResultCache(tmp_path)
        assert cache.get(specs[0]) is None
        assert cache.get(specs[1]) is not None


class TestJobTimeout:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOB_TIMEOUT_S", raising=False)
        assert job_timeout_s() is None
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "")
        assert job_timeout_s() is None
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "0")
        assert job_timeout_s() is None
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "2.5")
        assert job_timeout_s() == 2.5

    def test_serial_timeout_records_failure(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.run_job", _sleep_or_run)
        # The innocent job (~0.6s) fits well inside the 3s budget; the
        # wedged one sleeps 60s and must be cut off at the budget.
        specs = [small_spec(seed=CRASH_SEED),
                 small_spec(seed=2, cycles=600, epoch=300)]
        start = time.perf_counter()
        report = run_jobs(specs, jobs=1, cache=False, timeout_s=3.0)
        assert time.perf_counter() - start < 30
        assert report.results[0] is None
        assert "JobTimeout" in report.records[0].error
        # The budget is per job: the fast job still fits in it.
        assert report.records[1].ok
        assert report.results[1] is not None

    def test_env_var_applies_without_kwarg(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.run_job", _sleep_or_run)
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "1.0")
        report = run_jobs([small_spec(seed=CRASH_SEED)], jobs=1, cache=False)
        assert report.failed == 1
        assert "JobTimeout" in report.records[0].error

    @needs_fork
    def test_parallel_timeout_does_not_break_the_pool(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.run_job", _sleep_or_run)
        specs = [small_spec(seed=CRASH_SEED),
                 small_spec(seed=2, cycles=600, epoch=300)]
        report = run_jobs(specs, jobs=2, cache=False, timeout_s=3.0)
        assert "JobTimeout" in report.records[0].error
        assert report.records[1].ok

    def test_generous_budget_leaves_result_intact(self):
        spec = small_spec()
        result, seconds, error = _timed_run(spec, timeout_s=300.0)
        assert error is None and seconds > 0
        assert result.to_dict() == real_run_job(spec).to_dict()
        # The timer must be cancelled: no stray KeyboardInterrupt later.
        time.sleep(0.05)

    def test_real_ctrl_c_still_propagates(self, monkeypatch):
        def interrupted(_spec):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.harness.executor.run_job", interrupted)
        with pytest.raises(KeyboardInterrupt):
            _timed_run(small_spec(), timeout_s=300.0)


class TestBackoffJitter:
    WL = make_homogeneous_workload("mcf", 16)

    def collect_sleeps(self, seed, retries=3):
        def always_fails(*_a, **_kw):
            raise GuardrailError("boom")

        sleeps = []
        result = run_workload_safe(
            self.WL, 100, retries=retries, backoff=0.2, seed=seed,
            warn=False, _runner=always_fails, _sleep=sleeps.append,
        )
        assert result is None
        return sleeps

    def test_jitter_is_bounded_around_exponential_backoff(self):
        sleeps = self.collect_sleeps(seed=9)
        assert len(sleeps) == 3  # no sleep after the final attempt
        for attempt, slept in enumerate(sleeps):
            base = 0.2 * 2**attempt
            assert 0.5 * base <= slept < 1.5 * base

    def test_jitter_is_deterministic_per_seed(self):
        assert self.collect_sleeps(seed=9) == self.collect_sleeps(seed=9)
        assert self.collect_sleeps(seed=9) != self.collect_sleeps(seed=10)

    def test_retries_advance_the_seed_then_succeed(self):
        seeds, sleeps = [], []

        def flaky(workload, cycles, controller, **kw):
            seeds.append(kw["seed"])
            if len(seeds) < 3:
                raise GuardrailError("transient")
            return "ok"

        result = run_workload_safe(
            self.WL, 100, retries=3, backoff=0.1, seed=5, warn=False,
            _runner=flaky, _sleep=sleeps.append,
        )
        assert result == "ok"
        assert seeds == [5, 6, 7]  # identical seeds would fail identically
        assert len(sleeps) == 2

    def test_zero_backoff_never_sleeps(self):
        def always_fails(*_a, **_kw):
            raise GuardrailError("boom")

        sleeps = []
        run_workload_safe(
            self.WL, 100, retries=2, backoff=0.0, seed=1, warn=False,
            _runner=always_fails, _sleep=sleeps.append,
        )
        assert sleeps == []
