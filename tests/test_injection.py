"""Unit tests for the starvation meter and Algorithm-3 throttle gate."""

import numpy as np
import pytest

from repro.network.injection import InjectionThrottleGate, StarvationMeter


class TestStarvationMeter:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            StarvationMeter(4, 0)

    def test_zero_before_updates(self):
        meter = StarvationMeter(3, 8)
        np.testing.assert_array_equal(meter.rate(), [0, 0, 0])

    def test_all_starved_rate_one(self):
        meter = StarvationMeter(2, 4)
        for _ in range(4):
            meter.update(np.array([True, False]))
        np.testing.assert_allclose(meter.rate(), [1.0, 0.0])

    def test_partial_window_denominator(self):
        meter = StarvationMeter(1, 100)
        meter.update(np.array([True]))
        meter.update(np.array([False]))
        assert meter.rate()[0] == pytest.approx(0.5)

    def test_window_slides(self):
        meter = StarvationMeter(1, 4)
        for _ in range(4):
            meter.update(np.array([True]))
        for _ in range(4):
            meter.update(np.array([False]))
        assert meter.rate()[0] == 0.0

    def test_alternating_half_rate(self):
        meter = StarvationMeter(1, 128)
        for i in range(256):
            meter.update(np.array([i % 2 == 0]))
        assert meter.rate()[0] == pytest.approx(0.5)

    def test_hardware_cost_matches_paper_window(self):
        meter = StarvationMeter(4, 128)
        # W-bit shift register plus an up/down counter counting to W.
        assert meter.storage_bits_per_node() == 128 + 8


class TestThrottleGate:
    def test_rates_validated(self):
        gate = InjectionThrottleGate(4)
        with pytest.raises(ValueError):
            gate.set_rates(np.array([0.5, 1.2, 0.0, 0.0]))
        with pytest.raises(ValueError):
            gate.set_rates(np.zeros(3))

    def test_zero_rate_always_allows(self):
        gate = InjectionThrottleGate(2)
        trying = np.array([True, True])
        for _ in range(300):
            allowed = gate.decide(trying)
            assert allowed.all()

    def test_blocks_exact_fraction_over_period(self):
        gate = InjectionThrottleGate(1)
        gate.set_rates(np.array([0.5]))
        allowed = sum(
            int(gate.decide(np.array([True]))[0]) for _ in range(gate.MAX_COUNT)
        )
        assert allowed == gate.MAX_COUNT // 2

    @pytest.mark.parametrize("rate", [0.25, 0.75, 0.9])
    def test_long_run_block_fraction(self, rate):
        gate = InjectionThrottleGate(1)
        gate.set_rates(np.array([rate]))
        n = gate.MAX_COUNT * 8
        allowed = sum(int(gate.decide(np.array([True]))[0]) for _ in range(n))
        assert allowed / n == pytest.approx(1 - rate, abs=0.02)

    def test_counter_only_advances_on_attempts(self):
        """Algorithm 3: the counter ticks only when trying with a free link."""
        gate = InjectionThrottleGate(2)
        gate.set_rates(np.array([0.5, 0.5]))
        for _ in range(10):
            gate.decide(np.array([True, False]))
        assert gate.counter[0] == 10
        assert gate.counter[1] == 0

    def test_not_trying_is_never_allowed(self):
        gate = InjectionThrottleGate(2)
        allowed = gate.decide(np.array([False, False]))
        assert not allowed.any()

    def test_per_node_rates_independent(self):
        gate = InjectionThrottleGate(2)
        gate.set_rates(np.array([0.0, 0.9]))
        trying = np.array([True, True])
        a = b = 0
        for _ in range(gate.MAX_COUNT * 4):
            allowed = gate.decide(trying)
            a += int(allowed[0])
            b += int(allowed[1])
        assert a == gate.MAX_COUNT * 4
        assert b / (gate.MAX_COUNT * 4) == pytest.approx(0.1, abs=0.02)

    def test_storage_is_seven_bits(self):
        assert InjectionThrottleGate(4).storage_bits_per_node() == 7
