"""Tests for deterministic RNG management."""

import numpy as np

from repro.rng import child_rng, named_rngs


class TestChildRng:
    def test_same_seed_and_name_reproduce(self):
        a = child_rng(7, "destinations").random(100)
        b = child_rng(7, "destinations").random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_names_are_independent(self):
        a = child_rng(7, "destinations").random(100)
        b = child_rng(7, "phases").random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = child_rng(7, "destinations").random(100)
        b = child_rng(8, "destinations").random(100)
        assert not np.array_equal(a, b)

    def test_name_prefixes_do_not_collide(self):
        a = child_rng(7, "ab").random(10)
        b = child_rng(7, "abc").random(10)
        assert not np.array_equal(a, b)

    def test_named_rngs_builds_all(self):
        rngs = named_rngs(1, ["x", "y"])
        assert set(rngs) == {"x", "y"}
        assert not np.array_equal(rngs["x"].random(10), rngs["y"].random(10))
