"""Unit tests for SimulationConfig (Table 2 defaults and validation)."""

import pytest

from repro import SimulationConfig, make_homogeneous_workload
from repro.control import NoController


def cfg(n=16, **kw):
    return SimulationConfig(make_homogeneous_workload("mcf", n), **kw)


class TestTable2Defaults:
    def test_router_and_link_latency(self):
        c = cfg()
        assert c.router_latency == 2
        assert c.link_latency == 1
        assert c.hop_latency == 3

    def test_core_model(self):
        c = cfg()
        assert c.issue_width == 3
        assert c.window_size == 128

    def test_cache_block_two_reply_flits(self):
        """32-byte blocks over 128-bit flits -> 2 data flits."""
        assert cfg().reply_flits == 2

    def test_buffered_router_16_flits_per_input(self):
        """4 VCs x 4 flits of buffering per VC."""
        assert cfg().buffer_capacity == 16

    def test_default_network_is_bless(self):
        c = cfg()
        assert c.network == "bless"
        assert c.arbitration == "oldest_first"

    def test_default_controller_is_none(self):
        assert isinstance(cfg().controller, NoController)


class TestValidation:
    def test_square_width_inferred(self):
        assert cfg(64).width == 8
        assert cfg(64).height == 8

    def test_non_square_needs_dimensions(self):
        with pytest.raises(ValueError):
            cfg(12)
        c = cfg(12, width=4, height=3)
        assert c.num_nodes == 12

    def test_mismatched_dimensions_rejected(self):
        with pytest.raises(ValueError):
            cfg(16, width=4, height=5)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            cfg(topology="ring")

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            cfg(network="wormhole")

    def test_bad_epoch_rejected(self):
        with pytest.raises(ValueError):
            cfg(epoch=0)

    def test_with_override(self):
        base = cfg()
        other = base.with_(network="buffered", seed=9)
        assert other.network == "buffered"
        assert other.seed == 9
        assert base.network == "bless"
        assert other.workload is base.workload
