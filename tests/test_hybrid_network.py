"""Tests for the MinBD-style hybrid network (deflection + side buffer).

Covers the PR-4 acceptance behavior: the hybrid variant deflects
strictly less than BLESS and holds strictly fewer buffered flits than
the buffered baseline on a Fig-3-style hotspot workload, while staying
lossless (conservation + guardrails) and reachable through the
config/CLI/harness stack.
"""

import numpy as np
import pytest

from repro import Mesh2D
from repro.config import SimulationConfig
from repro.harness import JobSpec, run_job
from repro.network import HybridNetwork, build_network
from repro.rng import child_rng
from repro.sim.simulator import Simulator
from repro.traffic.hotspot import HotspotLocality
from repro.traffic.workloads import make_category_workload


def _drive(net, cycles, nodes, p, seed=4):
    """Random all-to-all traffic; returns flits accepted into the NI."""
    rng = np.random.default_rng(seed)
    sent = 0
    for c in range(cycles):
        srcs = np.flatnonzero(rng.random(nodes) < p)
        if srcs.size:
            dests = (srcs + 1 + rng.integers(0, nodes - 1, srcs.size)) % nodes
            sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
        net.step(c)
    return sent


class TestHybridUnit:
    def test_single_packet_delivered(self, mesh4):
        net = HybridNetwork(mesh4)
        net.enqueue_requests(np.array([0]), np.array([15]), 1, cycle=0)
        for c in range(40):
            ej = net.step(c)
            if ej.node.size:
                assert ej.node[0] == 15
                return
        pytest.fail("flit never delivered")

    def test_rejects_bad_side_buffer_capacity(self, mesh4):
        with pytest.raises(ValueError):
            HybridNetwork(mesh4, side_buffer_capacity=0)

    def test_conservation_under_load(self, mesh8):
        net = HybridNetwork(mesh8, side_buffer_capacity=2)
        sent = _drive(net, 300, 64, 0.5)
        assert (
            net.stats.injected_flits
            == net.stats.ejected_flits + net.in_flight_flits()
        )
        for c in range(300, 5000):
            net.step(c)
            if net.stats.ejected_flits == sent:
                break
        assert net.stats.ejected_flits == sent
        assert net.in_flight_flits() == 0
        assert net.side_buffers.occupancy() == 0

    def test_side_buffer_respects_capacity(self, mesh4):
        net = HybridNetwork(mesh4, side_buffer_capacity=2)
        rng = np.random.default_rng(8)
        for c in range(400):
            srcs = np.flatnonzero(rng.random(16) < 0.8)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                net.enqueue_requests(srcs, dests, 1, cycle=c)
            net.step(c)
            assert net.side_buffers.count.max() <= 2
            assert net.side_buffers.count.min() >= 0

    def test_side_buffer_actually_captures(self, mesh4):
        """Under load the side buffer must absorb some deflections."""
        net = HybridNetwork(mesh4)
        _drive(net, 400, 16, 0.8)
        assert net.stats.buffer_writes > 0
        assert net.stats.buffer_reads > 0

    def test_deflects_less_than_bless_same_traffic(self, mesh4):
        from repro.network import BlessNetwork

        bless = BlessNetwork(mesh4)
        hybrid = HybridNetwork(mesh4)
        _drive(bless, 500, 16, 0.7)
        _drive(hybrid, 500, 16, 0.7)
        assert hybrid.stats.deflections < bless.stats.deflections


class TestBuildNetwork:
    def test_factory_dispatches_all_models(self, mesh4):
        from repro.network import BlessNetwork, BufferedNetwork

        w = make_category_workload("H", 16, child_rng(1, "factory"))
        for name, cls in (
            ("bless", BlessNetwork),
            ("buffered", BufferedNetwork),
            ("hybrid", HybridNetwork),
        ):
            cfg = SimulationConfig(w, network=name)
            sim = Simulator(cfg)
            assert type(sim.network) is cls

    def test_factory_rejects_unknown_name(self, mesh4):
        w = make_category_workload("H", 16, child_rng(1, "factory"))
        cfg = SimulationConfig(w)
        cfg.network = "wormhole"  # bypass __post_init__ validation
        with pytest.raises(ValueError, match="wormhole"):
            build_network(cfg, Mesh2D(4))

    def test_config_rejects_unknown_network(self):
        w = make_category_workload("H", 16, child_rng(1, "factory"))
        with pytest.raises(ValueError, match="unknown network"):
            SimulationConfig(w, network="wormhole")

    def test_config_rejects_bad_side_buffer(self):
        w = make_category_workload("H", 16, child_rng(1, "factory"))
        with pytest.raises(ValueError, match="side_buffer_capacity"):
            SimulationConfig(w, side_buffer_capacity=0)


def _hotspot_result(network: str):
    """One Fig-3-style hotspot run; returns (result, network stats)."""
    workload = make_category_workload("H", 64, child_rng(9, "hybrid-hot"))
    topology = Mesh2D(8)
    cfg = SimulationConfig(
        workload,
        seed=3,
        epoch=500,
        network=network,
        locality=HotspotLocality(
            topology, hot_nodes=(27, 36), hot_fraction=0.3,
            seed_rng=child_rng(9, "hybrid-hs"),
        ),
        check_invariants=True,
    )
    sim = Simulator(cfg)
    result = sim.run(2500)
    return result, sim.network.stats


@pytest.mark.slow
class TestHybridAcceptance:
    """The PR acceptance comparison on hotspot traffic (ISSUE 4)."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {n: _hotspot_result(n) for n in ("bless", "hybrid", "buffered")}

    def test_deflection_rate_strictly_below_bless(self, runs):
        assert 0.0 < runs["hybrid"][0].deflection_rate
        assert runs["hybrid"][0].deflection_rate < runs["bless"][0].deflection_rate

    def test_buffer_occupancy_strictly_below_buffered(self, runs):
        hybrid_occ = runs["hybrid"][1].avg_buffer_occupancy
        buffered_occ = runs["buffered"][1].avg_buffer_occupancy
        assert 0.0 < hybrid_occ < buffered_occ

    def test_bufferless_baseline_holds_nothing(self, runs):
        assert runs["bless"][1].avg_buffer_occupancy == 0.0


class TestHybridThroughHarness:
    def test_harness_job_runs_hybrid(self):
        workload = make_category_workload("H", 16, child_rng(2, "hybrid-job"))
        spec = JobSpec.for_workload(
            workload, 800, seed=5, epoch=400, network="hybrid",
            config={"side_buffer_capacity": 2},
        )
        result = run_job(spec)
        assert result.cycles == 800
        assert result.injected_flits > 0

    def test_scaling_sweep_accepts_hybrid(self):
        from repro.experiments.sweeps import scaling_sweep

        out = scaling_sweep(
            sizes=(16,), cycles_for=lambda n: 400,
            networks=("hybrid",), epoch=200, jobs=1, progress=False,
        )
        ((size, point),) = out["hybrid"]
        assert size == 16
        assert point.cycles == 400
