"""Unit tests for workload construction (§6.1)."""

import numpy as np
import pytest

from repro.traffic.workloads import (
    WORKLOAD_CATEGORIES,
    Workload,
    make_category_workload,
    make_checkerboard_workload,
    make_homogeneous_workload,
    make_workload_batch,
)
from repro.traffic.applications import APPLICATION_CATALOG


class TestCategories:
    def test_seven_paper_categories(self):
        assert set(WORKLOAD_CATEGORIES) == {"H", "M", "L", "HML", "HM", "HL", "ML"}

    @pytest.mark.parametrize("category", WORKLOAD_CATEGORIES)
    def test_apps_drawn_from_declared_levels(self, category, rng):
        wl = make_category_workload(category, 64, rng)
        allowed = set(category)
        for spec in wl.specs():
            assert spec.intensity in allowed

    def test_unknown_category_rejected(self, rng):
        with pytest.raises(ValueError):
            make_category_workload("X", 16, rng)

    def test_workload_size(self, rng):
        assert make_category_workload("HML", 256, rng).num_nodes == 256

    def test_randomness_is_seeded(self):
        a = make_category_workload("HML", 16, np.random.default_rng(5))
        b = make_category_workload("HML", 16, np.random.default_rng(5))
        assert a.app_names == b.app_names

    def test_mixed_category_actually_mixes(self, rng):
        wl = make_category_workload("HL", 256, rng)
        counts = wl.intensity_counts()
        assert counts["H"] > 0
        assert counts["L"] > 0
        assert counts["M"] == 0


class TestOtherConstructors:
    def test_homogeneous(self):
        wl = make_homogeneous_workload("mcf", 16)
        assert set(wl.app_names) == {"mcf"}
        assert wl.category == "H"

    def test_homogeneous_unknown_app(self):
        with pytest.raises(ValueError):
            make_homogeneous_workload("quake3", 16)

    def test_checkerboard_pattern(self):
        wl = make_checkerboard_workload("mcf", "gromacs", 4)
        assert wl.app_names[0] == "mcf"
        assert wl.app_names[1] == "gromacs"
        assert wl.app_names[4] == "gromacs"  # next row starts shifted
        assert wl.app_names.count("mcf") == 8
        assert wl.app_names.count("gromacs") == 8

    def test_checkerboard_unknown_app(self):
        with pytest.raises(ValueError):
            make_checkerboard_workload("mcf", "nope", 4)

    def test_batch_cycles_categories(self, rng):
        batch = make_workload_batch(14, 16, rng)
        assert len(batch) == 14
        cats = [wl.category for wl in batch]
        assert cats[:7] == list(WORKLOAD_CATEGORIES)
        assert cats[7:] == list(WORKLOAD_CATEGORIES)

    def test_specs_resolve_catalog(self, rng):
        wl = make_category_workload("M", 16, rng)
        for name, spec in zip(wl.app_names, wl.specs()):
            assert spec is APPLICATION_CATALOG[name]

    def test_workload_with_idle_nodes(self):
        wl = Workload(("mcf", None, "povray", None))
        assert wl.num_nodes == 4
        specs = wl.specs()
        assert specs[1] is None
        assert wl.intensity_counts() == {"H": 1, "M": 0, "L": 1}
