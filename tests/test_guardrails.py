"""Tests for the simulation guardrails: invariant checking, the progress
watchdog, fault injection, and the resilient experiment runner."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import (
    FaultConfig,
    FaultModel,
    InvariantChecker,
    InvariantViolation,
    LivelockError,
    Mesh2D,
    ProgressWatchdog,
    SimulationConfig,
    SimulationTimeout,
    Simulator,
    make_category_workload,
    make_homogeneous_workload,
)
from repro.experiments import run_workload_safe
from repro.network import BlessNetwork, BufferedNetwork
from repro.network.base import EjectedFlits
from repro.network.flit import pack_meta
from repro.topology.mesh import EAST, NORTH, WEST


def _ejected(nodes):
    nodes = np.asarray(nodes, dtype=np.int64)
    zeros = np.zeros(nodes.size, dtype=np.int64)
    return EjectedFlits(nodes, zeros, zeros, zeros, zeros.astype(bool))


def _drive_random_traffic(net, rng, cycles, checker=None, load=0.4):
    """Inject random traffic; returns flits sent.  Runs the checker."""
    n = net.num_nodes
    sent = 0
    for c in range(cycles):
        srcs = np.flatnonzero(rng.random(n) < load)
        if srcs.size:
            dests = (srcs + 1 + rng.integers(0, n - 1, srcs.size)) % n
            sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
        ejected = net.step(c)
        if checker is not None:
            checker.after_step(c, ejected)
    return sent


# ---------------------------------------------------------------------------
# Invariant checker: every invariant must trip on a synthetic violation
# ---------------------------------------------------------------------------
class TestInvariantChecker:
    def test_clean_bless_run_passes(self):
        net = BlessNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        _drive_random_traffic(net, np.random.default_rng(0), 200, checker)
        assert checker.checks_run == 200

    def test_clean_buffered_run_passes(self):
        net = BufferedNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        _drive_random_traffic(net, np.random.default_rng(0), 200, checker)
        assert checker.checks_run == 200

    def test_conservation_violation_dropped_flit(self):
        net = BlessNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        net.stats.injected_flits += 1  # claim an injection that never happened
        with pytest.raises(InvariantViolation) as exc:
            checker.after_step(7, _ejected([]))
        assert exc.value.invariant == "conservation"
        assert exc.value.cycle == 7
        assert exc.value.snapshot["injected_flits"] == 1

    def test_conservation_violation_duplicated_flit(self):
        net = BlessNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        net.stats.ejected_flits += 2  # ejected flits nobody injected
        with pytest.raises(InvariantViolation, match="conservation"):
            checker.after_step(3, _ejected([]))

    def test_eject_width_violation(self):
        net = BlessNetwork(Mesh2D(4), eject_width=1)
        checker = InvariantChecker(net)
        with pytest.raises(InvariantViolation) as exc:
            checker.after_step(11, _ejected([5, 5]))
        assert exc.value.invariant == "eject_width"
        assert 5 in exc.value.nodes

    def test_ghost_link_violation(self):
        net = BlessNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        # Node 0 sits in the mesh corner: it has no NORTH link, so a flit
        # "arriving" there occupies a link that does not exist.
        assert not net.topology.link_exists[0, NORTH]
        net._ring_meta[0, 0 * 4 + NORTH] = pack_meta(1, 2, 0)
        net._ring_birth[0, 0 * 4 + NORTH] = 1
        net.stats.injected_flits += 1  # keep conservation satisfied
        with pytest.raises(InvariantViolation) as exc:
            checker.after_step(4, _ejected([]))
        assert exc.value.invariant == "ghost_link"
        assert 0 in exc.value.nodes

    def test_future_birth_violation(self):
        net = BlessNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        net._ring_meta[0, 0 * 4 + EAST] = pack_meta(1, 2, 0)
        net._ring_birth[0, 0 * 4 + EAST] = 100  # born in the future
        net.stats.injected_flits += 1
        with pytest.raises(InvariantViolation, match="future_birth"):
            checker.after_step(4, _ejected([]))

    def test_age_order_violation(self):
        net = BlessNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        # Two in-flight flits with identical (birth, src): the total
        # order Oldest-First arbitration relies on is broken.
        meta = pack_meta(3, 2, 0)
        net._ring_meta[0, 0 * 4 + EAST] = meta
        net._ring_birth[0, 0 * 4 + EAST] = 1
        net._ring_meta[0, 1 * 4 + WEST] = meta
        net._ring_birth[0, 1 * 4 + WEST] = 1
        net.stats.injected_flits += 2
        with pytest.raises(InvariantViolation, match="age_order"):
            checker.after_step(4, _ejected([]))

    def test_queue_bound_violation(self):
        net = BlessNetwork(Mesh2D(4), queue_capacity=8)
        checker = InvariantChecker(net)
        net.request_queue.count[2] = 9  # beyond capacity
        with pytest.raises(InvariantViolation) as exc:
            checker.after_step(0, _ejected([]))
        assert exc.value.invariant == "queue_bounds"
        assert 2 in exc.value.nodes

    def test_buffered_credit_violation(self):
        net = BufferedNetwork(Mesh2D(4))
        checker = InvariantChecker(net)
        net.reserved[1, EAST] = -1  # negative credit reservation
        with pytest.raises(InvariantViolation, match="queue_bounds"):
            checker.after_step(0, _ejected([]))

    def test_buffered_overfull_buffer_violation(self):
        net = BufferedNetwork(Mesh2D(4), buffer_capacity=4)
        checker = InvariantChecker(net)
        net.buffers.count[3, 0] = 5
        with pytest.raises(InvariantViolation, match="queue_bounds"):
            checker.after_step(0, _ejected([]))

    def test_dest_valid_violation_under_router_faults(self):
        topology = Mesh2D(4)
        fm = FaultModel(topology, FaultConfig(router_fault_rate=0.1, seed=5))
        dead = int(np.flatnonzero(~fm.alive_routers)[0])
        net = BlessNetwork(topology, fault_model=fm)
        checker = InvariantChecker(net)
        # Address a flit to the fail-stopped router, bypassing re-striping,
        # and park it on a healthy link of some live node.
        live = int(np.flatnonzero(fm.alive_routers)[0])
        port = int(np.flatnonzero(fm.link_up[live])[0])
        net._ring_meta[0, live * 4 + port] = pack_meta(dead, live, 0)
        net._ring_birth[0, live * 4 + port] = 1
        net.stats.injected_flits += 1
        with pytest.raises(InvariantViolation, match="dest_valid"):
            checker.after_step(4, _ejected([]))


# ---------------------------------------------------------------------------
# Progress watchdog
# ---------------------------------------------------------------------------
def _stuck_network(birth_cycle=0):
    """A minimal network stand-in that never ejects its one flit."""
    meta = np.array([pack_meta(3, 2, 0)], dtype=np.int64)
    birth = np.array([birth_cycle], dtype=np.int64)
    queue = SimpleNamespace(count=np.zeros(4, dtype=np.int64))
    return SimpleNamespace(
        stats=SimpleNamespace(ejected_flits=0, injected_flits=1),
        in_flight_flits=lambda: 1,
        in_flight_view=lambda: (meta, birth),
        request_queue=queue,
        response_queue=queue,
    )

class TestWatchdog:
    def test_trips_on_artificial_livelock(self):
        watchdog = ProgressWatchdog(window=10)
        net = _stuck_network()
        for cycle in range(10):
            watchdog.after_step(cycle, net)
        with pytest.raises(LivelockError) as exc:
            watchdog.after_step(10, net)
        assert exc.value.cycle == 10
        assert exc.value.snapshot["in_flight"] == 1
        assert exc.value.snapshot["cycles_since_ejection"] == 10
        assert exc.value.snapshot["oldest_flit_age"] == 10

    def test_trips_on_age_bound(self):
        watchdog = ProgressWatchdog(window=0, max_age=5)
        net = _stuck_network(birth_cycle=0)
        watchdog.after_step(5, net)  # age == bound: still fine
        with pytest.raises(LivelockError, match="age bound"):
            watchdog.after_step(6, net)

    def test_progress_resets_the_window(self):
        watchdog = ProgressWatchdog(window=5)
        net = _stuck_network()
        for cycle in range(5):
            watchdog.after_step(cycle, net)
        net.stats.ejected_flits = 1  # progress arrives just in time
        for cycle in range(5, 10):
            watchdog.after_step(cycle, net)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ProgressWatchdog(window=-1)

    def test_buffered_network_deadlocks_on_xy_path_fault(self):
        """XY routing cannot route around a dead link: the watchdog must
        catch the stuck flit instead of burning the cycle budget."""
        topology = Mesh2D(4)
        fm = FaultModel.with_failed_links(topology, [(1, EAST)])
        net = BufferedNetwork(topology, fault_model=fm)
        watchdog = ProgressWatchdog(window=60)
        net.enqueue_requests(np.array([0]), np.array([3]), 1, cycle=0)
        with pytest.raises(LivelockError) as exc:
            for cycle in range(1000):
                net.step(cycle)
                watchdog.after_step(cycle, net)
        assert exc.value.snapshot["in_flight"] == 1
        assert exc.value.cycle < 200  # fails fast, not at the budget's end

    def test_bless_routes_around_the_same_fault(self):
        topology = Mesh2D(4)
        fm = FaultModel.with_failed_links(topology, [(1, EAST)])
        net = BlessNetwork(topology, fault_model=fm)
        checker = InvariantChecker(net)
        net.enqueue_requests(np.array([0]), np.array([3]), 1, cycle=0)
        # Arrival slots of the dead 1<->2 link must stay empty forever.
        dead_slots = [1 * 4 + EAST, 2 * 4 + WEST]
        for cycle in range(300):
            ejected = net.step(cycle)
            checker.after_step(cycle, ejected)
            assert (net._ring_birth[:, dead_slots] == -1).all()
            if net.stats.ejected_flits == 1:
                break
        assert net.stats.ejected_flits == 1
        assert net.in_flight_flits() == 0


# ---------------------------------------------------------------------------
# Fault model
# ---------------------------------------------------------------------------
class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(link_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(transient_fault_rate=-0.1)

    def test_permanent_faults_are_symmetric(self):
        topology = Mesh2D(6)
        fm = FaultModel(topology, FaultConfig(link_fault_rate=0.15, seed=9))
        neighbor = topology.neighbor
        for node in range(topology.num_nodes):
            for port in range(4):
                if topology.link_exists[node, port]:
                    reverse = fm.link_up[
                        neighbor[node, port], topology.opposite[port]
                    ]
                    assert fm.link_up[node, port] == reverse

    def test_connectivity_resampling_rejects_impossible_sets(self):
        # Removing 2 of the 4 links of a 2x2 mesh always disconnects it.
        with pytest.raises(ValueError, match="connected fault set"):
            FaultModel(Mesh2D(2), FaultConfig(link_fault_rate=0.5, seed=0))

    def test_sampled_fault_set_is_connected(self):
        topology = Mesh2D(8)
        fm = FaultModel(
            topology, FaultConfig(link_fault_rate=0.1, router_fault_rate=0.05, seed=3)
        )
        assert fm.num_failed_routers == round(0.05 * 64)
        # Reachability from the first live router was checked at build
        # time; spot-check that every live node retains a healthy link.
        live = np.flatnonzero(fm.alive_routers)
        assert fm.link_up[live].any(axis=1).all()

    def test_remap_targets_nearest_live_node(self):
        topology = Mesh2D(2)
        fm = FaultModel(topology, FaultConfig(router_fault_rate=0.75, seed=1))
        live = np.flatnonzero(fm.alive_routers)
        assert live.size == 1
        np.testing.assert_array_equal(fm.remap, np.full(4, live[0]))

    def test_remap_is_identity_without_router_faults(self):
        topology = Mesh2D(4)
        fm = FaultModel(topology, FaultConfig(link_fault_rate=0.1, seed=2))
        np.testing.assert_array_equal(fm.remap, np.arange(16))

    def test_transient_mask_deterministic_and_symmetric(self):
        topology = Mesh2D(4)
        fm = FaultModel(topology, FaultConfig(transient_fault_rate=0.3, seed=4))
        down_a = fm.transient_down(17)
        down_b = fm.transient_down(17)
        np.testing.assert_array_equal(down_a, down_b)
        assert down_a.any()  # 30%/link: some link is down at this cycle
        neighbor = topology.neighbor
        for node, port in zip(*np.nonzero(down_a)):
            assert down_a[neighbor[node, port], topology.opposite[port]]

    def test_explicit_links_validated(self):
        topology = Mesh2D(4)
        with pytest.raises(ValueError, match="no link"):
            FaultModel.with_failed_links(topology, [(0, NORTH)])

    def test_bless_delivers_everything_under_permanent_faults(self):
        topology = Mesh2D(4)
        fm = FaultModel(topology, FaultConfig(link_fault_rate=0.1, seed=2))
        net = BlessNetwork(topology, fault_model=fm)
        checker = InvariantChecker(net)
        rng = np.random.default_rng(0)
        sent = _drive_random_traffic(net, rng, 150, checker, load=0.5)
        for cycle in range(150, 2500):
            checker.after_step(cycle, net.step(cycle))
            if net.stats.ejected_flits == sent:
                break
        assert net.stats.ejected_flits == sent
        assert net.in_flight_flits() == 0

    def test_bless_lossless_under_transient_faults(self):
        topology = Mesh2D(4)
        fm = FaultModel(topology, FaultConfig(transient_fault_rate=0.05, seed=6))
        net = BlessNetwork(topology, fault_model=fm)
        checker = InvariantChecker(net)
        rng = np.random.default_rng(1)
        sent = _drive_random_traffic(net, rng, 150, checker, load=0.6)
        for cycle in range(150, 3000):
            checker.after_step(cycle, net.step(cycle))
            if net.stats.ejected_flits == sent:
                break
        assert net.stats.ejected_flits == sent


# ---------------------------------------------------------------------------
# Simulator integration
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestSimulatorGuardrails:
    def _config(self, **kw):
        rng = np.random.default_rng(7)
        return SimulationConfig(
            make_category_workload("H", 16, rng), epoch=500, **kw
        )

    def test_checked_run_is_clean(self):
        for network in ("bless", "buffered"):
            config = self._config(
                network=network,
                check_invariants=True,
                watchdog_window=2000,
                max_flit_age=5000,
            )
            result = Simulator(config).run(2000)
            assert result.guardrails.invariant_checks == 2000
            assert result.flit_conservation_ok

    def test_faulted_run_degrades_gracefully(self):
        faults = FaultConfig(
            link_fault_rate=0.05, router_fault_rate=0.1, seed=11
        )
        for network in ("bless", "buffered"):
            config = self._config(
                network=network, check_invariants=True, faults=faults
            )
            result = Simulator(config).run(2000)
            assert result.flit_conservation_ok
            assert result.guardrails.failed_routers == 2
            assert result.guardrails.remapped_nodes == 2
            assert result.system_throughput > 0

    def test_run_validates_cycles(self):
        simulator = Simulator(self._config())
        with pytest.raises(ValueError, match="at least one cycle"):
            simulator.run(0)
        with pytest.raises(ValueError, match="cycles must be an integer"):
            simulator.run(1.5)
        with pytest.raises(ValueError, match="cycles must be an integer"):
            simulator.run(True)

    def test_run_validates_epoch(self):
        simulator = Simulator(self._config())
        simulator.config.epoch = 0  # mutated after construction
        with pytest.raises(ValueError, match="epoch must be"):
            simulator.run(100)

    def test_config_validates_guardrail_fields(self):
        with pytest.raises(ValueError, match="watchdog_window"):
            self._config(watchdog_window=-1)
        with pytest.raises(ValueError, match="FaultConfig"):
            self._config(faults=0.05)

    def test_deadline_timeout(self):
        simulator = Simulator(self._config())
        with pytest.raises(SimulationTimeout):
            simulator.run(1_000_000, deadline=0.0)


# ---------------------------------------------------------------------------
# Resilient experiment runner
# ---------------------------------------------------------------------------
class TestRunnerResilience:
    def setup_method(self):
        self.workload = make_homogeneous_workload("mcf", 16)

    def test_retry_recovers_with_fresh_seed(self):
        calls = []

        def flaky(workload, cycles, controller=None, **kw):
            calls.append(kw["seed"])
            if len(calls) == 1:
                raise LivelockError(42, "stuck")
            return "recovered"

        result = run_workload_safe(
            self.workload, 100, retries=2, backoff=0.0, seed=7, _runner=flaky
        )
        assert result == "recovered"
        assert calls == [7, 8]  # second attempt reseeded

    def test_exhausted_retries_warn_and_return_none(self):
        def always_failing(workload, cycles, controller=None, **kw):
            raise LivelockError(1, "hopeless")

        with pytest.warns(RuntimeWarning, match="abandoned after 2 attempt"):
            result = run_workload_safe(
                self.workload, 100, retries=1, backoff=0.0,
                _runner=always_failing,
            )
        assert result is None

    def test_non_guardrail_errors_propagate(self):
        def broken(workload, cycles, controller=None, **kw):
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            run_workload_safe(self.workload, 100, _runner=broken)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            run_workload_safe(self.workload, 100, retries=-1)

    def test_real_timeout_degrades_to_partial_result(self):
        with pytest.warns(RuntimeWarning, match="wall-clock budget"):
            result = run_workload_safe(
                self.workload, 500_000, retries=0, timeout_s=0.0
            )
        assert result is None
