"""Unit tests for the power model (Fig 16, §2.2)."""

import pytest

from repro.network.base import NetworkStats
from repro.power import PowerCoefficients, PowerModel, PowerReport


def stats(cycles=1000, hops=0, injected=0, bw=0, br=0):
    s = NetworkStats()
    s.init_arrays(4)
    s.cycles = cycles
    s.flit_hops = hops
    s.injected_flits = injected
    s.buffer_writes = bw
    s.buffer_reads = br
    return s


class TestAccounting:
    def test_idle_network_pays_only_static(self):
        model = PowerModel()
        rep = model.report(stats(), num_nodes=16, buffered=False)
        assert rep.dynamic_energy == 0.0
        assert rep.static_energy == pytest.approx(
            PowerCoefficients().static_bless * 16 * 1000
        )

    def test_dynamic_scales_with_hops(self):
        model = PowerModel()
        one = model.report(stats(hops=100), 16, buffered=False)
        two = model.report(stats(hops=200), 16, buffered=False)
        assert two.dynamic_energy == pytest.approx(2 * one.dynamic_energy)

    def test_buffer_ops_charged_only_when_present(self):
        model = PowerModel()
        rep = model.report(stats(hops=100, bw=100, br=100), 16, buffered=True)
        base = model.report(stats(hops=100), 16, buffered=True)
        assert rep.dynamic_energy > base.dynamic_energy

    def test_average_power_is_energy_per_cycle(self):
        rep = PowerReport(dynamic_energy=500.0, static_energy=500.0, cycles=100)
        assert rep.average_power == 10.0

    def test_zero_cycle_report(self):
        rep = PowerReport(0.0, 0.0, 0)
        assert rep.average_power == 0.0

    def test_reduction_vs(self):
        a = PowerReport(80.0, 0.0, 10)
        b = PowerReport(100.0, 0.0, 10)
        assert a.reduction_vs(b) == pytest.approx(0.2)
        assert b.reduction_vs(a) == pytest.approx(-0.25)


class TestPaperClaims:
    def test_bufferless_saves_20_to_40_percent_at_moderate_load(self):
        """§2.2: removing buffers cuts network power by 20-40%."""
        model = PowerModel()
        cycles, nodes = 10_000, 64
        hops = int(0.5 * nodes * cycles)  # moderate per-node activity
        injected = hops // 3
        bless = model.report(
            stats(cycles, hops, injected), nodes, buffered=False
        )
        buffered = model.report(
            stats(cycles, hops, injected, bw=hops + injected, br=hops + injected),
            nodes,
            buffered=True,
        )
        saving = bless.reduction_vs(buffered)
        assert 0.20 < saving < 0.45

    def test_deflections_cost_energy_through_extra_hops(self):
        """A deflected flit pays for its detour: power grows with hops
        even at equal delivered traffic."""
        model = PowerModel()
        efficient = model.report(stats(hops=10_000, injected=3000), 16, False)
        deflected = model.report(stats(hops=16_000, injected=3000), 16, False)
        assert deflected.average_power > efficient.average_power * 1.3
