"""Unit tests for the packed flit representation."""

import numpy as np

from repro.network.flit import (
    CBIT_MASK,
    FLIT_CONTROL,
    FLIT_REPLY,
    FLIT_REQUEST,
    HOP_ONE,
    MAX_NODES,
    SEQ_RING,
    meta_cbit,
    meta_dest,
    meta_hops,
    meta_kind,
    meta_seq,
    meta_src,
    pack_meta,
    priority_key,
)


class TestPackUnpack:
    def test_roundtrip_scalar_fields(self):
        meta = pack_meta(5, 9, FLIT_REPLY, 17)
        assert meta_dest(meta) == 5
        assert meta_src(meta) == 9
        assert meta_kind(meta) == FLIT_REPLY
        assert meta_seq(meta) == 17
        assert meta_hops(meta) == 0
        assert meta_cbit(meta) == 0

    def test_roundtrip_extreme_values(self):
        meta = pack_meta(MAX_NODES - 1, MAX_NODES - 1, FLIT_CONTROL, SEQ_RING - 1)
        assert meta_dest(meta) == MAX_NODES - 1
        assert meta_src(meta) == MAX_NODES - 1
        assert meta_kind(meta) == FLIT_CONTROL
        assert meta_seq(meta) == SEQ_RING - 1

    def test_roundtrip_vectorized(self):
        rng = np.random.default_rng(0)
        dest = rng.integers(0, MAX_NODES, 1000)
        src = rng.integers(0, MAX_NODES, 1000)
        kind = rng.integers(0, 3, 1000)
        seq = rng.integers(0, SEQ_RING, 1000)
        meta = pack_meta(dest, src, kind, seq)
        np.testing.assert_array_equal(meta_dest(meta), dest)
        np.testing.assert_array_equal(meta_src(meta), src)
        np.testing.assert_array_equal(meta_kind(meta), kind)
        np.testing.assert_array_equal(meta_seq(meta), seq)

    def test_hop_increment_preserves_identity(self):
        meta = pack_meta(3, 7, FLIT_REQUEST, 2)
        for hops in range(1, 200):
            meta = meta + HOP_ONE
            assert meta_hops(meta) == hops
        assert meta_dest(meta) == 3
        assert meta_src(meta) == 7
        assert meta_seq(meta) == 2

    def test_cbit_set_preserves_identity(self):
        meta = pack_meta(3, 7, FLIT_REPLY, 200) + 5 * HOP_ONE
        marked = meta | CBIT_MASK
        assert meta_cbit(marked) == 1
        assert meta_dest(marked) == 3
        assert meta_src(marked) == 7
        assert meta_seq(marked) == 200
        assert meta_hops(marked) == 5

    def test_kinds_are_distinct(self):
        assert len({FLIT_REQUEST, FLIT_REPLY, FLIT_CONTROL}) == 3


class TestPriorityKey:
    def test_older_flit_wins(self):
        assert priority_key(5, 100) < priority_key(6, 0)

    def test_src_breaks_ties(self):
        a = priority_key(5, 1)
        b = priority_key(5, 2)
        assert a < b

    def test_keys_are_total_order_over_unique_pairs(self):
        rng = np.random.default_rng(1)
        birth = rng.integers(0, 10_000_000, 5000)
        src = rng.integers(0, MAX_NODES, 5000)
        keys = priority_key(birth, src)
        pairs = set(zip(birth.tolist(), src.tolist()))
        assert len(np.unique(keys)) == len(pairs)
