"""Additional cross-module integration coverage."""

import pytest

from repro import (
    DistributedController,
    HotspotLocality,
    Mesh2D,
    SimulationConfig,
    Simulator,
    Workload,
    make_homogeneous_workload,
)

# Full-simulation module: runs real multi-epoch simulations end to end.
# Deselect with -m 'not slow' for a fast inner loop; CI runs everything.
pytestmark = pytest.mark.slow


class TestIdleNodes:
    def test_partially_idle_workload(self):
        """Half the chip idle: only active nodes retire and inject."""
        apps = tuple("mcf" if i % 2 == 0 else None for i in range(16))
        wl = Workload(apps)
        cfg = SimulationConfig(wl, seed=1, epoch=500)
        sim = Simulator(cfg)
        res = sim.run(2000)
        idle = ~res.active
        assert (res.ipc[idle] == 0).all()
        # idle nodes issue no requests, but they still serve their shared
        # L2 slice, so they DO inject reply packets
        assert (sim.cores.misses_issued[idle] == 0).all()
        assert (sim.network.stats.injected_per_node[idle] > 0).any()
        assert res.ipc[res.active].min() > 0

    def test_single_active_node_is_uncontended(self):
        apps = ("mcf",) + (None,) * 15
        wl = Workload(apps)
        res = Simulator(SimulationConfig(wl, seed=1, epoch=500)).run(3000)
        assert res.mean_starvation < 0.01
        # the only deflections left are the requester's own two-flit
        # reply packets contending for its single ejection port
        assert res.deflection_rate < 0.25


class TestDistributedOnBuffered:
    def test_distributed_controller_works_on_buffered(self, rng):
        """The congestion bit propagates through the buffered router too."""
        wl = make_homogeneous_workload("mcf", 16)
        cfg = SimulationConfig(wl, seed=2, epoch=400, network="buffered")
        sim = Simulator(cfg)
        sim.controller = DistributedController(
            sim.network, starvation_threshold=0.05
        )
        res = sim.run(2500)
        assert res.system_throughput > 0


class TestHubPlacement:
    def test_hub_is_central(self):
        wl = make_homogeneous_workload("mcf", 16)
        sim = Simulator(SimulationConfig(wl, seed=1))
        assert sim.hub == sim.topology.node_at(2, 2)


class TestHotspotInConfig:
    def test_locality_object_passes_through(self):
        wl = make_homogeneous_workload("mcf", 16)
        loc = HotspotLocality(Mesh2D(4), hot_nodes=[5], hot_fraction=0.5)
        cfg = SimulationConfig(wl, seed=1, epoch=500, locality=loc)
        sim = Simulator(cfg)
        assert sim.locality is loc
        res = sim.run(1500)
        assert res.ejected_flits > 0


class TestLongRunStability:
    def test_seq_ring_wraparound_is_safe(self):
        """Runs long enough for per-node miss counts to exceed the
        256-entry sequence ring several times."""
        wl = make_homogeneous_workload("mcf", 16)
        cfg = SimulationConfig(wl, seed=3, epoch=1000, phase_sigma=0.0)
        sim = Simulator(cfg)
        res = sim.run(12_000)
        assert int(sim.cores.misses_issued.min()) > 256
        assert (sim.cores.outstanding >= 0).all()
        assert (sim.cores.outstanding <= sim.cores.mshr_limit).all()
