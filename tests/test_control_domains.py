"""Tests for the hierarchical control plane: domain partitions, shard
controllers, coordinator semantics, and the control-traffic accounting.

The fast classes exercise the partition math and the controller's
decision rule on synthetic ``EpochView``s; the ``slow``-marked classes
run full simulations (central-vs-hierarchical bit-identity, coordinator
fail-stop under chaos, hub-queue drop accounting).
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.control.base import EpochView
from repro.control.central import CentralController, ControlParams
from repro.control.domains import (
    DomainMap,
    graph_domain_hubs,
    grid2d_domains,
    grid3d_domains,
    grid_cluster_shape,
)
from repro.control.hierarchical import HierarchicalController, ShardController
from repro.control.registry import CONTROLLER_NAMES, CONTROLLERS
from repro.topology.registry import (
    TOPOLOGY_NAMES,
    build_topology,
    domain_map,
    prepare_config,
)
from repro.traffic.workloads import make_homogeneous_workload


def make_topology(name: str, nodes: int, **kw):
    config = SimulationConfig(
        make_homogeneous_workload("mcf", nodes), topology=name, **kw
    )
    prepare_config(config)
    return config, build_topology(config)


class TestDomainMap:
    def test_valid_map(self):
        dm = DomainMap([0, 0, 1, 1], [0, 2], coordinator=1)
        assert dm.num_nodes == 4
        assert dm.num_domains == 2
        np.testing.assert_array_equal(dm.members(1), [2, 3])
        assert "2 domains over 4 nodes" in dm.describe()

    def test_rejects_gapped_ids(self):
        with pytest.raises(ValueError, match="cover"):
            DomainMap([0, 0, 2, 2], [0, 2], coordinator=0)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError, match="empty"):
            DomainMap([0, 0, 2, 2], [0, 0, 2], coordinator=0)

    def test_rejects_foreign_hub(self):
        with pytest.raises(ValueError, match="lies in domain"):
            DomainMap([0, 0, 1, 1], [0, 1], coordinator=0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DomainMap([0, 0, 1, 1], [0, 9], coordinator=0)
        with pytest.raises(ValueError, match="coordinator"):
            DomainMap([0, 0, 1, 1], [0, 2], coordinator=4)

    def test_arrays_are_immutable(self):
        dm = DomainMap([0, 0, 1, 1], [0, 2], coordinator=1)
        with pytest.raises(ValueError):
            dm.domain_of[0] = 1
        with pytest.raises(ValueError):
            dm.hubs[0] = 1


class TestGridPartition:
    def test_auto_shape_is_sqrt_clusters(self):
        # 32x32: divisors of 32 nearest sqrt(32)~6 are 4 and 8; ties
        # break low, so 4x4 domains of 8x8 nodes.
        assert grid_cluster_shape(32, 32, 0) == (4, 4)
        assert grid_cluster_shape(4, 4, 0) == (2, 2)

    def test_explicit_count_prefers_square_clusters(self):
        assert grid_cluster_shape(8, 8, 4) == (2, 2)
        assert grid_cluster_shape(8, 4, 8) == (4, 2)

    def test_impossible_count_raises(self):
        with pytest.raises(ValueError, match="rectangular domains"):
            grid_cluster_shape(8, 8, 3)

    def test_tile_multiple_constrains_edges(self):
        # 8x8 with 4-wide tiles: 16 domains would need 2x2 clusters,
        # which split tiles.
        assert grid_cluster_shape(8, 8, 4, multiple=4) == (2, 2)
        with pytest.raises(ValueError, match="tile-multiple"):
            grid_cluster_shape(8, 8, 16, multiple=4)

    def test_whole_grid_hub_matches_central_node(self):
        _, topo = make_topology("mesh", 64)
        _, hubs = grid2d_domains(8, 8, 1)
        assert hubs[0] == topo.central_node()

    def test_cluster_hubs_use_center_rule(self):
        domain_of, hubs = grid2d_domains(4, 4, 4)
        # 2x2 clusters of 2x2 nodes: hub = (ty*2+1)*4 + tx*2+1.
        np.testing.assert_array_equal(hubs, [5, 7, 13, 15])
        assert domain_of[hubs].tolist() == [0, 1, 2, 3]

    def test_grid3d_layer_bands(self):
        domain_of = grid3d_domains(4, 4, 4, 0)
        assert domain_of.tolist() == sum(([z] * 16 for z in range(4)), [])
        with pytest.raises(ValueError, match="divide"):
            grid3d_domains(4, 4, 4, 3)

    def test_graph_hubs_whole_graph_matches_central_node(self):
        _, topo = make_topology("express", 64)
        hubs = graph_domain_hubs(topo, np.zeros(64, dtype=np.int64))
        assert hubs[0] == topo.central_node()


class TestRegistryPartition:
    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_single_domain_hub_is_central_node(self, name):
        config, topo = make_topology(name, 64)
        dm = domain_map(config, topo, 1)
        assert dm.num_domains == 1
        assert int(dm.hubs[0]) == topo.central_node()
        assert dm.coordinator == topo.central_node()

    def test_chiplet_default_is_one_domain_per_tile(self):
        config, topo = make_topology("chiplet", 64, chiplet_tile=4)
        dm = domain_map(config, topo)
        assert dm.num_domains == 4
        # Tile-aligned: every domain is one 4x4 chiplet.
        for d in range(4):
            members = dm.members(d)
            x, y = members % 8, members // 8
            assert x.max() - x.min() == 3 and y.max() - y.min() == 3

    def test_mesh3d_default_is_one_domain_per_layer(self):
        config, topo = make_topology("mesh3d", 64, depth=4)
        dm = domain_map(config, topo)
        assert dm.num_domains == 4
        np.testing.assert_array_equal(dm.domain_of, np.arange(64) // 16)

    def test_hubs_always_member_of_own_domain(self):
        for name in TOPOLOGY_NAMES:
            config, topo = make_topology(name, 64)
            dm = domain_map(config, topo, 4)
            for d, hub in enumerate(dm.hubs):
                assert dm.domain_of[hub] == d


def synthetic_view(ipf, sigma, active=None):
    ipf = np.asarray(ipf, dtype=float)
    if active is None:
        active = np.ones(ipf.size, dtype=bool)
    return EpochView(
        cycle=1000,
        ipf=ipf,
        starvation_rate=np.asarray(sigma, dtype=float),
        active=np.asarray(active, dtype=bool),
        utilization=0.5,
    )


class TestHierarchicalController:
    PARAMS = ControlParams(epoch=500)

    def bound(self, domain_of, hubs, coordinator=0, **kw):
        ctl = HierarchicalController(self.PARAMS, **kw)
        ctl.bind(DomainMap(domain_of, hubs, coordinator))
        return ctl

    def test_registry_lists_hierarchical(self):
        assert "hierarchical" in CONTROLLER_NAMES
        assert "shards" in CONTROLLERS["hierarchical"].description

    def test_rejects_bad_mode_and_counts(self):
        with pytest.raises(ValueError, match="mode"):
            HierarchicalController(self.PARAMS, mode="anarchic")
        with pytest.raises(ValueError, match="num_domains"):
            HierarchicalController(self.PARAMS, num_domains=-1)

    def test_unbound_epoch_raises(self):
        ctl = HierarchicalController(self.PARAMS)
        with pytest.raises(RuntimeError, match="bind"):
            ctl.on_epoch(synthetic_view([1.0], [0.0]))

    def test_bind_checks_requested_count(self):
        ctl = HierarchicalController(self.PARAMS, num_domains=3)
        with pytest.raises(ValueError, match="configured for 3"):
            ctl.bind(DomainMap([0, 0, 1, 1], [0, 2], coordinator=0))

    def test_view_size_mismatch_raises(self):
        ctl = self.bound([0, 0, 1, 1], [0, 2])
        with pytest.raises(ValueError, match="covers"):
            ctl.on_epoch(synthetic_view([1.0] * 6, [0.0] * 6))

    def test_single_domain_matches_central_controller(self):
        """One whole-fabric domain reproduces Algorithm 1 bit-for-bit."""
        rng = np.random.default_rng(5)
        for _ in range(10):
            ipf = rng.uniform(0.05, 20.0, size=16)
            sigma = rng.uniform(0.0, 1.0, size=16)
            active = rng.uniform(size=16) < 0.8
            if not active.any():
                continue
            central = CentralController(self.PARAMS)
            hier = self.bound(np.zeros(16, dtype=int), [0])
            a = central.on_epoch(synthetic_view(ipf, sigma, active))
            b = hier.on_epoch(synthetic_view(ipf, sigma, active))
            np.testing.assert_array_equal(a, b)
            assert central.last_congested == hier.last_congested
            np.testing.assert_array_equal(
                central.last_throttled, hier.last_throttled
            )

    def test_global_mode_throttles_against_global_mean(self):
        # Domain 0 congested with low IPF; domain 1 calm with high IPF.
        # Global criterion: both low-IPF nodes sit below the global
        # mean, so domain 0's nodes throttle even though domain 1 is
        # where the mean comes from.
        ctl = self.bound([0, 0, 1, 1], [0, 2], mode="global")
        rates = ctl.on_epoch(
            synthetic_view([0.1, 0.2, 10.0, 12.0], [0.9, 0.0, 0.0, 0.0])
        )
        assert ctl.last_congested
        assert (rates[:2] > 0).all() and (rates[2:] == 0).all()

    def test_local_mode_confines_congestion_to_the_domain(self):
        # Same measurements, local criterion: only domain 0 throttles,
        # and only its below-local-mean node.
        ctl = self.bound([0, 0, 1, 1], [0, 2], mode="local")
        rates = ctl.on_epoch(
            synthetic_view([0.1, 0.2, 10.0, 12.0], [0.9, 0.0, 0.0, 0.0])
        )
        assert rates[0] > 0 and (rates[1:] == 0).all()

    def test_calm_network_installs_no_throttle(self):
        ctl = self.bound([0, 0, 1, 1], [0, 2])
        rates = ctl.on_epoch(
            synthetic_view([1.0, 1.0, 1.0, 1.0], [0.0] * 4)
        )
        assert not ctl.last_congested
        assert (rates == 0).all()

    def test_coordinator_failure_degrades_to_local(self):
        view = synthetic_view([0.1, 0.2, 10.0, 12.0], [0.9, 0.0, 0.0, 0.0])
        ctl = self.bound([0, 0, 1, 1], [0, 2], mode="global")
        assert not ctl.down
        ctl.fail()
        assert ctl.down and ctl.failovers == 1
        ctl.fail()  # idempotent
        assert ctl.failovers == 1
        degraded = ctl.on_epoch(view)
        assert ctl.downtime_epochs == 1
        # While down, global mode behaves exactly like local mode.
        local = self.bound([0, 0, 1, 1], [0, 2], mode="local")
        np.testing.assert_array_equal(degraded, local.on_epoch(view))
        ctl.restore()
        restored = ctl.on_epoch(view)
        fresh = self.bound([0, 0, 1, 1], [0, 2], mode="global")
        np.testing.assert_array_equal(restored, fresh.on_epoch(view))

    def test_shard_summary_carries_mean_ingredients(self):
        shard = ShardController(self.PARAMS, domain=0)
        s = shard.summarize(synthetic_view([0.5, 1.5], [0.9, 0.0]))
        assert s.congested
        assert s.ipf_sum == pytest.approx(2.0)
        assert s.active_nodes == 2
        idle = shard.summarize(
            synthetic_view([1.0], [0.9], active=[False])
        )
        assert idle == (False, 0.0, 0) or (
            not idle.congested and idle.active_nodes == 0
        )

    def test_describe_names_layout(self):
        ctl = HierarchicalController(self.PARAMS, num_domains=4, mode="local")
        assert "4 domains" in ctl.describe()
        assert "local" in ctl.describe()


# ----------------------------------------------------------------------
# Full-simulation classes below: deselect with -m 'not slow'.
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSimulationEquivalence:
    """Acceptance pin: hierarchical with one whole-mesh domain is
    bit-identical to the central controller, control traffic and all."""

    def run_one(self, controller, topology="mesh", nodes=16, **kw):
        from repro.experiments.runner import run_workload

        return run_workload(
            make_homogeneous_workload("mcf", nodes),
            3000,
            controller=controller,
            epoch=500,
            seed=7,
            topology=topology,
            model_control_traffic=True,
            **kw,
        )

    def test_single_domain_bit_identical_on_mesh(self):
        central = self.run_one(CentralController(ControlParams(epoch=500)))
        hier = self.run_one(
            HierarchicalController(ControlParams(epoch=500), num_domains=1)
        )
        assert central.to_dict() == hier.to_dict()

    def test_single_domain_bit_identical_on_chiplet(self):
        central = self.run_one(
            CentralController(ControlParams(epoch=500)),
            topology="chiplet", nodes=64,
        )
        hier = self.run_one(
            HierarchicalController(ControlParams(epoch=500), num_domains=1),
            topology="chiplet", nodes=64,
        )
        assert central.to_dict() == hier.to_dict()

    def test_multi_domain_run_reports_domain_counters(self):
        from repro.experiments.runner import run_workload

        res = run_workload(
            make_homogeneous_workload("mcf", 64),
            3000,
            controller=HierarchicalController(
                ControlParams(epoch=500), num_domains=4
            ),
            epoch=500,
            seed=7,
            model_control_traffic=True,
            profile=True,
        )
        assert res.perf is not None
        assert res.perf.control_domains == 4
        assert res.perf.control_epochs > 0
        assert len(res.perf.per_domain_control_flits) == 4
        assert all(x > 0 for x in res.perf.per_domain_control_flits)
        assert sum(res.perf.per_domain_control_flits) <= \
            res.perf.control_flits_sent


@pytest.mark.slow
class TestCoordinatorChaos:
    def run_chaos(self, mode="global"):
        from repro.chaos.schedule import ChaosConfig, ChaosEvent
        from repro.experiments.runner import run_workload

        chaos = ChaosConfig(events=(
            ChaosEvent(1000, "controller_down"),
            ChaosEvent(2500, "controller_up"),
        ))
        controller = HierarchicalController(
            ControlParams(epoch=400), num_domains=4, mode=mode
        )
        result = run_workload(
            make_homogeneous_workload("mcf", 64),
            4000,
            controller=controller,
            epoch=400,
            seed=3,
            chaos=chaos,
            model_control_traffic=True,
            check_invariants=True,
        )
        return controller, result

    def test_coordinator_failstop_degrades_and_recovers(self):
        controller, result = self.run_chaos()
        assert controller.failovers == 1
        assert controller.downtime_epochs > 0
        assert not controller.down  # restored before the end
        # Shards never stop: every domain ran every epoch.
        assert (controller.domain_epochs == controller.epochs_run).all()
        assert result.chaos is not None
        applied = [e for e in result.chaos.events if e.applied_cycle >= 0]
        assert len(applied) == 2

    def test_intra_domain_traffic_survives_coordinator_loss(self):
        from repro.chaos.schedule import ChaosConfig, ChaosEvent
        from repro.traffic.workloads import make_homogeneous_workload as mk
        from repro.sim.simulator import Simulator

        # Coordinator down for the whole run: domain hubs keep
        # collecting (2n intra-domain flits/epoch) while the global
        # exchange is suspended.
        chaos = ChaosConfig(events=(ChaosEvent(0, "controller_down"),))
        config = SimulationConfig(
            mk("mcf", 64), seed=3, epoch=400, chaos=chaos,
            model_control_traffic=True,
        )
        sim = Simulator(config)
        sim.controller = HierarchicalController(
            ControlParams(epoch=400), num_domains=4
        )
        sim.run(4000)
        assert sim.controller.downtime_epochs == sim.controller.epochs_run > 0
        stats = sim.network.stats
        assert stats.control_flits_sent > 0
        assert (sim.domain_control_flits > 0).all() if isinstance(
            sim.domain_control_flits, np.ndarray
        ) else all(x > 0 for x in sim.domain_control_flits)


@pytest.mark.slow
class TestControlDropAccounting:
    """Satellite: hub-queue overflow is a counted drop, and the
    conservation invariant (attempted == sent + dropped) holds under
    the per-cycle checker."""

    def run_one(self, controller, nodes=64, **kw):
        from repro.experiments.runner import run_workload

        return run_workload(
            make_homogeneous_workload("mcf", nodes),
            3000,
            controller=controller,
            epoch=300,
            seed=5,
            model_control_traffic=True,
            check_invariants=True,
            profile=True,
            **kw,
        )

    def test_central_hub_overflow_is_counted(self):
        # 63 reports per epoch into a 4-deep hub queue must drop.
        res = self.run_one(
            CentralController(ControlParams(epoch=300)), queue_capacity=4
        )
        assert res.perf.control_flits_dropped > 0
        assert res.perf.control_domains == 0

    def test_domains_shed_the_hot_spot(self):
        central = self.run_one(
            CentralController(ControlParams(epoch=300)), queue_capacity=4
        )
        hier = self.run_one(
            HierarchicalController(ControlParams(epoch=300), num_domains=16),
            queue_capacity=4,
        )
        assert hier.perf.control_flits_dropped < \
            central.perf.control_flits_dropped

    def test_no_overflow_means_no_drops(self):
        # A hub queue deep enough for the whole 63-report burst never
        # overflows, so the drop counter stays at exactly zero.
        res = self.run_one(
            CentralController(ControlParams(epoch=300)), queue_capacity=128
        )
        assert res.perf.control_flits_dropped == 0
        assert res.perf.control_flits_sent > 0
