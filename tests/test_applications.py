"""Unit tests for the Table-1 application models."""

import numpy as np
import pytest

from repro.traffic.applications import (
    APPLICATION_CATALOG,
    ApplicationBehaviorArray,
    intensity_class,
)


class TestCatalog:
    def test_has_all_table1_rows(self):
        assert len(APPLICATION_CATALOG) == 34

    def test_known_values(self):
        assert APPLICATION_CATALOG["mcf"].mean_ipf == 1.0
        assert APPLICATION_CATALOG["gromacs"].mean_ipf == 19.4
        assert APPLICATION_CATALOG["povray"].mean_ipf == 20708.5
        assert APPLICATION_CATALOG["povray"].ipf_variance == 1501.8

    def test_intensity_thresholds(self):
        """§6.1: H < 2 IPF, M = 2-100 IPF, L > 100 IPF."""
        assert intensity_class(1.9) == "H"
        assert intensity_class(2.0) == "M"
        assert intensity_class(100.0) == "M"
        assert intensity_class(100.1) == "L"

    def test_paper_examples_classified(self):
        assert APPLICATION_CATALOG["mcf"].intensity == "H"
        assert APPLICATION_CATALOG["gromacs"].intensity == "M"
        assert APPLICATION_CATALOG["povray"].intensity == "L"

    def test_every_class_populated(self):
        classes = {spec.intensity for spec in APPLICATION_CATALOG.values()}
        assert classes == {"H", "M", "L"}


class TestBehaviorArray:
    def test_active_mask(self):
        specs = [APPLICATION_CATALOG["mcf"], None, APPLICATION_CATALOG["povray"]]
        behavior = ApplicationBehaviorArray(specs)
        np.testing.assert_array_equal(behavior.active, [True, False, True])

    def test_mean_gap_matches_ipf(self):
        behavior = ApplicationBehaviorArray(
            [APPLICATION_CATALOG["mcf"]], flits_per_miss=3
        )
        assert behavior.mean_gap_insns()[0] == pytest.approx(3.0)

    def test_gap_samples_match_table1_moments(self):
        """Without phases, per-miss IPF is lognormal(mean, var) from Table 1."""
        rng = np.random.default_rng(0)
        for name in ("mcf", "gromacs", "bzip2"):
            spec = APPLICATION_CATALOG[name]
            behavior = ApplicationBehaviorArray(
                [spec], flits_per_miss=3, phase_sigma=0.0
            )
            nodes = np.zeros(60_000, dtype=np.int64)
            ipf = behavior.sample_gap(nodes, rng) / 3.0
            assert ipf.mean() == pytest.approx(spec.mean_ipf, rel=0.1)
            assert ipf.var() == pytest.approx(spec.ipf_variance, rel=0.35)

    def test_gap_floor_is_one_instruction(self):
        behavior = ApplicationBehaviorArray(
            [APPLICATION_CATALOG["matlab"]], flits_per_miss=1, phase_sigma=0.0
        )
        gaps = behavior.sample_gap(np.zeros(10_000, dtype=np.int64),
                                   np.random.default_rng(1))
        assert gaps.min() >= 1.0

    def test_initial_gaps_are_desynchronized(self):
        behavior = ApplicationBehaviorArray(
            [APPLICATION_CATALOG["gromacs"]] * 64, phase_sigma=0.0
        )
        rng = np.random.default_rng(2)
        gaps = behavior.sample_gap(np.arange(64), rng, initial=True)
        assert np.unique(np.round(gaps, 6)).size > 32

    def test_phases_preserve_mean_but_add_burstiness(self):
        spec = APPLICATION_CATALOG["mcf"]
        rng = np.random.default_rng(3)
        behavior = ApplicationBehaviorArray(
            [spec] * 8, flits_per_miss=3, phase_sigma=0.8, phase_length=50,
            seed_rng=np.random.default_rng(9),
        )
        samples = []
        for c in range(20_000):
            behavior.tick(rng)
            if c % 10 == 0:
                samples.append(behavior.sample_gap(np.arange(8), rng) / 3.0)
        ipf = np.concatenate(samples)
        base = ApplicationBehaviorArray([spec], flits_per_miss=3, phase_sigma=0.0)
        base_ipf = base.sample_gap(np.zeros(20_000, dtype=np.int64),
                                   np.random.default_rng(4)) / 3.0
        assert ipf.mean() == pytest.approx(spec.mean_ipf, rel=0.25)
        assert ipf.var() > base_ipf.var()

    def test_phase_multipliers_change_over_time(self):
        behavior = ApplicationBehaviorArray(
            [APPLICATION_CATALOG["mcf"]] * 4, phase_sigma=0.5, phase_length=20,
            seed_rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(5)
        seen = set()
        for _ in range(500):
            behavior.tick(rng)
            seen.add(tuple(np.round(behavior._phase_mult, 6)))
        assert len(seen) > 5

    def test_zero_phase_sigma_disables_phases(self):
        behavior = ApplicationBehaviorArray(
            [APPLICATION_CATALOG["mcf"]], phase_sigma=0.0
        )
        rng = np.random.default_rng(6)
        for _ in range(200):
            behavior.tick(rng)
        assert behavior._phase_mult[0] == 1.0

    def test_current_intensity_orders_by_network_demand(self):
        behavior = ApplicationBehaviorArray(
            [APPLICATION_CATALOG["mcf"], APPLICATION_CATALOG["povray"]],
            phase_sigma=0.0,
        )
        demand = behavior.current_intensity()
        assert demand[0] > demand[1] * 100
