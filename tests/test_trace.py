"""Unit tests for trace record/replay."""

import numpy as np
import pytest

from repro.traffic.applications import APPLICATION_CATALOG, ApplicationBehaviorArray
from repro.traffic.trace import GapTrace, TracedBehaviorArray


class TestGapTrace:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            GapTrace([])

    def test_rejects_sub_instruction_gaps(self):
        with pytest.raises(ValueError):
            GapTrace([np.array([0.5, 2.0])])

    def test_save_load_roundtrip(self, tmp_path):
        trace = GapTrace([np.array([3.0, 4.0]), np.zeros(0), np.array([7.0])])
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = GapTrace.load(path)
        assert loaded.num_nodes == 3
        np.testing.assert_array_equal(loaded.gaps[0], [3.0, 4.0])
        assert loaded.gaps[1].size == 0

    def test_record_from_behavior(self, rng):
        specs = [APPLICATION_CATALOG["mcf"], None]
        behavior = ApplicationBehaviorArray(specs, phase_sigma=0.0)
        trace = GapTrace.record(behavior, 100, rng)
        assert trace.gaps[0].size == 100
        assert trace.gaps[1].size == 0


@pytest.mark.slow
class TestTracedBehavior:
    def test_replays_in_order_and_loops(self):
        trace = GapTrace([np.array([3.0, 5.0, 7.0])])
        behavior = TracedBehaviorArray(trace)
        rng = np.random.default_rng(0)
        node = np.array([0])
        seen = [behavior.sample_gap(node, rng)[0] for _ in range(5)]
        assert seen == [3.0, 5.0, 7.0, 3.0, 5.0]

    def test_active_mask_from_trace(self):
        trace = GapTrace([np.array([3.0]), np.zeros(0)])
        behavior = TracedBehaviorArray(trace)
        np.testing.assert_array_equal(behavior.active, [True, False])

    def test_mean_ipf_derived_from_gaps(self):
        trace = GapTrace([np.array([6.0, 6.0])])
        behavior = TracedBehaviorArray(trace, flits_per_miss=3)
        assert behavior.mean_ipf[0] == pytest.approx(2.0)

    def test_recorded_trace_reproduces_statistics(self, rng):
        spec = APPLICATION_CATALOG["gromacs"]
        behavior = ApplicationBehaviorArray([spec], phase_sigma=0.0)
        trace = GapTrace.record(behavior, 20_000, rng)
        replay = TracedBehaviorArray(trace)
        assert replay.mean_ipf[0] == pytest.approx(spec.mean_ipf, rel=0.1)

    def test_usable_in_simulator(self, rng):
        """A traced behavior drives the full simulator end to end."""
        from repro import SimulationConfig, Simulator, make_homogeneous_workload

        wl = make_homogeneous_workload("mcf", 16)
        cfg = SimulationConfig(wl, seed=0, epoch=500)
        sim = Simulator(cfg)
        trace = GapTrace.record(sim.behavior, 500, rng)
        sim.behavior = TracedBehaviorArray(trace)
        sim.cores.behavior = sim.behavior
        res = sim.run(1500)
        assert res.system_throughput > 0
