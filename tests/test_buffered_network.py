"""Unit and invariant tests for the buffered baseline network."""

import numpy as np
import pytest

from repro.network import BufferedNetwork
from repro.network.flit import FLIT_REPLY


class TestSinglePacket:
    def test_corner_to_corner_latency(self, mesh4):
        """6 hops plus one NI-buffer cycle on an empty network."""
        net = BufferedNetwork(mesh4)
        net.enqueue_requests(np.array([0]), np.array([15]), 1, cycle=0)
        for c in range(40):
            ej = net.step(c)
            if ej.node.size:
                assert ej.node[0] == 15
                assert c == 19
                return
        pytest.fail("flit never delivered")

    def test_no_deflection_counter(self, mesh4):
        net = BufferedNetwork(mesh4)
        rng = np.random.default_rng(0)
        for c in range(200):
            srcs = np.flatnonzero(rng.random(16) < 0.4)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                net.enqueue_requests(srcs, dests, 1, cycle=c)
            net.step(c)
        assert net.stats.deflections == 0

    def test_seq_preserved(self, mesh4):
        net = BufferedNetwork(mesh4)
        net.enqueue_replies(np.array([3]), np.array([12]), 1, cycle=0, seq=42)
        for c in range(40):
            ej = net.step(c)
            if ej.node.size:
                assert ej.seq[0] == 42
                assert ej.kind[0] == FLIT_REPLY
                return
        pytest.fail("flit never delivered")

    def test_rejects_bad_buffer_capacity(self, mesh4):
        with pytest.raises(ValueError):
            BufferedNetwork(mesh4, buffer_capacity=0)


class TestBuffering:
    def test_flits_queue_instead_of_deflecting(self, mesh4):
        """Two flits to one destination: both delivered, one cycle apart."""
        net = BufferedNetwork(mesh4)
        net.enqueue_requests(np.array([1, 4]), np.array([5, 5]), 1, cycle=0)
        times = []
        for c in range(30):
            ej = net.step(c)
            times.extend([c] * ej.node.size)
        assert len(times) == 2
        assert times[1] == times[0] + 1  # waits one cycle in a buffer

    def test_conservation_under_load(self, mesh8):
        rng = np.random.default_rng(4)
        net = BufferedNetwork(mesh8)
        sent = 0
        for c in range(300):
            srcs = np.flatnonzero(rng.random(64) < 0.5)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 63, srcs.size)) % 64
                sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
            net.step(c)
        for c in range(300, 3000):
            net.step(c)
            if net.stats.ejected_flits == sent:
                break
        assert net.stats.injected_flits == sent
        assert net.stats.ejected_flits == sent
        assert net.in_flight_flits() == 0

    def test_buffer_occupancy_never_exceeds_capacity(self, mesh4):
        net = BufferedNetwork(mesh4, buffer_capacity=4)
        rng = np.random.default_rng(8)
        for c in range(400):
            srcs = np.flatnonzero(rng.random(16) < 0.8)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                net.enqueue_requests(srcs, dests, 1, cycle=c)
            net.step(c)
            assert net.buffers.count.max() <= 4
            assert (net.buffers.count[:, :4] + net.reserved >= 0).all()

    def test_credits_prevent_overflow_with_tiny_buffers(self, mesh4):
        """Lossless even with 1-flit buffers: flits wait for credits."""
        net = BufferedNetwork(mesh4, buffer_capacity=1)
        rng = np.random.default_rng(8)
        sent = 0
        for c in range(200):
            srcs = np.flatnonzero(rng.random(16) < 0.5)
            if srcs.size:
                dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                sent += int(net.enqueue_requests(srcs, dests, 1, cycle=c).sum())
            net.step(c)
            assert net.buffers.count.max() <= 1
        for c in range(200, 8000):
            net.step(c)
            if net.stats.ejected_flits == sent:
                break
        assert net.stats.ejected_flits == sent

    def test_latency_grows_with_load(self, mesh4):
        """In-network latency rises under congestion — the traditional-
        network behavior the paper contrasts with bufferless NoCs."""

        def run(p):
            net = BufferedNetwork(mesh4)
            rng = np.random.default_rng(1)
            for c in range(600):
                srcs = np.flatnonzero(rng.random(16) < p)
                if srcs.size:
                    dests = (srcs + 1 + rng.integers(0, 15, srcs.size)) % 16
                    net.enqueue_requests(srcs, dests, 1, cycle=c)
                net.step(c)
            return net.stats.avg_latency

        assert run(0.9) > run(0.05) * 1.5


class TestInjection:
    def test_starvation_when_ni_buffer_full(self, mesh4):
        net = BufferedNetwork(mesh4, buffer_capacity=2)
        # flood node 0's NI with packets toward a congested corner
        for c in range(300):
            net.enqueue_requests(np.array([0, 1, 4]), np.array([15, 15, 15]), 1, cycle=c)
            net.step(c)
        assert net.stats.starved_cycles.sum() > 0

    def test_throttle_gate_applies(self, mesh4):
        def run(rate):
            net = BufferedNetwork(mesh4)
            rates = np.zeros(16)
            rates[0] = rate
            net.set_throttle_rates(rates)
            for c in range(300):
                net.enqueue_requests(np.array([0]), np.array([15]), 1, cycle=c)
                net.step(c)
            return net.stats.injected_per_node[0]

        assert run(0.9) < run(0.0) * 0.3
