"""Tests for the SimulationResult aggregate properties."""

import numpy as np
import pytest

from repro.metrics.collectors import EpochSeries
from repro.power.model import PowerReport
from repro.sim.results import SimulationResult


def make_result(ipc, active):
    ipc = np.asarray(ipc, dtype=float)
    active = np.asarray(active, dtype=bool)
    n = ipc.size
    return SimulationResult(
        cycles=1000,
        num_nodes=n,
        ipc=ipc,
        active=active,
        ipf=np.ones(n),
        starvation_rate=np.full(n, 0.25),
        port_starvation_rate=np.full(n, 0.10),
        avg_net_latency=15.0,
        max_net_latency=60,
        avg_injection_latency=3.0,
        avg_hops=4.0,
        deflection_rate=0.2,
        network_utilization=0.7,
        injected_flits=1234,
        ejected_flits=1200,
        power=PowerReport(500.0, 500.0, 1000),
        epochs=EpochSeries(),
    )


class TestAggregates:
    def test_system_throughput_sums_all(self):
        res = make_result([1.0, 2.0, 0.0, 0.0], [True, True, False, False])
        assert res.system_throughput == 3.0

    def test_throughput_per_node_uses_active_only(self):
        res = make_result([1.0, 2.0, 0.0, 0.0], [True, True, False, False])
        assert res.throughput_per_node == pytest.approx(1.5)

    def test_all_idle_throughput_zero(self):
        res = make_result([0.0, 0.0], [False, False])
        assert res.throughput_per_node == 0.0
        assert res.mean_starvation == 0.0
        assert res.mean_port_starvation == 0.0

    def test_mean_starvations(self):
        res = make_result([1.0, 1.0], [True, True])
        assert res.mean_starvation == pytest.approx(0.25)
        assert res.mean_port_starvation == pytest.approx(0.10)

    def test_summary_contains_metrics(self):
        res = make_result([1.0, 1.0], [True, True])
        text = res.summary()
        for token in ("IPC/node", "util", "latency", "starvation", "power"):
            assert token in text


class TestSerialization:
    def test_percentile_without_histogram_is_zero(self):
        res = make_result([1.0], [True])
        assert res.latency_hist is None
        assert res.latency_percentile(99) == 0

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_result([1.0], [True]).latency_percentile(101)
        with pytest.raises(ValueError):
            make_result([1.0], [True]).latency_percentile(-1)

    def test_percentile_edge_cases_exact(self):
        # Histogram with empty low buckets: 3 flits at latency 7,
        # 5 at latency 12, 2 at latency 900.
        res = make_result([1.0], [True])
        hist = np.zeros(1024, dtype=np.int64)
        hist[7] = 3
        hist[12] = 5
        hist[900] = 2
        res.latency_hist = hist
        # p=0 is the minimum observed latency, NOT (empty) bucket 0.
        assert res.latency_percentile(0) == 7
        # p=100 is the maximum occupied bucket, never past it.
        assert res.latency_percentile(100) == 900
        # nearest-rank interior points: ranks 1-3 -> 7, 4-8 -> 12.
        assert res.latency_percentile(30) == 7  # rank 3
        assert res.latency_percentile(50) == 12  # rank 5
        assert res.latency_percentile(80) == 12  # rank 8
        assert res.latency_percentile(95) == 900  # rank 9.5 -> bucket 900

    def test_percentile_empty_histogram_is_zero(self):
        res = make_result([1.0], [True])
        res.latency_hist = np.zeros(1024, dtype=np.int64)
        for p in (0, 50, 100):
            assert res.latency_percentile(p) == 0

    def test_percentile_single_flit_all_percentiles_agree(self):
        res = make_result([1.0], [True])
        hist = np.zeros(1024, dtype=np.int64)
        hist[33] = 1
        res.latency_hist = hist
        for p in (0, 1, 50, 99, 100):
            assert res.latency_percentile(p) == 33

    def test_percentile_network_stats_duplicate_matches(self):
        from repro.network.base import NetworkStats

        stats = NetworkStats()
        stats.init_arrays(4)
        stats.record_latencies(np.array([7, 7, 7, 12, 12, 12, 12, 12, 900, 900]))
        res = make_result([1.0], [True])
        res.latency_hist = stats.latency_hist
        for p in (0, 25, 50, 75, 95, 100):
            assert stats.latency_percentile(p) == res.latency_percentile(p)

    def test_hand_built_roundtrip(self):
        res = make_result([1.0, 2.0], [True, False])
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone.to_dict() == res.to_dict()
        assert clone.guardrails is None
        assert clone.latency_hist is None
        np.testing.assert_array_equal(clone.ipc, res.ipc)
        assert clone.epochs == res.epochs
