"""Unit tests for the mesh and torus topologies."""

import numpy as np
import pytest

from repro.topology import (
    EAST,
    INVALID_PORT,
    Mesh2D,
    NORTH,
    NUM_PORTS,
    SOUTH,
    Torus2D,
    WEST,
    opposite_port,
)


class TestPortConventions:
    def test_opposite_ports_are_involutions(self):
        for port in range(NUM_PORTS):
            assert opposite_port(opposite_port(port)) == port

    def test_opposite_pairs(self):
        assert opposite_port(NORTH) == SOUTH
        assert opposite_port(EAST) == WEST


class TestMeshConstruction:
    def test_node_count(self):
        assert Mesh2D(4).num_nodes == 16
        assert Mesh2D(8, 4).num_nodes == 32

    def test_default_height_is_square(self):
        mesh = Mesh2D(5)
        assert mesh.height == 5

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            Mesh2D(1)
        with pytest.raises(ValueError):
            Mesh2D(4, 1)

    def test_coordinates_row_major(self):
        mesh = Mesh2D(4)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(5) == (1, 1)
        assert mesh.coords(15) == (3, 3)

    def test_node_at_inverts_coords(self):
        mesh = Mesh2D(4, 3)
        for node in range(mesh.num_nodes):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_node_at_rejects_out_of_range(self):
        mesh = Mesh2D(4)
        with pytest.raises(ValueError):
            mesh.node_at(4, 0)
        with pytest.raises(ValueError):
            mesh.node_at(0, -1)

    def test_corner_has_two_links(self):
        mesh = Mesh2D(4)
        assert mesh.ports_per_node[0] == 2
        assert mesh.ports_per_node[15] == 2

    def test_edge_has_three_links(self):
        mesh = Mesh2D(4)
        assert mesh.ports_per_node[1] == 3

    def test_interior_has_four_links(self):
        mesh = Mesh2D(4)
        assert mesh.ports_per_node[5] == 4

    def test_num_links_formula(self):
        # A WxH mesh has 2*(W-1)*H + 2*(H-1)*W directed links.
        for w, h in [(4, 4), (8, 8), (3, 5)]:
            mesh = Mesh2D(w, h)
            assert mesh.num_links == 2 * (w - 1) * h + 2 * (h - 1) * w

    def test_neighbor_symmetry(self):
        mesh = Mesh2D(5, 3)
        for node in range(mesh.num_nodes):
            for port in range(NUM_PORTS):
                other = mesh.neighbor[node, port]
                if other >= 0:
                    assert mesh.neighbor[other, opposite_port(port)] == node


class TestMeshRouting:
    def test_distance_is_manhattan(self):
        mesh = Mesh2D(4)
        assert mesh.distance(0, 15) == 6
        assert mesh.distance(0, 3) == 3
        assert mesh.distance(5, 5) == 0

    def test_distance_vectorized(self):
        mesh = Mesh2D(4)
        src = np.array([0, 0, 5])
        dest = np.array([15, 3, 6])
        np.testing.assert_array_equal(mesh.distance(src, dest), [6, 3, 1])

    def test_max_distance(self):
        assert Mesh2D(4).max_distance() == 6
        assert Mesh2D(8, 4).max_distance() == 10

    def test_productive_ports_x_first(self):
        mesh = Mesh2D(4)
        p0, p1 = mesh.productive_ports(np.array([0]), np.array([5]))
        assert p0[0] == EAST  # x resolved first
        assert p1[0] == SOUTH

    def test_productive_ports_single_axis(self):
        mesh = Mesh2D(4)
        p0, p1 = mesh.productive_ports(np.array([0]), np.array([3]))
        assert p0[0] == EAST
        assert p1[0] == INVALID_PORT
        p0, p1 = mesh.productive_ports(np.array([0]), np.array([12]))
        assert p0[0] == SOUTH
        assert p1[0] == INVALID_PORT

    def test_productive_ports_at_destination(self):
        mesh = Mesh2D(4)
        p0, p1 = mesh.productive_ports(np.array([7]), np.array([7]))
        assert p0[0] == INVALID_PORT
        assert p1[0] == INVALID_PORT

    def test_productive_ports_westward(self):
        mesh = Mesh2D(4)
        p0, _ = mesh.productive_ports(np.array([3]), np.array([0]))
        assert p0[0] == WEST

    def test_productive_port_always_a_real_link(self):
        """XY routing toward an in-mesh node never points off-mesh."""
        mesh = Mesh2D(5, 3)
        nodes = np.arange(mesh.num_nodes)
        for dest in range(mesh.num_nodes):
            p0, p1 = mesh.productive_ports(nodes, np.full(nodes.shape, dest))
            for node in nodes:
                if p0[node] != INVALID_PORT:
                    assert mesh.link_exists[node, p0[node]]
                if p1[node] != INVALID_PORT:
                    assert mesh.link_exists[node, p1[node]]

    def test_following_productive_port_reaches_destination(self):
        mesh = Mesh2D(6, 4)
        rng = np.random.default_rng(0)
        for _ in range(50):
            src = int(rng.integers(0, mesh.num_nodes))
            dest = int(rng.integers(0, mesh.num_nodes))
            node, hops = src, 0
            while node != dest:
                p0, _ = mesh.productive_ports(np.array([node]), np.array([dest]))
                node = int(mesh.neighbor[node, p0[0]])
                hops += 1
                assert hops <= mesh.max_distance()
            assert hops == mesh.distance(src, dest)


class TestTorus:
    def test_all_nodes_have_four_links(self):
        torus = Torus2D(4)
        assert (torus.ports_per_node == 4).all()

    def test_wraparound_neighbors(self):
        torus = Torus2D(4)
        assert torus.neighbor[0, WEST] == 3
        assert torus.neighbor[0, NORTH] == 12

    def test_distance_uses_shorter_wrap(self):
        torus = Torus2D(4)
        assert torus.distance(0, 3) == 1  # wrap west
        assert torus.distance(0, 12) == 1  # wrap north
        assert torus.distance(0, 15) == 2

    def test_max_distance(self):
        assert Torus2D(4).max_distance() == 4
        assert Torus2D(8).max_distance() == 8

    def test_more_links_than_mesh(self):
        assert Torus2D(4).num_links == 64  # every node has 4 directed links
        assert Torus2D(4).num_links > Mesh2D(4).num_links

    def test_productive_ports_wrap(self):
        torus = Torus2D(4)
        p0, _ = torus.productive_ports(np.array([0]), np.array([3]))
        assert p0[0] == WEST  # one wrap hop beats three east hops

    def test_following_productive_port_reaches_destination(self):
        torus = Torus2D(6)
        rng = np.random.default_rng(1)
        for _ in range(50):
            src = int(rng.integers(0, torus.num_nodes))
            dest = int(rng.integers(0, torus.num_nodes))
            node, hops = src, 0
            while node != dest:
                p0, _ = torus.productive_ports(np.array([node]), np.array([dest]))
                node = int(torus.neighbor[node, p0[0]])
                hops += 1
                assert hops <= torus.max_distance()
            assert hops == torus.distance(src, dest)

    def test_width_two_torus_has_single_x_link(self):
        torus = Torus2D(2, 4)
        assert (torus.neighbor[:, WEST] == -1).all()
        # routing still reaches every destination
        p0, _ = torus.productive_ports(np.array([1]), np.array([0]))
        assert torus.link_exists[1, p0[0]]
