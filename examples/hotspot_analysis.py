#!/usr/bin/env python
"""Hot-spot traffic analysis (§7 "Traffic Engineering").

Multi-threaded workloads communicate regionally, concentrating load on
a few nodes (a lock home, a memory controller, an accelerator).  This
example builds such a hot-spot on an 8x8 mesh, shows how differently
congestion presents compared to spread traffic (latency percentiles,
localized starvation), and why source throttling — which helps spread
congestion — buys little here: the bottleneck is one node's service
capacity, which admission control cannot increase.

Run:  python examples/hotspot_analysis.py
"""

import numpy as np

from repro import (
    CentralController,
    ControlParams,
    HotspotLocality,
    Mesh2D,
    NoController,
    SimulationConfig,
    Simulator,
    make_category_workload,
)

CYCLES = 15_000
EPOCH = 1_500
HOT_NODES = (27, 36)  # two central nodes, e.g. memory controllers


def run(workload, locality, controller):
    cfg = SimulationConfig(workload, seed=5, epoch=EPOCH, locality=locality,
                           controller=controller)
    return Simulator(cfg).run(CYCLES)


def describe(label, res, hot_nodes=()):
    line = (
        f"{label:24s} sysIPC={res.system_throughput:6.2f} "
        f"util={res.network_utilization:.2f} "
        f"p50={res.latency_percentile(50):3d}cy "
        f"p99={res.latency_percentile(99):3d}cy"
    )
    if hot_nodes:
        region = res.port_starvation_rate
        hot_region = max(float(region[n]) for n in hot_nodes)
        line += (f"  starvation: median={np.median(region):.2f} "
                 f"hot-region-max={region.max():.2f}")
    print(line)


def main():
    rng = np.random.default_rng(11)
    workload = make_category_workload("H", 64, rng)
    mesh = Mesh2D(8)
    spread = "exponential"
    hotspot = HotspotLocality(mesh, hot_nodes=HOT_NODES, hot_fraction=0.35)

    print("traffic pattern comparison (baseline, no control):")
    spread_base = run(workload, spread, NoController())
    hot_base = run(workload, hotspot, NoController())
    describe("spread (lambda=1)", spread_base)
    describe("hot-spot (35% hot)", hot_base, HOT_NODES)

    print("\ndoes source throttling help?")
    spread_ctl = run(workload, spread,
                     CentralController(ControlParams(epoch=EPOCH)))
    hot_ctl = run(workload, hotspot,
                  CentralController(ControlParams(epoch=EPOCH)))
    gain_spread = spread_ctl.system_throughput / spread_base.system_throughput - 1
    gain_hot = hot_ctl.system_throughput / hot_base.system_throughput - 1
    describe("spread + throttling", spread_ctl)
    describe("hot-spot + throttling", hot_ctl, HOT_NODES)
    print(f"\nthrottling gain on spread congestion:   {100*gain_spread:+.1f}%")
    print(f"throttling gain on hot-spot congestion: {100*gain_hot:+.1f}%")
    print(
        "\nas §7 of the paper argues, hot-spots call for traffic\n"
        "engineering (routing around the hot region) rather than source\n"
        "throttling: the serialized hot node, not network admission,\n"
        "is the binding constraint."
    )


if __name__ == "__main__":
    main()
