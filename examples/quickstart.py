#!/usr/bin/env python
"""Quickstart: simulate a congested 16-core bufferless NoC, then turn on
the paper's application-aware congestion control and compare.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CentralController,
    ControlParams,
    SimulationConfig,
    Simulator,
    make_category_workload,
)

CYCLES = 20_000
EPOCH = 2_000  # controller period, scaled to the short run


def main():
    # A 4x4 mesh of high-network-intensity applications (category "H"):
    # every node runs something like mcf/lbm/soplex, which miss in their
    # L1 caches every few instructions.
    rng = np.random.default_rng(42)
    workload = make_category_workload("H", num_nodes=16, rng=rng)
    print("workload:", ", ".join(workload.app_names))

    # Baseline: FLIT-BLESS deflection routing, no congestion control.
    baseline_cfg = SimulationConfig(workload, seed=1, epoch=EPOCH)
    baseline = Simulator(baseline_cfg).run(CYCLES)
    print("\nbaseline BLESS:")
    print(" ", baseline.summary())

    # Same system plus the paper's source-throttling mechanism: every
    # EPOCH cycles the central controller reads each node's IPF and
    # starvation rate, decides whether the network is congested (Eq 1),
    # and throttles the network-intensive nodes (Eq 2).
    controlled_cfg = SimulationConfig(
        workload,
        seed=1,
        epoch=EPOCH,
        controller=CentralController(ControlParams(epoch=EPOCH)),
    )
    controlled = Simulator(controlled_cfg).run(CYCLES)
    print("\nBLESS + congestion control:")
    print(" ", controlled.summary())

    gain = controlled.system_throughput / baseline.system_throughput - 1
    print(f"\nsystem-throughput improvement: {100 * gain:+.1f}%")
    print(
        "network utilization: "
        f"{baseline.network_utilization:.2f} -> "
        f"{controlled.network_utilization:.2f} "
        "(throttled back to a more efficient operating point)"
    )


if __name__ == "__main__":
    main()
