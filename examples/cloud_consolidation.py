#!/usr/bin/env python
"""Cloud-consolidation scenario: protecting light tenants from noisy
neighbors on a shared many-core chip.

The paper motivates large CMPs with "cloud computing systems which
aggregate many workloads onto one substrate" (§6.1).  This example
consolidates two tenants on an 8x8 mesh:

- a batch tenant running memory-thrashing analytics (mcf, lbm — IPF ~ 1),
- a latency-sensitive tenant running compute-bound services
  (gromacs, h264ref — IPF 19 to 310).

Without congestion control the batch tenant floods the bufferless
network and starves the service tenant's cache misses.  The mechanism
identifies the batch applications by their low Instructions-per-Flit
and throttles only them.

Run:  python examples/cloud_consolidation.py
"""

import numpy as np

from repro import (
    CentralController,
    ControlParams,
    NoController,
    SimulationConfig,
    Simulator,
    Workload,
)

CYCLES = 20_000
EPOCH = 2_000

BATCH_APPS = ("mcf", "lbm")
SERVICE_APPS = ("gromacs", "h264ref")


def build_workload(rng: np.random.Generator) -> Workload:
    """Half the chip per tenant, interleaved by row pairs."""
    names = []
    for node in range(64):
        row = node // 8
        pool = BATCH_APPS if (row // 2) % 2 == 0 else SERVICE_APPS
        names.append(pool[rng.integers(0, len(pool))])
    return Workload(tuple(names), category="CLOUD")


def tenant_ipc(result, workload, apps):
    nodes = [i for i, a in enumerate(workload.app_names) if a in apps]
    return float(result.ipc[nodes].mean())


def main():
    rng = np.random.default_rng(7)
    workload = build_workload(rng)

    runs = {}
    for label, controller in (
        ("baseline", NoController()),
        ("with congestion control", CentralController(ControlParams(epoch=EPOCH))),
    ):
        cfg = SimulationConfig(workload, seed=3, epoch=EPOCH, controller=controller)
        runs[label] = Simulator(cfg).run(CYCLES)

    print(f"{'':28s} {'batch IPC':>10s} {'service IPC':>12s} {'system':>8s} {'starved':>8s}")
    for label, res in runs.items():
        print(
            f"{label:28s} "
            f"{tenant_ipc(res, workload, BATCH_APPS):10.3f} "
            f"{tenant_ipc(res, workload, SERVICE_APPS):12.3f} "
            f"{res.system_throughput:8.2f} "
            f"{res.mean_port_starvation:8.3f}"
        )

    base, ctl = runs["baseline"], runs["with congestion control"]
    service_gain = (
        tenant_ipc(ctl, workload, SERVICE_APPS)
        / tenant_ipc(base, workload, SERVICE_APPS)
        - 1
    )
    print(
        f"\nservice-tenant speedup from application-aware throttling: "
        f"{100 * service_gain:+.1f}%"
    )
    print(
        "the controller throttled only the low-IPF (batch) nodes; "
        "responses to other tenants' requests were never throttled."
    )


if __name__ == "__main__":
    main()
