#!/usr/bin/env python
"""Driving the simulator with recorded miss traces.

The paper replays captured instruction traces; this library's
equivalent substitution point is the gap trace: per-node sequences of
instructions-between-misses.  Anything that can produce such a
sequence — a cache simulator, hardware performance counters, or (here)
the built-in synthetic models — can drive the cores deterministically.

This example records a trace from the synthetic 'mcf' model, saves it
to disk, reloads it, and shows that replaying the same trace gives the
same simulation down to the flit count.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    GapTrace,
    SimulationConfig,
    Simulator,
    TracedBehaviorArray,
    make_homogeneous_workload,
)

CYCLES = 10_000


def run_with_trace(trace: GapTrace) -> tuple:
    cfg = SimulationConfig(
        make_homogeneous_workload("mcf", 16), seed=4, epoch=1000
    )
    sim = Simulator(cfg)
    sim.behavior = TracedBehaviorArray(trace)
    sim.cores.behavior = sim.behavior
    res = sim.run(CYCLES)
    return res.system_throughput, res.injected_flits


def main():
    # 1. Record a replayable trace from the synthetic application model.
    cfg = SimulationConfig(
        make_homogeneous_workload("mcf", 16), seed=4, epoch=1000
    )
    sim = Simulator(cfg)
    rng = np.random.default_rng(0)
    trace = GapTrace.record(sim.behavior, cycles_of_misses=4000, rng=rng)
    print(f"recorded {sum(g.size for g in trace.gaps)} miss gaps across "
          f"{trace.num_nodes} nodes")

    # 2. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mcf_16.npz"
        trace.save(path)
        loaded = GapTrace.load(path)
        print(f"saved/loaded {path.name}: {path.stat().st_size} bytes")

    # 3. Replaying the same trace is bit-stable.
    first = run_with_trace(trace)
    second = run_with_trace(loaded)
    print(f"run 1: throughput={first[0]:.3f} flits={first[1]}")
    print(f"run 2: throughput={second[0]:.3f} flits={second[1]}")
    assert first == second, "replay must be deterministic"
    print("replay deterministic: OK")


if __name__ == "__main__":
    main()
