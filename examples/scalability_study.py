#!/usr/bin/env python
"""Scalability study: BLESS vs BLESS+throttling vs buffered, 16 -> 1024
cores (Figs 13-16 of the paper, reduced sizes for a quick run).

Each network runs the same high-intensity workload with exponential
data locality (mean request distance 1 hop, the paper's lambda = 1):
most misses are serviced by nearby shared-cache slices, as an
intelligent data-mapping layer would arrange.  Despite that locality,
baseline bufferless per-node throughput sags as the network grows;
source throttling restores near-flat scaling at a fraction of a
buffered router's cost.

Run:  python examples/scalability_study.py
"""

from repro.experiments import format_table, scaling_sweep

SIZES = (16, 64, 256, 1024)


def cycles_for(size: int) -> int:
    # Larger networks need fewer cycles for stable trend estimates.
    return {16: 8000, 64: 8000, 256: 6000, 1024: 4000}[size]


def main():
    print("running 3 networks x 4 sizes (a few minutes)...")
    data = scaling_sweep(SIZES, cycles_for)

    rows = []
    for i, size in enumerate(SIZES):
        bless = data["bless"][i][1]
        throt = data["bless-throttling"][i][1]
        buf = data["buffered"][i][1]
        rows.append(
            (
                size,
                bless.throughput_per_node,
                throt.throughput_per_node,
                buf.throughput_per_node,
                f"{bless.avg_net_latency:.0f}/{throt.avg_net_latency:.0f}"
                f"/{buf.avg_net_latency:.0f}",
                f"{100 * throt.power.reduction_vs(bless.power):+.0f}%",
            )
        )
    print()
    print(
        format_table(
            [
                "cores",
                "BLESS IPC/n",
                "+Throttling",
                "Buffered",
                "latency B/T/Buf",
                "power vs BLESS",
            ],
            rows,
        )
    )
    first, last = data["bless"][0][1], data["bless"][-1][1]
    t_first, t_last = data["bless-throttling"][0][1], data["bless-throttling"][-1][1]
    print(
        f"\nbaseline per-node throughput {16}->{SIZES[-1]} cores: "
        f"{100 * (last.throughput_per_node / first.throughput_per_node - 1):+.0f}%"
    )
    print(
        "with congestion control: "
        f"{100 * (t_last.throughput_per_node / t_first.throughput_per_node - 1):+.0f}% "
        "(closer to flat = linear total-throughput scaling)"
    )


if __name__ == "__main__":
    main()
