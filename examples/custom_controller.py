#!/usr/bin/env python
"""Extending the library: writing your own congestion controller.

A controller is any object with the :class:`repro.Controller` interface:
``on_epoch(view)`` receives each node's measured IPF and starvation
rate every epoch and returns per-node throttling rates for the
Algorithm-3 injection gate.

This example implements a *utilization-target* controller — a simple
AIMD loop steering network utilization toward a set-point, throttling
the most network-intensive half of the nodes — and races it against
the paper's mechanism on a congested workload.  (Spoiler: the paper's
starvation-triggered, IPF-proportional policy usually wins, but the
AIMD loop is a reasonable 20-line baseline.)

Run:  python examples/custom_controller.py
"""

import numpy as np

from repro import (
    CentralController,
    ControlParams,
    Controller,
    EpochView,
    SimulationConfig,
    Simulator,
    make_category_workload,
)

CYCLES = 20_000
EPOCH = 1_000


class UtilizationTargetController(Controller):
    """AIMD throttling toward a network-utilization set-point."""

    def __init__(self, target: float = 0.6, step: float = 0.08):
        self.target = target
        self.step = step
        self._rate = 0.0

    def on_epoch(self, view: EpochView) -> np.ndarray:
        if view.utilization > self.target:
            self._rate = min(self._rate + self.step, 0.9)  # additive increase
        else:
            self._rate = self._rate / 2.0  # multiplicative decrease
            if self._rate < 0.05:
                self._rate = 0.0
        rates = np.zeros(view.active.shape[0])
        ipf = np.minimum(view.ipf, 1e6)
        if self._rate > 0 and view.active.any():
            intensive = view.active & (ipf < np.median(ipf[view.active]))
            rates[intensive] = self._rate
        return rates

    def describe(self) -> str:
        return f"UtilizationTarget(target={self.target})"


def main():
    rng = np.random.default_rng(21)
    workload = make_category_workload("HM", 16, rng)

    contenders = {
        "no control": None,
        "AIMD utilization target": UtilizationTargetController(target=0.6),
        "paper mechanism": CentralController(ControlParams(epoch=EPOCH)),
    }
    print(f"{'controller':26s} {'sys IPC':>8s} {'util':>6s} {'latency':>8s}")
    results = {}
    for label, controller in contenders.items():
        kw = {"controller": controller} if controller else {}
        cfg = SimulationConfig(workload, seed=2, epoch=EPOCH, **kw)
        res = Simulator(cfg).run(CYCLES)
        results[label] = res
        print(
            f"{label:26s} {res.system_throughput:8.2f} "
            f"{res.network_utilization:6.2f} {res.avg_net_latency:8.1f}"
        )

    base = results["no control"].system_throughput
    for label in ("AIMD utilization target", "paper mechanism"):
        gain = results[label].system_throughput / base - 1
        print(f"{label}: {100 * gain:+.1f}% vs no control")


if __name__ == "__main__":
    main()
