"""Flit conventions shared by the router models.

A flit is the smallest independently routed unit of traffic (§2.1).  For
speed, every flit is represented by two 64-bit words:

- ``meta`` packs the routing/identity fields (layout below),
- ``birth`` is the injection cycle, with ``birth < 0`` meaning
  "no flit" in arrival/output buffers.

``meta`` bit layout::

    bits  0..13   dest   destination node (up to 16k nodes)
    bits 14..27   src    injecting node
    bits 28..29   kind   request / reply / control
    bit  30       cbit   congestion bit (distributed control, §6.6)
    bits 31..38   seq    packet sequence tag (miss index mod 256)
    bits 39..58   hops   link traversals completed

Oldest-First arbitration orders flits by ``(birth, src)``, which is a
total order because a node injects at most one flit per cycle — this
mirrors the paper's age field plus header tie-break (§2.2).

The ``seq`` tag lets the requesting core match reply flits to the
individual miss that produced them, which drives the in-order
instruction-window model: the *oldest* outstanding miss gates
retirement, so one straggling (deflected) reply stalls the core even
when later replies have arrived — the paper's "stall time criticality".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FLIT_REQUEST",
    "FLIT_REPLY",
    "FLIT_CONTROL",
    "KIND_NAMES",
    "SEQ_RING",
    "MAX_NODES",
    "pack_meta",
    "meta_dest",
    "meta_src",
    "meta_kind",
    "meta_seq",
    "meta_hops",
    "meta_cbit",
    "priority_key",
    "priority_key_into",
    "HOP_ONE",
    "CBIT_MASK",
]

FLIT_REQUEST = 0
FLIT_REPLY = 1
FLIT_CONTROL = 2
KIND_NAMES = ("request", "reply", "control")

_DEST_SHIFT = 0
_SRC_SHIFT = 14  # repro: c-mirror[SRC_SHIFT]
_KIND_SHIFT = 28  # repro: c-mirror[KIND_SHIFT]
_CBIT_SHIFT = 30
_SEQ_SHIFT = 31  # repro: c-mirror[SEQ_SHIFT]
_HOPS_SHIFT = 39  # repro: c-mirror[HOPS_SHIFT]

_NODE_MASK = (1 << 14) - 1  # repro: c-mirror[NODE_MASK]
_KIND_MASK = 0x3
_SEQ_MASK = (1 << 8) - 1  # repro: c-mirror[SEQ_MASK]
_HOPS_MASK = (1 << 20) - 1  # repro: c-mirror[HOPS_MASK]

#: Per-node packet sequence space; must exceed any outstanding-miss limit.
SEQ_RING = 256  # repro: c-mirror[SEQ_RING]
#: Largest network the packed format supports.
MAX_NODES = _NODE_MASK + 1

#: Add to ``meta`` to record one more traversed hop.
HOP_ONE = np.int64(1) << _HOPS_SHIFT
#: OR into ``meta`` to set the congestion bit.
CBIT_MASK = np.int64(1) << _CBIT_SHIFT


def pack_meta(dest, src, kind, seq=0) -> np.ndarray:
    """Pack flit identity fields into meta words (hops = 0, cbit clear)."""
    dest = np.asarray(dest, dtype=np.int64)
    src = np.asarray(src, dtype=np.int64)
    kind = np.asarray(kind, dtype=np.int64)
    seq = np.asarray(seq, dtype=np.int64)
    return (
        (dest << _DEST_SHIFT)
        | (src << _SRC_SHIFT)
        | (kind << _KIND_SHIFT)
        | (seq << _SEQ_SHIFT)
    )


def meta_dest(meta: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    if out is None:
        return meta & _NODE_MASK
    return np.bitwise_and(meta, _NODE_MASK, out=out)


def meta_src(meta: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    if out is None:
        return (meta >> _SRC_SHIFT) & _NODE_MASK
    np.right_shift(meta, _SRC_SHIFT, out=out)
    return np.bitwise_and(out, _NODE_MASK, out=out)


def meta_kind(meta: np.ndarray) -> np.ndarray:
    return (meta >> _KIND_SHIFT) & _KIND_MASK


def meta_seq(meta: np.ndarray) -> np.ndarray:
    return (meta >> _SEQ_SHIFT) & _SEQ_MASK


def meta_hops(meta: np.ndarray) -> np.ndarray:
    return (meta >> _HOPS_SHIFT) & _HOPS_MASK


def meta_cbit(meta: np.ndarray) -> np.ndarray:
    return (meta >> _CBIT_SHIFT) & 0x1


def priority_key(birth: np.ndarray, src: np.ndarray) -> np.ndarray:
    """Total-order arbitration key; smaller key = older flit = wins.

    ``birth`` is the injection cycle and ``src`` the injecting node.  The
    pair is unique per in-flight flit (one injection per node per cycle),
    giving the total order the paper requires for livelock freedom.
    """
    return (np.asarray(birth, dtype=np.int64) << _SRC_SHIFT) | np.asarray(
        src, dtype=np.int64
    )


def priority_key_into(
    birth: np.ndarray, src: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Allocation-free :func:`priority_key` into a scratch buffer
    (*src* must already be an int64 array, e.g. a ``meta_src`` scratch)."""
    np.left_shift(birth, _SRC_SHIFT, out=out)
    return np.bitwise_or(out, src, out=out)
