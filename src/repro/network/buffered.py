"""Buffered virtual-channel router baseline (§6.3, footnote 5).

The paper's comparison network is a buffered NoC with 4 VCs per input and
4 flits of buffering per VC (16 flits per link input).  We model it as an
input-buffered, credit-flow-controlled router:

- each router input (four links + the network-interface injection port)
  has a 16-flit FIFO,
- routing is strict XY (deterministic, no deflection),
- each output port moves at most one flit per cycle, granted to the
  oldest head-of-queue flit requesting it (Oldest-First, like the BLESS
  baseline, so the arbitration policy is not a confound),
- a flit moves only when the downstream input buffer has space (credits
  account for flits already in flight on the link), so the network is
  lossless,
- ejection delivers one flit per node per cycle.

Per-VC allocation is abstracted away (see DESIGN.md §2): what the
comparison rests on — in-network queueing that grows with load, extra
buffering capacity, and the area/power cost of buffers — is preserved.

The cycle itself lives in :class:`repro.network.engine.RouterEngine` +
:class:`~repro.network.engine.CreditFlowControl`; this class is the
thin configuration pairing them (see DESIGN.md §S21).
"""

from __future__ import annotations

from repro.network.engine import CreditFlowControl, RouterEngine

__all__ = ["BufferedNetwork"]


class BufferedNetwork(RouterEngine):
    """Input-buffered XY-routed network with credit flow control."""

    def __init__(
        self,
        topology,
        hop_latency: int = 3,
        buffer_capacity: int = 16,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        fault_model=None,
    ):
        super().__init__(
            topology,
            CreditFlowControl(buffer_capacity=buffer_capacity),
            hop_latency=hop_latency,
            queue_capacity=queue_capacity,
            starvation_window=starvation_window,
            fault_model=fault_model,
        )
