"""Buffered virtual-channel router baseline (§6.3, footnote 5).

The paper's comparison network is a buffered NoC with 4 VCs per input and
4 flits of buffering per VC (16 flits per link input).  We model it as an
input-buffered, credit-flow-controlled router:

- each router input (four links + the network-interface injection port)
  has a 16-flit FIFO,
- routing is strict XY (deterministic, no deflection),
- each output port moves at most one flit per cycle, granted to the
  oldest head-of-queue flit requesting it (Oldest-First, like the BLESS
  baseline, so the arbitration policy is not a confound),
- a flit moves only when the downstream input buffer has space (credits
  account for flits already in flight on the link), so the network is
  lossless,
- ejection delivers one flit per node per cycle.

Per-VC allocation is abstracted away (see DESIGN.md §2): what the
comparison rests on — in-network queueing that grows with load, extra
buffering capacity, and the area/power cost of buffers — is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.network.base import EjectedFlits, NocModel
from repro.observability.tracer import EV_EJECT, EV_HOP, EV_INJECT
from repro.network.flit import (
    CBIT_MASK,
    HOP_ONE,
    meta_cbit,
    meta_dest,
    meta_hops,
    meta_kind,
    meta_seq,
    meta_src,
    pack_meta,
    priority_key,
)
from repro.topology.mesh import NUM_PORTS

__all__ = ["BufferedNetwork"]

_KEY_MAX = np.iinfo(np.int64).max
_NI_PORT = NUM_PORTS  # index of the injection input
_EJECT = NUM_PORTS  # output-port id for local delivery
_NUM_INPUTS = NUM_PORTS + 1


class _BufferBank:
    """Fixed-capacity FIFO of packed flits per (node, input port)."""

    def __init__(self, num_nodes: int, num_ports: int, capacity: int):
        self.capacity = capacity
        shape = (num_nodes, num_ports, capacity)
        self.meta = np.zeros(shape, dtype=np.int64)
        self.birth = np.zeros(shape, dtype=np.int64)
        self.head = np.zeros((num_nodes, num_ports), dtype=np.int32)
        self.count = np.zeros((num_nodes, num_ports), dtype=np.int32)

    def occupancy(self) -> int:
        return int(self.count.sum())

    def push(self, nodes, ports, meta, birth) -> None:
        """Append flits; callers guarantee space and unique (node, port)."""
        slot = (self.head[nodes, ports] + self.count[nodes, ports]) % self.capacity
        self.meta[nodes, ports, slot] = meta
        self.birth[nodes, ports, slot] = birth
        self.count[nodes, ports] += 1

    def heads(self):
        """Head-of-queue view per (node, port): ``(valid, meta, birth)``."""
        idx = self.head[:, :, None]
        meta = np.take_along_axis(self.meta, idx, axis=2)[:, :, 0]
        birth = np.take_along_axis(self.birth, idx, axis=2)[:, :, 0]
        return self.count > 0, meta, birth

    def pop(self, nodes, ports):
        slot = self.head[nodes, ports]
        meta = self.meta[nodes, ports, slot].copy()
        birth = self.birth[nodes, ports, slot].copy()
        self.head[nodes, ports] = (slot + 1) % self.capacity
        self.count[nodes, ports] -= 1
        return meta, birth


class BufferedNetwork(NocModel):
    """Input-buffered XY-routed network with credit flow control."""

    def __init__(
        self,
        topology,
        hop_latency: int = 3,
        buffer_capacity: int = 16,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        fault_model=None,
    ):
        super().__init__(topology, queue_capacity, starvation_window, fault_model)
        if buffer_capacity < 1:
            raise ValueError("buffer capacity must be positive")
        if hop_latency < 1:
            raise ValueError("hop latency must be at least 1 cycle")
        self.hop_latency = hop_latency
        self.buffer_capacity = buffer_capacity
        n, p = self.num_nodes, NUM_PORTS
        self._ring_meta = np.zeros((hop_latency, n * p), dtype=np.int64)
        self._ring_birth = np.full((hop_latency, n * p), -1, dtype=np.int64)
        self._cursor = 0
        self.buffers = _BufferBank(n, _NUM_INPUTS, buffer_capacity)
        # Flits in flight toward each link-input buffer, for credit checks.
        self.reserved = np.zeros((n, p), dtype=np.int32)
        self._node_ids = np.arange(n, dtype=np.int64)
        self._node_col = self._node_ids[:, None]

    # ------------------------------------------------------------------
    def in_flight_flits(self) -> int:
        return int((self._ring_birth >= 0).sum()) + self.buffers.occupancy()

    def in_flight_view(self):
        ring_mask = self._ring_birth >= 0
        buffers = self.buffers
        # Occupied ring-buffer slots per (node, input port).
        offsets = np.arange(buffers.capacity)
        occupied = (
            (offsets[None, None, :] - buffers.head[:, :, None]) % buffers.capacity
            < buffers.count[:, :, None]
        )
        return (
            np.concatenate([self._ring_meta[ring_mask], buffers.meta[occupied]]),
            np.concatenate([self._ring_birth[ring_mask], buffers.birth[occupied]]),
        )

    # ------------------------------------------------------------------
    def step(self, cycle: int) -> EjectedFlits:
        self.stats.cycles += 1
        n, p = self.num_nodes, NUM_PORTS

        # --- Link arrivals drain into the input buffers -----------------
        slot = self._cursor
        arr_birth = self._ring_birth[slot].reshape(n, p)
        arr_rows, arr_ports = np.nonzero(arr_birth >= 0)
        if arr_rows.size:
            arr_meta = self._ring_meta[slot].reshape(n, p)
            self.buffers.push(
                arr_rows, arr_ports,
                arr_meta[arr_rows, arr_ports], arr_birth[arr_rows, arr_ports],
            )
            self.reserved[arr_rows, arr_ports] -= 1
            self.stats.buffer_writes += arr_rows.size
        self._ring_birth[slot] = -1
        self._cursor = (self._cursor + 1) % self.hop_latency

        # --- Route computation for every head-of-queue flit -------------
        h_valid, h_meta, h_birth = self.buffers.heads()
        h_dest = meta_dest(h_meta)
        h_key = np.where(h_valid, priority_key(h_birth, meta_src(h_meta)), _KEY_MAX)
        dx, dy = self.topology.deltas(self._node_col, h_dest)
        x_port = np.where(dx > 0, 1, 3)
        y_port = np.where(dy > 0, 2, 0)
        h_out = np.where(dx != 0, x_port, np.where(dy != 0, y_port, _EJECT))

        # --- Output arbitration: one winner per output port --------------
        neighbor = self.topology.neighbor
        opposite = self.topology.opposite
        send_slot = (self._cursor + self.hop_latency - 1) % self.hop_latency
        ejected = EjectedFlits.empty()
        mark = self.congested_nodes.any()
        # Faulted links cannot be granted; the flit stays buffered (XY
        # routing has no alternative path, unlike deflection routing).
        link_ok = self.link_up
        t_down = None
        if self.fault_model is not None:
            t_down = self.fault_model.transient_down(cycle)
        for out_port in range(NUM_PORTS + 1):
            key = np.where(h_out == out_port, h_key, _KEY_MAX)
            col = np.argmin(key, axis=1)
            rows = np.flatnonzero(key[self._node_ids, col] != _KEY_MAX)
            if rows.size == 0:
                continue
            in_ports = col[rows]
            if out_port == _EJECT:
                meta, birth = self.buffers.pop(rows, in_ports)
                self.stats.buffer_reads += rows.size
                self.stats.ejected_flits += rows.size
                lat = cycle - birth
                self.stats.latency_sum += int(lat.sum())
                self.stats.latency_count += rows.size
                self.stats.latency_max = max(self.stats.latency_max, int(lat.max()))
                self.stats.record_latencies(lat)
                self.stats.hops_sum += int(meta_hops(meta).sum())
                if self.tracer is not None:
                    self.tracer.record(
                        EV_EJECT, cycle, rows, meta_src(meta), rows,
                        meta_kind(meta), meta_seq(meta), meta_hops(meta),
                    )
                ejected = EjectedFlits(
                    rows, meta_src(meta), meta_kind(meta), meta_seq(meta),
                    meta_cbit(meta).astype(bool),
                )
                continue
            # Credit check: downstream input buffer must have space for
            # everything already there plus flits still on the wire; the
            # link itself must also be healthy this cycle.
            down = neighbor[rows, out_port].astype(np.int64)
            down_port = int(opposite[out_port])
            space = (
                self.buffers.count[down, down_port]
                + self.reserved[down, down_port]
                < self.buffer_capacity
            )
            space &= link_ok[rows, out_port]
            if t_down is not None:
                space &= ~t_down[rows, out_port]
            rows, in_ports, down = rows[space], in_ports[space], down[space]
            if rows.size == 0:
                continue
            meta, birth = self.buffers.pop(rows, in_ports)
            self.stats.buffer_reads += rows.size
            meta = meta + HOP_ONE
            if mark:
                meta[self.congested_nodes[rows]] |= CBIT_MASK
            idx = down * p + down_port
            self._ring_meta[send_slot, idx] = meta
            self._ring_birth[send_slot, idx] = birth
            self.reserved[down, down_port] += 1
            self.stats.flit_hops += rows.size
            if self.tracer is not None:
                self.tracer.record(
                    EV_HOP, cycle, rows, meta_src(meta), meta_dest(meta),
                    meta_kind(meta), meta_seq(meta), meta_hops(meta),
                )

        # --- Injection through the NI input buffer -----------------------
        ni_space = self.buffers.count[:, _NI_PORT] < self.buffer_capacity
        resp_has = self.response_queue.nonempty
        req_has = self.request_queue.nonempty
        wanted = resp_has | req_has
        inject_resp = resp_has & ni_space
        trying_req = req_has & ni_space & ~inject_resp
        inject_req = trying_req & self.throttle.decide(trying_req)
        self._inject(np.flatnonzero(inject_resp), self.response_queue, cycle)
        self._inject(np.flatnonzero(inject_req), self.request_queue, cycle)
        self._record_starvation(wanted, inject_resp | inject_req, ni_space)
        return ejected

    # ------------------------------------------------------------------
    def _inject(self, nodes: np.ndarray, queue, cycle: int) -> None:
        if nodes.size == 0:
            return
        dest, kind, seq, _stamp, _ = queue.take_flit(nodes)
        if self.tracer is not None:
            self.tracer.record(
                EV_INJECT, cycle, nodes, nodes, dest, kind, seq, 0
            )
        ports = np.full(nodes.shape, _NI_PORT, dtype=np.int64)
        self.buffers.push(
            nodes, ports,
            pack_meta(dest, nodes, kind, seq),
            np.full(nodes.shape, cycle, dtype=np.int64),
        )
        self.stats.buffer_writes += nodes.size
        self.stats.injected_flits += nodes.size
        self.stats.injected_per_node[nodes] += 1
