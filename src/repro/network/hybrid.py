"""MinBD-style hybrid router: deflection plus a small side buffer.

Minimally-buffered deflection routing (Ausavarungnirun & Mutlu,
arXiv:2112.02516) keeps the bufferless datapath of FLIT-BLESS but adds
one small FIFO per router.  Each cycle the router may *capture* a
single flit that would otherwise be deflected into the side buffer, and
*redeem* one stored flit back into a free arrival slot.  At load this
absorbs most misrouting (deflection rate well below BLESS) with a
fraction of the storage of the buffered VC baseline (occupancy well
below it) — the middle point of the buffering spectrum the paper's §6.3
comparison spans.

The cycle itself lives in :class:`repro.network.engine.RouterEngine` +
:class:`~repro.network.engine.HybridFlowControl`; this class is the
thin configuration pairing them (see DESIGN.md §S21).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.engine import HybridFlowControl, RouterEngine

__all__ = ["HybridNetwork"]


class HybridNetwork(RouterEngine):
    """Deflection-routed network with a per-router side buffer.

    Accepts every :class:`~repro.network.bless.BlessNetwork` parameter
    plus ``side_buffer_capacity``, the per-router FIFO depth (MinBD uses
    a handful of flits; the default is 4).
    """

    def __init__(
        self,
        topology,
        hop_latency: int = 3,
        eject_width: int = 1,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        arbitration: str = "oldest_first",
        side_buffer_capacity: int = 4,
        rng: Optional[np.random.Generator] = None,
        fault_model=None,
    ):
        super().__init__(
            topology,
            HybridFlowControl(
                eject_width=eject_width,
                side_buffer_capacity=side_buffer_capacity,
            ),
            hop_latency=hop_latency,
            queue_capacity=queue_capacity,
            starvation_window=starvation_window,
            arbitration=arbitration,
            rng=rng,
            fault_model=fault_model,
        )
