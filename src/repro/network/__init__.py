"""Network substrates: flit conventions, queues, and router models.

Router models register themselves in :data:`NETWORK_MODELS` so the
simulator, CLI, and sweeps share a single source of truth for what
``config.network`` may name.  :func:`build_network` is the factory the
simulator calls; adding a router variant means registering one builder
here plus (usually) a small flow-control policy class in
:mod:`repro.network.engine` — see DESIGN.md §S21.
"""

from repro.network.flit import (
    FLIT_CONTROL,
    FLIT_REPLY,
    FLIT_REQUEST,
    KIND_NAMES,
    SEQ_RING,
)
from repro.network.queues import FlitQueueArray
from repro.network.injection import InjectionThrottleGate, StarvationMeter
from repro.network.base import EjectedFlits, NocModel
from repro.network.bless import BlessNetwork
from repro.network.buffered import BufferedNetwork
from repro.network.hybrid import HybridNetwork


def _build_bless(config, topology, rng, fault_model):
    return BlessNetwork(
        topology,
        hop_latency=config.hop_latency,
        eject_width=config.eject_width,
        queue_capacity=config.queue_capacity,
        arbitration=config.arbitration,
        rng=rng,
        fault_model=fault_model,
    )


def _build_buffered(config, topology, rng, fault_model):
    return BufferedNetwork(
        topology,
        hop_latency=config.hop_latency,
        buffer_capacity=config.buffer_capacity,
        queue_capacity=config.queue_capacity,
        fault_model=fault_model,
    )


def _build_hybrid(config, topology, rng, fault_model):
    return HybridNetwork(
        topology,
        hop_latency=config.hop_latency,
        eject_width=config.eject_width,
        queue_capacity=config.queue_capacity,
        arbitration=config.arbitration,
        side_buffer_capacity=config.side_buffer_capacity,
        rng=rng,
        fault_model=fault_model,
    )


#: name -> builder(config, topology, rng, fault_model) for every router
#: model ``SimulationConfig.network`` may select.
NETWORK_MODELS = {
    "bless": _build_bless,
    "buffered": _build_buffered,
    "hybrid": _build_hybrid,
}


def build_network(config, topology, rng=None, fault_model=None) -> NocModel:
    """Construct the router model named by ``config.network``."""
    try:
        builder = NETWORK_MODELS[config.network]
    except KeyError:
        raise ValueError(
            f"unknown network model {config.network!r}; expected one of "
            f"{sorted(NETWORK_MODELS)}"
        ) from None
    return builder(config, topology, rng, fault_model)


__all__ = [
    "FLIT_REQUEST",
    "FLIT_REPLY",
    "FLIT_CONTROL",
    "KIND_NAMES",
    "FlitQueueArray",
    "SEQ_RING",
    "StarvationMeter",
    "InjectionThrottleGate",
    "EjectedFlits",
    "NocModel",
    "BlessNetwork",
    "BufferedNetwork",
    "HybridNetwork",
    "NETWORK_MODELS",
    "build_network",
]
