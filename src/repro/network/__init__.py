"""Network substrates: flit conventions, queues, and router models."""

from repro.network.flit import (
    FLIT_CONTROL,
    FLIT_REPLY,
    FLIT_REQUEST,
    KIND_NAMES,
    SEQ_RING,
)
from repro.network.queues import FlitQueueArray
from repro.network.injection import InjectionThrottleGate, StarvationMeter
from repro.network.base import EjectedFlits, NocModel
from repro.network.bless import BlessNetwork
from repro.network.buffered import BufferedNetwork

__all__ = [
    "FLIT_REQUEST",
    "FLIT_REPLY",
    "FLIT_CONTROL",
    "KIND_NAMES",
    "FlitQueueArray",
    "SEQ_RING",
    "StarvationMeter",
    "InjectionThrottleGate",
    "EjectedFlits",
    "NocModel",
    "BlessNetwork",
    "BufferedNetwork",
]
