"""Common structure shared by the router models.

A network model owns the injection-side state (request/response queues,
starvation meter, throttle gate) and the run-level statistics; the
subclasses implement one simulated cycle each in :meth:`NocModel.step`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.network.flit import FLIT_REPLY, FLIT_REQUEST
from repro.network.injection import InjectionThrottleGate, StarvationMeter
from repro.network.queues import FlitQueueArray

__all__ = ["EjectedFlits", "NetworkStats", "NocModel"]


@dataclass
class EjectedFlits:
    """Flits delivered to their destination NI this cycle."""

    node: np.ndarray  # destination node (where the flit ejected)
    src: np.ndarray  # injecting node
    kind: np.ndarray  # FLIT_REQUEST / FLIT_REPLY / FLIT_CONTROL
    seq: np.ndarray  # packet sequence tag (miss matching)
    cbit: np.ndarray  # congestion bit (distributed controller, §6.6)

    @classmethod
    def empty(cls) -> "EjectedFlits":
        zero = np.zeros(0, dtype=np.int64)
        return cls(zero, zero, zero, zero, zero.astype(bool))


@dataclass
class NetworkStats:
    """Run-level counters, accumulated every cycle."""

    cycles: int = 0
    injected_flits: int = 0
    ejected_flits: int = 0
    flit_hops: int = 0
    deflections: int = 0
    buffer_writes: int = 0
    buffer_reads: int = 0
    #: sum over cycles of flits held in in-router buffers (occupancy
    #: integral; divide by cycles for the mean — bufferless models stay 0)
    buffer_occupancy_sum: int = 0
    latency_sum: int = 0
    latency_count: int = 0
    latency_max: int = 0
    hops_sum: int = 0
    #: modeled control-plane flits (§6.6): every epoch the simulator
    #: attempts 2 flits per active node (report + rate update, per-hub
    #: with control domains).  A full hub queue rejects the overflow —
    #: those flits are *dropped*, not silently forgotten, and
    #: attempted == sent + dropped is an invariant-checker assertion.
    control_flits_attempted: int = 0
    control_flits_sent: int = 0
    control_flits_dropped: int = 0
    injected_per_node: Optional[np.ndarray] = field(default=None)
    starved_cycles: Optional[np.ndarray] = field(default=None)
    port_starved_cycles: Optional[np.ndarray] = field(default=None)
    #: per-flit latency histogram; the last bucket absorbs the tail
    latency_hist: Optional[np.ndarray] = field(default=None)

    LATENCY_HIST_BUCKETS = 1024  # repro: c-mirror[HIST_BUCKETS]

    def init_arrays(self, num_nodes: int) -> None:
        self.injected_per_node = np.zeros(num_nodes, dtype=np.int64)
        self.starved_cycles = np.zeros(num_nodes, dtype=np.int64)
        self.port_starved_cycles = np.zeros(num_nodes, dtype=np.int64)
        self.latency_hist = np.zeros(self.LATENCY_HIST_BUCKETS, dtype=np.int64)

    def record_latencies(self, latencies: np.ndarray) -> None:
        """Bucket delivered-flit latencies for percentile queries."""
        clipped = np.minimum(latencies, self.LATENCY_HIST_BUCKETS - 1)
        np.add.at(self.latency_hist, clipped, 1)

    def latency_percentile(self, p: float) -> int:
        """The *p*-th percentile (0-100) of delivered-flit latency."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        total = int(self.latency_hist.sum())
        if total == 0:
            return 0
        cum = np.cumsum(self.latency_hist)
        # Nearest-rank with a floor of 1 so p=0 returns the minimum
        # observed latency instead of (possibly empty) bucket 0; the
        # clamp keeps float rounding at p=100 inside the histogram.
        rank = max(p / 100.0 * total, 1)
        idx = int(np.searchsorted(cum, rank, side="left"))
        return min(idx, len(cum) - 1)

    @property
    def avg_latency(self) -> float:
        """Mean in-network latency (injection to ejection) per flit."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    @property
    def avg_hops(self) -> float:
        """Mean hops traversed per delivered flit (includes deflections)."""
        if self.latency_count == 0:
            return 0.0
        return self.hops_sum / self.latency_count

    @property
    def avg_buffer_occupancy(self) -> float:
        """Mean flits held in in-router buffers per cycle (network-wide)."""
        if self.cycles == 0:
            return 0.0
        return self.buffer_occupancy_sum / self.cycles

    @property
    def deflection_rate(self) -> float:
        """Deflections per link traversal."""
        if self.flit_hops == 0:
            return 0.0
        return self.deflections / self.flit_hops

    def utilization(self, num_links: int) -> float:
        """Mean fraction of directed links busy per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flit_hops / (self.cycles * num_links)

    def starvation_rate(self) -> np.ndarray:
        """Per-node fraction of cycles spent starved over the whole run.

        Counts every blocked injection attempt, including those blocked
        by the Algorithm-3 throttle gate (the sigma the controller sees).
        """
        if self.cycles == 0:
            return np.zeros_like(self.starved_cycles, dtype=float)
        return self.starved_cycles / self.cycles

    def port_starvation_rate(self) -> np.ndarray:
        """Starvation from network admission only (no free output link
        / NI buffer full), excluding throttle-gate blocks.  This is the
        congestion signal itself, used for Fig 9-style comparisons."""
        if self.cycles == 0:
            return np.zeros_like(self.port_starved_cycles, dtype=float)
        return self.port_starved_cycles / self.cycles


class NocModel:
    """Base class for the BLESS and buffered networks."""

    def __init__(
        self,
        topology,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        fault_model=None,
    ):
        self.topology = topology
        self.num_nodes = topology.num_nodes
        self.request_queue = FlitQueueArray(self.num_nodes, queue_capacity)
        self.response_queue = FlitQueueArray(self.num_nodes, queue_capacity)
        self.starvation = StarvationMeter(self.num_nodes, starvation_window)
        self.throttle = InjectionThrottleGate(self.num_nodes)
        self.stats = NetworkStats()
        self.stats.init_arrays(self.num_nodes)
        # Fault injection (repro.guardrails.faults): healthy-link mask and
        # destination re-striping around fail-stopped routers.
        self.fault_model = fault_model
        if fault_model is not None:
            if fault_model.topology is not topology:
                raise ValueError("fault model was built for a different topology")
            self.link_up = fault_model.link_up
        else:
            self.link_up = topology.link_exists
        # Distributed controller support: nodes currently asserting the
        # congestion bit on passing flits (§6.6); unused otherwise.
        self.congested_nodes = np.zeros(self.num_nodes, dtype=bool)
        # Sampled flit-event tracing (repro.observability.FlitTracer);
        # installed by the simulator when tracing is enabled.  A None
        # tracer costs one branch per step section.
        self.tracer = None

    def _sanitize_dest(self, dest: np.ndarray) -> np.ndarray:
        """Re-stripe destinations that target fail-stopped routers.

        The shared L2 is interleaved across nodes; when a router
        fail-stops, its slice's traffic moves to the nearest live node so
        no packet is ever addressed to a router that cannot eject it.
        """
        if self.fault_model is None:
            return dest
        return self.fault_model.remap[np.asarray(dest, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Producer-side API (used by the core/memory models)
    # ------------------------------------------------------------------
    def enqueue_requests(
        self, nodes: np.ndarray, dest: np.ndarray, flits, cycle: int = 0, seq=0
    ) -> np.ndarray:
        """Queue L1-miss request packets; returns acceptance mask."""
        return self.request_queue.push(
            nodes, self._sanitize_dest(dest), FLIT_REQUEST, flits,
            stamp=cycle, seq=seq,
        )

    def enqueue_replies(
        self, nodes: np.ndarray, dest: np.ndarray, flits, cycle: int = 0, seq=0
    ) -> np.ndarray:
        """Queue data-reply packets at the serving node (never throttled)."""
        return self.response_queue.push(
            nodes, self._sanitize_dest(dest), FLIT_REPLY, flits,
            stamp=cycle, seq=seq,
        )

    def request_backpressure(self) -> np.ndarray:
        """Mask of nodes whose request queue cannot take another packet."""
        return self.request_queue.is_full

    # ------------------------------------------------------------------
    # Control API
    # ------------------------------------------------------------------
    def set_throttle_rates(self, rates: np.ndarray) -> None:
        self.throttle.set_rates(rates)

    def step(self, cycle: int) -> EjectedFlits:
        """Advance the network by one cycle; returns delivered flits."""
        raise NotImplementedError

    def in_flight_flits(self) -> int:
        """Flits currently inside the network (for conservation checks)."""
        raise NotImplementedError

    def in_flight_view(self):
        """``(meta, birth)`` flat arrays of every in-flight flit.

        Used by the guardrails (invariant checker, watchdog) for age and
        identity checks; must visit links plus any in-network buffering.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _record_starvation(
        self,
        wanted: np.ndarray,
        injected: np.ndarray,
        had_capacity: np.ndarray,
    ) -> None:
        starved = wanted & ~injected
        self.starvation.update(starved)
        self.stats.starved_cycles += starved
        self.stats.port_starved_cycles += wanted & ~had_capacity
