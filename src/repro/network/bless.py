"""FLIT-BLESS bufferless deflection router model (§2.2, Fig 1).

Every cycle, each router:

1. receives at most one flit per incoming link (arrivals from the hop
   delay ring),
2. ejects up to ``eject_width`` flits destined to it (Oldest-First among
   locals; losers are deflected and retry next hop),
3. assigns output ports to the remaining flits in Oldest-First order —
   each flit takes its productive XY port if free, then the other
   productive direction, and is otherwise *deflected* to any free link
   (there is always one: a router has at least as many output links as
   flits to route),
4. injects at most one flit from the node's NI if an output link is
   still free — responses first (never throttled), then requests through
   the Algorithm-3 throttle gate.  A node that wanted to inject but did
   not counts as *starved* this cycle (§3.1).

The whole step is vectorized over nodes with flits in the packed
``(meta, birth)`` representation (:mod:`repro.network.flit`): the
per-cycle cost is a fixed number of numpy operations regardless of
network size, which is what makes 64x64 (4096-node) runs tractable in
Python.
"""

from __future__ import annotations

import numpy as np

from repro.network.base import EjectedFlits, NocModel
from repro.observability.tracer import EV_DEFLECT, EV_EJECT, EV_HOP, EV_INJECT
from repro.network.flit import (
    CBIT_MASK,
    HOP_ONE,
    meta_cbit,
    meta_dest,
    meta_hops,
    meta_kind,
    meta_seq,
    meta_src,
    pack_meta,
    priority_key,
)
from repro.topology.mesh import NUM_PORTS

__all__ = ["BlessNetwork"]

_KEY_MAX = np.iinfo(np.int64).max

ARBITRATION_POLICIES = ("oldest_first", "youngest_first", "random")


class BlessNetwork(NocModel):
    """Bufferless 2D-mesh/torus network with deflection routing.

    Parameters
    ----------
    topology:
        A :class:`~repro.topology.Mesh2D` or :class:`~repro.topology.Torus2D`.
    hop_latency:
        Cycles per hop; Table 2's 2-cycle router + 1-cycle link gives the
        default of 3.  Links remain pipelined (1 flit/cycle each).
    eject_width:
        Flits a node can consume per cycle; BLESS baselines use 1.
    arbitration:
        ``"oldest_first"`` (paper baseline), or ``"youngest_first"`` /
        ``"random"`` for the arbitration ablation benchmark.
    """

    def __init__(
        self,
        topology,
        hop_latency: int = 3,
        eject_width: int = 1,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        arbitration: str = "oldest_first",
        rng: np.random.Generator = None,
        fault_model=None,
    ):
        super().__init__(topology, queue_capacity, starvation_window, fault_model)
        if arbitration not in ARBITRATION_POLICIES:
            raise ValueError(f"unknown arbitration policy: {arbitration!r}")
        if eject_width < 1 or eject_width > NUM_PORTS:
            raise ValueError("eject_width must be between 1 and 4")
        if hop_latency < 1:
            raise ValueError("hop latency must be at least 1 cycle")
        self.hop_latency = hop_latency
        self.eject_width = eject_width
        self.arbitration = arbitration
        self._rng = rng if rng is not None else np.random.default_rng(0)

        n, p = self.num_nodes, NUM_PORTS
        # Hop delay ring: flits leaving at cycle t arrive hop_latency
        # cycles later; links stay pipelined at one flit per cycle.
        self._ring_meta = np.zeros((hop_latency, n * p), dtype=np.int64)
        self._ring_birth = np.full((hop_latency, n * p), -1, dtype=np.int64)
        self._cursor = 0
        # Static scatter map: flat arrival slot (neighbor, opposite port)
        # reached through each (node, out port).
        neighbor = topology.neighbor.astype(np.int64)
        opp = topology.opposite.astype(np.int64)
        self._target_flat = np.where(
            topology.link_exists, neighbor * p + opp[None, :], -1
        )
        self._node_ids = np.arange(n, dtype=np.int64)
        self._node_col = self._node_ids[:, None]
        # With permanent faults, XY-productive can point at a dead link
        # and the oldest flit would deflect forever (livelock).  Route by
        # healthy-graph distance instead: a port is productive iff it
        # strictly decreases the surviving-topology distance to dest.
        self._dist = None
        self._neighbor_safe = None
        if fault_model is not None and (
            fault_model.num_failed_links or fault_model.num_failed_routers
        ):
            self._dist = fault_model.healthy_distance
            self._neighbor_safe = np.where(topology.link_exists, neighbor, 0)
        # Scratch output arrays, reused every cycle.
        self._out_meta = np.zeros((n, p), dtype=np.int64)
        self._out_birth = np.full((n, p), -1, dtype=np.int64)
        self._avail = np.zeros((n, p), dtype=bool)
        self._spare = np.zeros((n, p), dtype=bool)
        # Injection-queueing latency statistics (time from enqueue at the
        # NI to entering the network), the paper's "injection latency".
        self.injection_latency_sum = 0
        self.injection_latency_count = 0

    # ------------------------------------------------------------------
    def in_flight_flits(self) -> int:
        return int((self._ring_birth >= 0).sum())

    def in_flight_view(self):
        mask = self._ring_birth >= 0
        return self._ring_meta[mask], self._ring_birth[mask]

    def _arbitration_key(self, birth: np.ndarray, meta: np.ndarray) -> np.ndarray:
        """Per-flit arbitration key; the smallest key wins a conflict."""
        if self.arbitration == "oldest_first":
            return priority_key(birth, meta_src(meta))
        if self.arbitration == "youngest_first":
            return -priority_key(birth, meta_src(meta))
        return self._rng.integers(0, _KEY_MAX, size=birth.shape, dtype=np.int64)

    # ------------------------------------------------------------------
    def step(self, cycle: int) -> EjectedFlits:
        self.stats.cycles += 1
        n, p = self.num_nodes, NUM_PORTS

        # --- Arrivals ----------------------------------------------------
        slot = self._cursor
        meta = self._ring_meta[slot].reshape(n, p).copy()
        birth = self._ring_birth[slot].reshape(n, p).copy()
        self._ring_birth[slot] = -1
        self._cursor = (self._cursor + 1) % self.hop_latency

        valid = birth >= 0
        dest = meta_dest(meta)
        key = np.where(valid, self._arbitration_key(birth, meta), _KEY_MAX)

        # --- Ejection: up to eject_width oldest local flits per node ----
        local = valid & (dest == self._node_col)
        ejected = EjectedFlits.empty()
        ej_parts = []
        if local.any():
            local_key = np.where(local, key, _KEY_MAX)
            for _ in range(self.eject_width):
                col = np.argmin(local_key, axis=1)
                rows = np.flatnonzero(local_key[self._node_ids, col] != _KEY_MAX)
                if rows.size == 0:
                    break
                cols = col[rows]
                m = meta[rows, cols]
                ej_parts.append((rows, m))
                lat = cycle - birth[rows, cols]
                self.stats.latency_sum += int(lat.sum())
                self.stats.latency_count += rows.size
                self.stats.latency_max = max(self.stats.latency_max, int(lat.max()))
                self.stats.record_latencies(lat)
                self.stats.hops_sum += int(meta_hops(m).sum())
                valid[rows, cols] = False
                local_key[rows, cols] = _KEY_MAX
                key[rows, cols] = _KEY_MAX
            self.stats.ejected_flits += sum(r.size for r, _ in ej_parts)

        # --- Output-port allocation, Oldest-First rank by rank ----------
        # Productive ports for every arrival, computed once.
        if self._dist is None:
            # Fault-free: productive XY ports.
            dx, dy = self.topology.deltas(self._node_col, dest)
            x_port = np.where(dx > 0, 1, 3)  # EAST / WEST
            y_port = np.where(dy > 0, 2, 0)  # SOUTH / NORTH
            p0 = np.where(dx != 0, x_port, np.where(dy != 0, y_port, -1))
            p1 = np.where((dx != 0) & (dy != 0), y_port, -1)
            productive = None
        else:
            # Permanent faults: a port is productive iff its neighbor is
            # strictly closer to dest on the healthy graph.
            p0 = p1 = None
            d_here = self._dist[self._node_col, dest]
            d_next = self._dist[self._neighbor_safe[:, None, :], dest[:, :, None]]
            productive = self.link_up[:, None, :] & (d_next < d_here[:, :, None])

        # ``avail`` marks healthy free output links (True = grantable);
        # ``spare`` marks transiently faulted links kept as a last-resort
        # fallback — a bufferless router cannot hold a flit back, so when
        # every healthy port is taken the flit crosses a degraded link
        # rather than being dropped (losslessness is a hard invariant).
        avail = self._avail
        np.copyto(avail, self.link_up)
        spare = None
        if self.fault_model is not None:
            t_down = self.fault_model.transient_down(cycle)
            if t_down is not None:
                spare = self._spare
                np.copyto(spare, avail & t_down)
                avail &= ~t_down
        out_meta, out_birth = self._out_meta, self._out_birth
        out_birth[:] = -1
        order = np.argsort(key, axis=1)
        deflections = 0
        for rank in range(p):
            cols = order[:, rank]
            rows = np.flatnonzero(key[self._node_ids, cols] != _KEY_MAX)
            if rows.size == 0:
                break  # ranks are sorted: later ranks are empty too
            c = cols[rows]
            free = avail[rows]
            if productive is None:
                pp0 = p0[rows, c]
                pp1 = p1[rows, c]
                k_idx = np.arange(rows.size)
                ok0 = (pp0 >= 0) & free[k_idx, np.where(pp0 >= 0, pp0, 0)]
                choice = np.where(ok0, pp0, -1)
                ok1 = (
                    (choice < 0) & (pp1 >= 0)
                    & free[k_idx, np.where(pp1 >= 0, pp1, 0)]
                )
                choice = np.where(ok1, pp1, choice)
            else:
                good = free & productive[rows, c]
                choice = np.where(good.any(axis=1), np.argmax(good, axis=1), -1)
            missing = choice < 0
            if missing.any():
                if self.tracer is not None:
                    md = meta[rows, c][missing]
                    self.tracer.record(
                        EV_DEFLECT, cycle, rows[missing], meta_src(md),
                        meta_dest(md), meta_kind(md), meta_seq(md),
                        meta_hops(md),
                    )
                # Deflect to the first free link; one always exists
                # because a router has >= as many healthy links as routed
                # flits (faults fail both directions of a link together).
                fallback = np.argmax(free, axis=1)
                if spare is not None:
                    no_healthy = ~free.any(axis=1)
                    if no_healthy.any():
                        fallback = np.where(
                            no_healthy, np.argmax(spare[rows], axis=1), fallback
                        )
                choice = np.where(missing, fallback, choice)
                deflections += int(missing.sum())
            avail[rows, choice] = False
            if spare is not None:
                spare[rows, choice] = False
            out_meta[rows, choice] = meta[rows, c] + HOP_ONE
            out_birth[rows, choice] = birth[rows, c]
        self.stats.deflections += deflections

        # --- Injection: responses first, then throttled requests --------
        # New flits only ever enter on healthy free links (``avail``);
        # injection is optional, so degraded links are never used here.
        has_free = avail.any(axis=1)
        resp_has = self.response_queue.nonempty
        req_has = self.request_queue.nonempty
        wanted = resp_has | req_has
        inject_resp = resp_has & has_free
        trying_req = req_has & has_free & ~inject_resp
        inject_req = trying_req & self.throttle.decide(trying_req)
        self._inject(np.flatnonzero(inject_resp), self.response_queue, cycle,
                     avail, out_meta, out_birth)
        self._inject(np.flatnonzero(inject_req), self.request_queue, cycle,
                     avail, out_meta, out_birth)
        self._record_starvation(wanted, inject_resp | inject_req, has_free)

        # --- Distributed-control congestion bit (§6.6) -------------------
        if self.congested_nodes.any():
            mark = self.congested_nodes[:, None] & (out_birth >= 0)
            out_meta[mark] |= CBIT_MASK

        # --- Send all granted flits across their links -------------------
        moving = out_birth >= 0
        idx = self._target_flat[moving]
        send_slot = (self._cursor + self.hop_latency - 1) % self.hop_latency
        self._ring_meta[send_slot, idx] = out_meta[moving]
        self._ring_birth[send_slot, idx] = out_birth[moving]
        self.stats.flit_hops += idx.size
        if self.tracer is not None and idx.size:
            hop_rows = np.nonzero(moving)[0]
            hm = out_meta[moving]
            self.tracer.record(
                EV_HOP, cycle, hop_rows, meta_src(hm), meta_dest(hm),
                meta_kind(hm), meta_seq(hm), meta_hops(hm),
            )

        if ej_parts:
            rows = np.concatenate([r for r, _ in ej_parts])
            m = np.concatenate([mm for _, mm in ej_parts])
            if self.tracer is not None:
                self.tracer.record(
                    EV_EJECT, cycle, rows, meta_src(m), rows,
                    meta_kind(m), meta_seq(m), meta_hops(m),
                )
            ejected = EjectedFlits(
                rows, meta_src(m), meta_kind(m), meta_seq(m),
                meta_cbit(m).astype(bool),
            )
        return ejected

    # ------------------------------------------------------------------
    def _inject(self, nodes, queue, cycle, avail, out_meta, out_birth) -> None:
        """Place one queued flit per node in *nodes* onto a free link."""
        if nodes.size == 0:
            return
        dest, kind, seq, stamp, _ = queue.take_flit(nodes)
        # Injected flits are routed like any other: productive XY port
        # first, the other productive direction second, then any free
        # link (they are the youngest flits, so they lost arbitration to
        # every in-flight flit already).
        free = avail[nodes]
        if self._dist is None:
            p0, p1 = self.topology.productive_ports(nodes, dest)
            k_idx = np.arange(nodes.size)
            ok0 = (p0 >= 0) & free[k_idx, np.where(p0 >= 0, p0, 0)]
            port = np.where(ok0, p0, -1)
            ok1 = (port < 0) & (p1 >= 0) & free[k_idx, np.where(p1 >= 0, p1, 0)]
            port = np.where(ok1, p1, port)
            port = np.where(port < 0, np.argmax(free, axis=1), port)
        else:
            d_here = self._dist[nodes, dest]
            d_next = self._dist[self._neighbor_safe[nodes], dest[:, None]]
            good = free & (d_next < d_here[:, None])
            port = np.where(
                good.any(axis=1), np.argmax(good, axis=1),
                np.argmax(free, axis=1),
            )
        avail[nodes, port] = False
        if self.tracer is not None:
            self.tracer.record(
                EV_INJECT, cycle, nodes, nodes, dest, kind, seq, 0
            )
        # The first traversal completes upon arrival at the neighbor.
        out_meta[nodes, port] = pack_meta(dest, nodes, kind, seq) + HOP_ONE
        out_birth[nodes, port] = cycle
        self.stats.injected_flits += nodes.size
        self.stats.injected_per_node[nodes] += 1
        self.injection_latency_sum += int((cycle - stamp).sum())
        self.injection_latency_count += nodes.size
