"""FLIT-BLESS bufferless deflection router model (§2.2, Fig 1).

Every cycle, each router:

1. receives at most one flit per incoming link (arrivals from the hop
   delay ring),
2. ejects up to ``eject_width`` flits destined to it (Oldest-First among
   locals; losers are deflected and retry next hop),
3. assigns output ports to the remaining flits in Oldest-First order —
   each flit takes its productive XY port if free, then the other
   productive direction, and is otherwise *deflected* to any free link
   (there is always one: a router has at least as many output links as
   flits to route),
4. injects at most one flit from the node's NI if an output link is
   still free — responses first (never throttled), then requests through
   the Algorithm-3 throttle gate.  A node that wanted to inject but did
   not counts as *starved* this cycle (§3.1).

The whole step is vectorized over nodes with flits in the packed
``(meta, birth)`` representation (:mod:`repro.network.flit`): the
per-cycle cost is a fixed number of numpy operations regardless of
network size, which is what makes 64x64 (4096-node) runs tractable in
Python.

The cycle itself lives in :class:`repro.network.engine.RouterEngine` +
:class:`~repro.network.engine.DeflectFlowControl`; this class is the
thin configuration pairing them (see DESIGN.md §S21).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.engine import (
    ARBITRATION_POLICIES as _ARBITRATION_REGISTRY,
    DeflectFlowControl,
    RouterEngine,
)

__all__ = ["ARBITRATION_POLICIES", "BlessNetwork"]

#: Arbitration policy names accepted by ``arbitration=`` (the engine's
#: registry is the source of truth; kept as a tuple for compatibility).
ARBITRATION_POLICIES = tuple(_ARBITRATION_REGISTRY)


class BlessNetwork(RouterEngine):
    """Bufferless 2D-mesh/torus network with deflection routing.

    Parameters
    ----------
    topology:
        A :class:`~repro.topology.Mesh2D` or :class:`~repro.topology.Torus2D`.
    hop_latency:
        Cycles per hop; Table 2's 2-cycle router + 1-cycle link gives the
        default of 3.  Links remain pipelined (1 flit/cycle each).
    eject_width:
        Flits a node can consume per cycle; BLESS baselines use 1.
    arbitration:
        ``"oldest_first"`` (paper baseline), or ``"youngest_first"`` /
        ``"random"`` for the arbitration ablation benchmark.
    """

    def __init__(
        self,
        topology,
        hop_latency: int = 3,
        eject_width: int = 1,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        arbitration: str = "oldest_first",
        rng: Optional[np.random.Generator] = None,
        fault_model=None,
    ):
        super().__init__(
            topology,
            DeflectFlowControl(eject_width=eject_width),
            hop_latency=hop_latency,
            queue_capacity=queue_capacity,
            starvation_window=starvation_window,
            arbitration=arbitration,
            rng=rng,
            fault_model=fault_model,
        )
