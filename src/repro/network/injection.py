"""Injection-side hardware models: starvation meter and throttle gate.

These mirror the paper's hardware (§6.5): a W-bit shift register with an
up/down counter measuring the windowed starvation rate sigma, and the
deterministic injection-throttling counter of Algorithm 3.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StarvationMeter", "InjectionThrottleGate"]


class StarvationMeter:
    """Windowed starvation-rate measurement (sigma, §3.1).

    ``sigma = (1/W) * sum over the last W cycles of starved(i)``, where a
    cycle is *starved* when the node wanted to inject a flit but did not
    (blocked by port contention or by the throttle gate, per Algorithm 3).
    Modeled exactly as the paper's W-bit shift register plus counter.
    """

    def __init__(self, num_nodes: int, window: int = 128):
        if window < 1:
            raise ValueError("starvation window must be positive")
        self.window = window
        self.num_nodes = num_nodes
        self._ring = np.zeros((num_nodes, window), dtype=bool)
        self._sum = np.zeros(num_nodes, dtype=np.int32)
        self._pos = 0
        self._cycles_seen = 0

    def update(self, starved: np.ndarray) -> None:
        """Shift in this cycle's starvation bits."""
        old = self._ring[:, self._pos]
        self._sum += starved.astype(np.int32) - old.astype(np.int32)
        self._ring[:, self._pos] = starved
        self._pos = (self._pos + 1) % self.window
        self._cycles_seen += 1

    def rate(self) -> np.ndarray:
        """Per-node starvation rate over the last ``W`` cycles, in [0, 1]."""
        denom = min(self.window, max(self._cycles_seen, 1))
        return self._sum / denom

    def storage_bits_per_node(self) -> int:
        """Hardware cost of the meter (shift register + counter), in bits."""
        counter_bits = int(np.ceil(np.log2(self.window + 1)))
        return self.window + counter_bits


class InjectionThrottleGate:
    """Deterministic injection throttling (Algorithm 3).

    Each node has a free-running counter advanced on every injection
    *attempt* (a cycle where the node tries to inject and an output link
    is free).  The attempt is blocked while the counter is below
    ``throttle_rate * MAX_COUNT``, so exactly a ``throttle_rate``
    fraction of attempts is blocked over each counter period.
    """

    MAX_COUNT = 128  # 7-bit counter, as in §6.5  # repro: c-mirror[THROTTLE_MAX]

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.counter = np.zeros(num_nodes, dtype=np.int32)
        self.rate = np.zeros(num_nodes, dtype=np.float64)

    def set_rates(self, rates: np.ndarray) -> None:
        """Install per-node throttling rates in [0, 1]."""
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != (self.num_nodes,):
            raise ValueError("rates must have one entry per node")
        if np.any((rates < 0) | (rates > 1)):
            raise ValueError("throttle rates must lie in [0, 1]")
        # In-place so observers holding the array (e.g. the native
        # backend's pointer table) see the update.
        self.rate[:] = rates

    def decide(self, trying: np.ndarray) -> np.ndarray:
        """Return the mask of nodes allowed to inject this cycle.

        *trying* marks nodes attempting an injection with a free output
        link available; only their counters advance (Algorithm 3).
        """
        allowed = np.zeros(self.num_nodes, dtype=bool)
        idx = np.flatnonzero(trying)
        if idx.size == 0:
            return allowed
        self.counter[idx] = (self.counter[idx] + 1) % self.MAX_COUNT
        threshold = self.rate[idx] * self.MAX_COUNT
        allowed[idx] = self.counter[idx] >= threshold
        return allowed

    def storage_bits_per_node(self) -> int:
        """Hardware cost of the gate (7-bit counter), in bits."""
        return int(np.ceil(np.log2(self.MAX_COUNT)))
