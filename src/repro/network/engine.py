"""Unified router engine: shared per-cycle stages + pluggable policies.

Every router model in this repo advances through the same per-cycle
stages over the packed ``(meta, birth)`` flit representation
(:mod:`repro.network.flit`):

1. **arrival** — flits land from the hop-delay ring (links stay
   pipelined at one flit per cycle regardless of ``hop_latency``),
2. **eject** — flits destined to the local node leave the network,
   arbitrated by age,
3. **allocate** — remaining flits compete for output ports,
4. **inject** — the NI admits new flits (responses first, requests
   through the Algorithm-3 throttle gate; blocked nodes count as
   starved, §3.1),
5. **send** — granted flits enter the ring toward their neighbors
   (congestion bits from the distributed controller are stamped here).

What *differs* between models is factored into two policy families:

- :class:`ArbitrationPolicy` totally orders competing flits
  (``oldest_first`` is the paper baseline; ``youngest_first`` and
  ``random`` serve the §6 arbitration ablations);
- :class:`FlowControl` decides what a router does with a flit it cannot
  forward productively: :class:`DeflectFlowControl` misroutes it
  (FLIT-BLESS, §2.2), :class:`CreditFlowControl` holds it in an input
  buffer behind credit-based backpressure (the buffered VC baseline,
  §6.3), and :class:`HybridFlowControl` buffers a small fraction of
  would-be-deflected flits in a per-router side buffer (MinBD-style,
  arXiv:2112.02516).

:class:`RouterEngine` owns the shared state (ring, NI queues, stats,
starvation meter, tracer hooks) and the stage helpers; a concrete
network (``BlessNetwork``, ``BufferedNetwork``, ``HybridNetwork``) is a
thin constructor pairing the engine with policy instances.  Adding a
router variant means writing one :class:`FlowControl` subclass — see
DESIGN.md §S21.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.network.base import EjectedFlits, NocModel
from repro.rng import child_rng
from repro.observability.tracer import EV_DEFLECT, EV_EJECT, EV_HOP, EV_INJECT
from repro.network.flit import (
    CBIT_MASK,
    HOP_ONE,
    meta_cbit,
    meta_dest,
    meta_hops,
    meta_kind,
    meta_seq,
    meta_src,
    pack_meta,
    priority_key,
    priority_key_into,
)
from repro.topology.mesh import NUM_PORTS

__all__ = [
    "ARBITRATION_POLICIES",
    "ScratchArena",
    "ArbitrationPolicy",
    "OldestFirst",
    "YoungestFirst",
    "RandomArbitration",
    "BufferBank",
    "FlowControl",
    "DeflectFlowControl",
    "CreditFlowControl",
    "HybridFlowControl",
    "RouterEngine",
]

_KEY_MAX = np.iinfo(np.int64).max  # repro: c-mirror[KEY_MAX]

#: Largest network that precomputes (n, n) productive-route tables.
_ROUTE_TABLE_MAX_NODES = 1024

# Legacy 4-port-mesh aliases.  The engine itself is port-count generic:
# per network, the NI input port and the eject output port are both
# ``topology.num_ports`` (the first index past the link ports).
NI_PORT = NUM_PORTS
EJECT_PORT = NUM_PORTS


# ----------------------------------------------------------------------
# Scratch arena
# ----------------------------------------------------------------------
class ScratchArena:
    """Named, preallocated per-cycle scratch buffers.

    The steady-state cycle must not allocate fresh numpy arrays for its
    working grids: every ``(nodes, ports)``-shaped temporary the flow
    controls rebuild each cycle lives here instead and is reused via
    ``out=``/``np.copyto``.  Buffers are keyed by name and allocated on
    first use, so each flow control only pays for the grids it touches.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict = {}

    def buf(self, name: str, shape, dtype) -> np.ndarray:
        """The named scratch buffer, allocating it on first request."""
        arr = self._bufs.get(name)
        if arr is None:
            arr = np.empty(shape, dtype=dtype)
            self._bufs[name] = arr
        return arr


# ----------------------------------------------------------------------
# Arbitration policies
# ----------------------------------------------------------------------
class ArbitrationPolicy:
    """Totally orders competing flits; the smallest key wins a conflict."""

    name = ""

    def keys(self, engine: "RouterEngine", birth, meta) -> np.ndarray:
        raise NotImplementedError

    def keys_into(self, engine: "RouterEngine", birth, meta, out, scratch):
        """Allocation-free :meth:`keys` into *out* (*scratch* is an
        int64 buffer of the same shape policies may clobber)."""
        out[:] = self.keys(engine, birth, meta)
        return out


class OldestFirst(ArbitrationPolicy):
    """The paper's baseline: age order, ties broken by source id."""

    name = "oldest_first"

    def keys(self, engine, birth, meta):
        return priority_key(birth, meta_src(meta))

    def keys_into(self, engine, birth, meta, out, scratch):
        meta_src(meta, out=scratch)
        return priority_key_into(birth, scratch, out)


class YoungestFirst(ArbitrationPolicy):
    """Inverted age order (§6 arbitration ablation)."""

    name = "youngest_first"

    def keys(self, engine, birth, meta):
        return -priority_key(birth, meta_src(meta))

    def keys_into(self, engine, birth, meta, out, scratch):
        meta_src(meta, out=scratch)
        priority_key_into(birth, scratch, out)
        return np.negative(out, out=out)


class RandomArbitration(ArbitrationPolicy):
    """Uniform random keys drawn fresh every cycle (§6 ablation)."""

    name = "random"

    def keys(self, engine, birth, meta):
        return engine._rng.integers(0, _KEY_MAX, size=birth.shape, dtype=np.int64)

    def keys_into(self, engine, birth, meta, out, scratch):
        # The generator draw itself allocates; keep the call identical
        # (same size, dtype, bounds) so results match the legacy path.
        out[:] = engine._rng.integers(
            0, _KEY_MAX, size=birth.shape, dtype=np.int64
        )
        return out


ARBITRATION_POLICIES = {
    policy.name: policy
    for policy in (OldestFirst, YoungestFirst, RandomArbitration)
}


# ----------------------------------------------------------------------
# Buffer storage (credit + hybrid flow control)
# ----------------------------------------------------------------------
class BufferBank:
    """Fixed-capacity FIFO of packed flits per (node, input port)."""

    def __init__(self, num_nodes: int, num_ports: int, capacity: int):
        self.capacity = capacity
        shape = (num_nodes, num_ports, capacity)
        self.meta = np.zeros(shape, dtype=np.int64)
        self.birth = np.zeros(shape, dtype=np.int64)
        self.head = np.zeros((num_nodes, num_ports), dtype=np.int32)
        self.count = np.zeros((num_nodes, num_ports), dtype=np.int32)
        # Flat-gather machinery for the allocation-free heads_into path.
        self._flat_base = (
            np.arange(num_nodes * num_ports, dtype=np.int64) * capacity
        )
        self._flat_idx = np.empty(num_nodes * num_ports, dtype=np.int64)

    def occupancy(self) -> int:
        return int(self.count.sum())

    def push(self, nodes, ports, meta, birth) -> None:
        """Append flits; callers guarantee space and unique (node, port)."""
        slot = (self.head[nodes, ports] + self.count[nodes, ports]) % self.capacity
        self.meta[nodes, ports, slot] = meta
        self.birth[nodes, ports, slot] = birth
        self.count[nodes, ports] += 1

    def heads(self):
        """Head-of-queue view per (node, port): ``(valid, meta, birth)``."""
        idx = self.head[:, :, None]
        meta = np.take_along_axis(self.meta, idx, axis=2)[:, :, 0]
        birth = np.take_along_axis(self.birth, idx, axis=2)[:, :, 0]
        return self.count > 0, meta, birth

    def heads_into(self, valid, meta, birth):
        """Allocation-free :meth:`heads` into preallocated buffers."""
        np.add(self._flat_base, self.head.reshape(-1), out=self._flat_idx)
        np.take(self.meta.reshape(-1), self._flat_idx, out=meta.reshape(-1))
        np.take(self.birth.reshape(-1), self._flat_idx, out=birth.reshape(-1))
        np.greater(self.count, 0, out=valid)
        return valid, meta, birth

    def pop(self, nodes, ports):
        slot = self.head[nodes, ports]
        meta = self.meta[nodes, ports, slot].copy()
        birth = self.birth[nodes, ports, slot].copy()
        self.head[nodes, ports] = (slot + 1) % self.capacity
        self.count[nodes, ports] -= 1
        return meta, birth

    def occupied_mask(self) -> np.ndarray:
        """Boolean mask of live slots (shape ``(nodes, ports, capacity)``)."""
        offsets = np.arange(self.capacity)
        return (
            (offsets[None, None, :] - self.head[:, :, None]) % self.capacity
            < self.count[:, :, None]
        )

    def view(self):
        """``(meta, birth)`` flat arrays of every stored flit."""
        occupied = self.occupied_mask()
        return self.meta[occupied], self.birth[occupied]

    def rewrite_dest(self, old: int, new: int) -> int:
        """Re-address stored flits destined *old* to *new* (chaos remap).

        Destination occupies the low meta bits, so an additive rewrite
        preserves every other field.  Returns the number rewritten.
        """
        mask = self.occupied_mask() & (meta_dest(self.meta) == old)
        hits = int(mask.sum())
        if hits:
            self.meta[mask] += new - old
        return hits


def _refresh_fault_routing(net: "RouterEngine") -> None:
    """(Re)derive healthy-graph routing tables from the fault model.

    Called at attach time and again after every chaos topology
    transition: with permanent faults in force the engine routes by
    healthy-graph distance (``net._dist``); with none it reverts to the
    fault-free XY fast path (``net._dist is None``).
    """
    net._dist = None
    fault_model = net.fault_model
    if fault_model is not None and (
        fault_model.num_failed_links
        or fault_model.num_failed_routers
        or getattr(fault_model, "any_quiescing", False)
    ):
        net._dist = fault_model.healthy_distance
        if net._neighbor_safe is None:
            net._neighbor_safe = np.where(
                net.topology.link_exists,
                net.topology.neighbor.astype(np.int64), 0,
            )


# ----------------------------------------------------------------------
# Flow-control policies
# ----------------------------------------------------------------------
class FlowControl:
    """What a router does between arrival and send.

    A flow control implements one simulated cycle in :meth:`step` out of
    the engine's stage helpers, and owns any in-router storage
    (:meth:`held_flits` / :meth:`held_view` feed the conservation and
    age guardrails).  :meth:`attach` allocates that storage *on the
    engine* so external observers (tests, invariant checker) keep their
    stable attribute names (``buffers``, ``reserved``, ``eject_width``).
    """

    def attach(self, net: "RouterEngine") -> None:
        """Allocate per-network state; called once from the engine."""

    def held_flits(self, net: "RouterEngine") -> int:
        """Flits stored inside routers (not on links)."""
        return 0

    def held_view(self, net: "RouterEngine"):
        """``(meta, birth)`` of stored flits, or ``None`` when stateless."""
        return None

    def held_at(self, net: "RouterEngine", node: int) -> int:
        """Flits stored inside router *node* (chaos drain checks)."""
        return 0

    def rewrite_dest(self, net: "RouterEngine", old: int, new: int) -> int:
        """Re-address stored flits destined *old* to *new*; returns count."""
        return 0

    def on_topology_change(self, net: "RouterEngine") -> None:
        """Refresh routing state after a mid-run topology change (chaos)."""

    def step(self, net: "RouterEngine", cycle: int) -> EjectedFlits:
        raise NotImplementedError


class DeflectFlowControl(FlowControl):
    """FLIT-BLESS (§2.2): never hold a flit — misroute it instead.

    Every arrival is ejected, forwarded productively, or deflected to
    *some* free link in the same cycle; a router always has at least as
    many output links as routed flits, so the network is lossless with
    zero in-router storage.
    """

    def __init__(self, eject_width: int = 1):
        if eject_width < 1 or eject_width > NUM_PORTS:
            raise ValueError("eject_width must be between 1 and 4")
        self.eject_width = eject_width

    def attach(self, net: "RouterEngine") -> None:
        net.eject_width = self.eject_width
        n, p = net.num_nodes, net.num_ports
        # With permanent faults, XY-productive can point at a dead link
        # and the oldest flit would deflect forever (livelock).  Route by
        # healthy-graph distance instead: a port is productive iff it
        # strictly decreases the surviving-topology distance to dest.
        net._dist = None
        net._neighbor_safe = None
        _refresh_fault_routing(net)
        # Scratch output arrays, reused every cycle.
        net._out_meta = np.zeros((n, p), dtype=np.int64)
        net._out_birth = np.full((n, p), -1, dtype=np.int64)
        net._avail = np.zeros((n, p), dtype=bool)
        net._spare = np.zeros((n, p), dtype=bool)
        # Per-cycle working grids out of the shared scratch arena.
        arena = net.arena
        self._sc_meta = arena.buf("grid_meta", (n, p), np.int64)
        self._sc_birth = arena.buf("grid_birth", (n, p), np.int64)
        self._sc_valid = arena.buf("grid_valid", (n, p), np.bool_)
        self._sc_invalid = arena.buf("grid_invalid", (n, p), np.bool_)
        self._sc_dest = arena.buf("grid_dest", (n, p), np.int64)
        self._sc_key = arena.buf("grid_key", (n, p), np.int64)
        self._sc_tmp = arena.buf("grid_tmp", (n, p), np.int64)
        self._sc_local = arena.buf("grid_local", (n, p), np.bool_)
        self._sc_local_key = arena.buf("grid_local_key", (n, p), np.int64)
        self._sc_idx = arena.buf("grid_idx", (n, p), np.int64)
        self._sc_p0 = arena.buf("grid_p0", (n, p), np.int8)
        self._sc_p1 = arena.buf("grid_p1", (n, p), np.int8)
        self._sc_col = arena.buf("col", (n,), np.intp)

    def on_topology_change(self, net: "RouterEngine") -> None:
        _refresh_fault_routing(net)

    # -- hybrid extension points ---------------------------------------
    def redeem(self, net, cycle, meta, birth) -> None:
        """Re-enter stored flits into the arrival grid (hybrid only)."""

    def begin_allocation(self, net) -> None:
        """Reset per-cycle allocation state (hybrid capture budget)."""

    def resolve_blocked(self, net, cycle, meta, birth, rows, c, choice,
                        missing, free, spare):
        """Handle flits with no productive free port: deflect them all.

        Returns the (possibly filtered) ``rows, c, choice`` to grant;
        the hybrid subclass removes captured flits from the grant set.
        """
        if net.tracer is not None:
            md = meta[rows, c][missing]
            net.tracer.record(
                EV_DEFLECT, cycle, rows[missing], meta_src(md),
                meta_dest(md), meta_kind(md), meta_seq(md), meta_hops(md),
            )
        # Deflect to the first free link; one always exists because a
        # router has >= as many healthy links as routed flits (faults
        # fail both directions of a link together).
        fallback = np.argmax(free, axis=1)
        if spare is not None:
            no_healthy = ~free.any(axis=1)
            if no_healthy.any():
                fallback = np.where(
                    no_healthy, np.argmax(spare[rows], axis=1), fallback
                )
        choice = np.where(missing, fallback, choice)
        net.stats.deflections += int(missing.sum())
        return rows, c, choice

    # ------------------------------------------------------------------
    def step(self, net: "RouterEngine", cycle: int) -> EjectedFlits:
        n, p = net.num_nodes, net.num_ports

        # --- Arrivals (copied into the preallocated arena grids) ---------
        slot_meta, slot_birth = net.arrival_slot()
        meta, birth = self._sc_meta, self._sc_birth
        np.copyto(meta, slot_meta.reshape(n, p))
        np.copyto(birth, slot_birth.reshape(n, p))
        net.retire_arrivals()
        self.redeem(net, cycle, meta, birth)

        valid = np.greater_equal(birth, 0, out=self._sc_valid)
        dest = meta_dest(meta, out=self._sc_dest)
        key = net.arbitration_keys_into(birth, meta, self._sc_key, self._sc_tmp)
        np.copyto(
            key, _KEY_MAX,
            where=np.logical_not(valid, out=self._sc_invalid),
        )

        # --- Ejection: up to eject_width oldest local flits per node ----
        local = np.equal(dest, net._node_col, out=self._sc_local)
        local &= valid
        ejected = EjectedFlits.empty()
        ej_parts = []
        if local.any():
            local_key = self._sc_local_key
            local_key.fill(_KEY_MAX)
            np.copyto(local_key, key, where=local)
            col = self._sc_col
            for _ in range(self.eject_width):
                np.argmin(local_key, axis=1, out=col)
                rows = np.flatnonzero(local_key[net._node_ids, col] != _KEY_MAX)
                if rows.size == 0:
                    break
                cols = col[rows]
                m = meta[rows, cols]
                ej_parts.append((rows, m))
                net.account_ejections(cycle, rows, m, cycle - birth[rows, cols])
                valid[rows, cols] = False
                local_key[rows, cols] = _KEY_MAX
                key[rows, cols] = _KEY_MAX

        # --- Output-port allocation, rank by rank ------------------------
        # Productive ports for every arrival, computed once.
        if net._dist is None:
            # Fault-free: the topology's productive-port preferences (XY
            # on the grids, precomputed shortest-hop tables on graphs),
            # gathered from the engine's route tables when present.
            if net._p0_flat is not None:
                net.productive_into(
                    dest, self._sc_idx, self._sc_p0, self._sc_p1
                )
                p0, p1 = self._sc_p0, self._sc_p1
            else:
                p0, p1 = net.topology.productive_ports(net._node_col, dest)
            productive = None
        else:
            # Permanent faults: a port is productive iff its neighbor is
            # strictly closer to dest on the healthy graph.
            p0 = p1 = None
            d_here = net._dist[net._node_col, dest]
            d_next = net._dist[net._neighbor_safe[:, None, :], dest[:, :, None]]
            productive = net.link_up[:, None, :] & (d_next < d_here[:, :, None])

        # ``avail`` marks healthy free output links (True = grantable);
        # ``spare`` marks transiently faulted links kept as a last-resort
        # fallback — a bufferless router cannot hold a flit back, so when
        # every healthy port is taken the flit crosses a degraded link
        # rather than being dropped (losslessness is a hard invariant).
        avail = net._avail
        np.copyto(avail, net.link_up)
        spare = None
        quiesce = None
        if net.fault_model is not None:
            t_down = net.fault_model.transient_down(cycle)
            if t_down is not None:
                spare = net._spare
                np.copyto(spare, avail & t_down)
                avail &= ~t_down
                # Chaos-quiescing links (being drained ahead of a hard
                # down) stay *preferred* for their last hop: a flit
                # destined to the draining router must still reach it,
                # or in-flight traffic to that router livelocks while
                # the drain waits on it — only through-traffic is kept
                # off the link.  Random transient noise gets no such
                # exception (those links are unreliable for everyone).
                q_mask = getattr(net.fault_model, "quiescing", None)
                if q_mask is not None and q_mask.any():
                    quiesce = spare & q_mask
        out_meta, out_birth = net._out_meta, net._out_birth
        out_birth.fill(-1)
        # Stable sort: rows are mostly tied _KEY_MAX sentinels, and the
        # default introsort's tie order is numpy-version-dependent
        # (DET004).  Live keys are unique, so ranks are unchanged.
        order = np.argsort(key, axis=1, kind="stable")
        self.begin_allocation(net)
        for rank in range(p):
            cols = order[:, rank]
            rows = np.flatnonzero(key[net._node_ids, cols] != _KEY_MAX)
            if rows.size == 0:
                break  # ranks are sorted: later ranks are empty too
            c = cols[rows]
            free = avail[rows]
            if quiesce is not None:
                # Last-hop exception: a quiescing link counts as free
                # for flits addressed to its far-end router.
                free = free | (
                    quiesce[rows]
                    & (net.topology.neighbor[rows] == dest[rows, c][:, None])
                )
            if productive is None:
                pp0 = p0[rows, c]
                pp1 = p1[rows, c]
                k_idx = np.arange(rows.size)
                ok0 = (pp0 >= 0) & free[k_idx, np.where(pp0 >= 0, pp0, 0)]
                choice = np.where(ok0, pp0, -1)
                ok1 = (
                    (choice < 0) & (pp1 >= 0)
                    & free[k_idx, np.where(pp1 >= 0, pp1, 0)]
                )
                choice = np.where(ok1, pp1, choice)
            else:
                good = free & productive[rows, c]
                choice = np.where(good.any(axis=1), np.argmax(good, axis=1), -1)
            missing = choice < 0
            if missing.any():
                rows, c, choice = self.resolve_blocked(
                    net, cycle, meta, birth, rows, c, choice, missing,
                    free, spare,
                )
            avail[rows, choice] = False
            if spare is not None:
                spare[rows, choice] = False
            if quiesce is not None:
                quiesce[rows, choice] = False
            out_meta[rows, choice] = meta[rows, c] + HOP_ONE
            out_birth[rows, choice] = birth[rows, c]

        # --- Injection: responses first, then throttled requests --------
        # New flits only ever enter on healthy free links (``avail``);
        # injection is optional, so degraded links are never used here.
        net.injection_stage(
            cycle, avail.any(axis=1),
            lambda nodes, queue, cyc: self._place(
                net, nodes, queue, cyc, avail, out_meta, out_birth
            ),
        )

        # --- Congestion bit + send ---------------------------------------
        net.mark_congestion(out_meta, out_birth)
        net.send_grid(cycle, out_meta, out_birth)

        if ej_parts:
            rows = np.concatenate([r for r, _ in ej_parts])
            m = np.concatenate([mm for _, mm in ej_parts])
            net.trace_ejections(cycle, rows, m)
            ejected = net.make_ejected(rows, m)
        return ejected

    # ------------------------------------------------------------------
    def _place(self, net, nodes, queue, cycle, avail, out_meta, out_birth):
        """Place one queued flit per node in *nodes* onto a free link."""
        if nodes.size == 0:
            return
        dest, kind, seq, stamp, _ = queue.take_flit(nodes)
        # Injected flits are routed like any other: productive XY port
        # first, the other productive direction second, then any free
        # link (they are the youngest flits, so they lost arbitration to
        # every in-flight flit already).
        free = avail[nodes]
        if net._dist is None:
            if net._p0_table is not None:
                p0 = net._p0_table[nodes, dest]
                p1 = net._p1_table[nodes, dest]
            else:
                p0, p1 = net.topology.productive_ports(nodes, dest)
            k_idx = np.arange(nodes.size)
            ok0 = (p0 >= 0) & free[k_idx, np.where(p0 >= 0, p0, 0)]
            port = np.where(ok0, p0, -1)
            ok1 = (port < 0) & (p1 >= 0) & free[k_idx, np.where(p1 >= 0, p1, 0)]
            port = np.where(ok1, p1, port)
            port = np.where(port < 0, np.argmax(free, axis=1), port)
        else:
            d_here = net._dist[nodes, dest]
            d_next = net._dist[net._neighbor_safe[nodes], dest[:, None]]
            good = free & (d_next < d_here[:, None])
            port = np.where(
                good.any(axis=1), np.argmax(good, axis=1),
                np.argmax(free, axis=1),
            )
        avail[nodes, port] = False
        if net.tracer is not None:
            net.tracer.record(
                EV_INJECT, cycle, nodes, nodes, dest, kind, seq, 0
            )
        # The first traversal completes upon arrival at the neighbor.
        out_meta[nodes, port] = pack_meta(dest, nodes, kind, seq) + HOP_ONE
        out_birth[nodes, port] = cycle
        net.stats.injected_flits += nodes.size
        net.stats.injected_per_node[nodes] += 1
        net.injection_latency_sum += int((cycle - stamp).sum())
        net.injection_latency_count += nodes.size


class CreditFlowControl(FlowControl):
    """Input-buffered XY routing with credit backpressure (§6.3).

    Each router input (four links + the NI injection port) has a
    ``buffer_capacity``-flit FIFO; a flit moves only when the downstream
    input buffer has space (credits account for flits already on the
    wire), so the network is lossless with zero misrouting.
    """

    def __init__(self, buffer_capacity: int = 16):
        if buffer_capacity < 1:
            raise ValueError("buffer capacity must be positive")
        self.buffer_capacity = buffer_capacity

    def attach(self, net: "RouterEngine") -> None:
        net.buffer_capacity = self.buffer_capacity
        # One FIFO per link input plus the NI injection port (index
        # ``num_ports``, also the eject "output" id).
        net.buffers = BufferBank(
            net.num_nodes, net.num_ports + 1, self.buffer_capacity
        )
        # Flits in flight toward each link-input buffer, for credit checks.
        net.reserved = np.zeros((net.num_nodes, net.num_ports), dtype=np.int32)
        # Static permanent faults keep plain XY: a flit aimed across a
        # dead link parks in front of it and the progress watchdog
        # reports the deadlock (buffered networks cannot misroute, and
        # that failure mode is part of the §6.3 comparison).  Only a
        # *chaos* topology transition (on_topology_change) switches to
        # healthy-graph distance routing — mid-run losslessness demands
        # that every in-flight flit can still make progress.
        net._dist = None
        net._neighbor_safe = None
        # Per-cycle head-of-queue grids out of the shared scratch arena.
        n, pp = net.num_nodes, net.num_ports + 1
        arena = net.arena
        self._sc_h_valid = arena.buf("h_valid", (n, pp), np.bool_)
        self._sc_h_invalid = arena.buf("h_invalid", (n, pp), np.bool_)
        self._sc_h_meta = arena.buf("h_meta", (n, pp), np.int64)
        self._sc_h_birth = arena.buf("h_birth", (n, pp), np.int64)
        self._sc_h_dest = arena.buf("h_dest", (n, pp), np.int64)
        self._sc_h_key = arena.buf("h_key", (n, pp), np.int64)
        self._sc_h_tmp = arena.buf("h_tmp", (n, pp), np.int64)
        self._sc_h_out = arena.buf("h_out", (n, pp), np.int64)
        self._sc_h_idx = arena.buf("h_idx", (n, pp), np.int64)
        self._sc_h_p0 = arena.buf("h_p0", (n, pp), np.int8)
        self._sc_pkey = arena.buf("h_pkey", (n, pp), np.int64)
        self._sc_col = arena.buf("col", (n,), np.intp)

    def held_flits(self, net) -> int:
        return net.buffers.occupancy()

    def held_view(self, net):
        return net.buffers.view()

    def held_at(self, net, node: int) -> int:
        return int(net.buffers.count[node].sum())

    def rewrite_dest(self, net, old: int, new: int) -> int:
        return net.buffers.rewrite_dest(old, new)

    def on_topology_change(self, net) -> None:
        _refresh_fault_routing(net)

    # ------------------------------------------------------------------
    def step(self, net: "RouterEngine", cycle: int) -> EjectedFlits:
        n, p = net.num_nodes, net.num_ports
        eject_port = p  # local delivery: first id past the link ports

        # --- Link arrivals drain into the input buffers -----------------
        slot_meta, slot_birth = net.arrival_slot()
        arr_birth = slot_birth.reshape(n, p)
        arr_rows, arr_ports = np.nonzero(arr_birth >= 0)
        if arr_rows.size:
            arr_meta = slot_meta.reshape(n, p)
            net.buffers.push(
                arr_rows, arr_ports,
                arr_meta[arr_rows, arr_ports], arr_birth[arr_rows, arr_ports],
            )
            net.reserved[arr_rows, arr_ports] -= 1
            net.stats.buffer_writes += arr_rows.size
        net.retire_arrivals()

        # --- Route computation for every head-of-queue flit -------------
        h_valid, h_meta, h_birth = net.buffers.heads_into(
            self._sc_h_valid, self._sc_h_meta, self._sc_h_birth
        )
        h_dest = meta_dest(h_meta, out=self._sc_h_dest)
        h_key = net.arbitration_keys_into(
            h_birth, h_meta, self._sc_h_key, self._sc_h_tmp
        )
        np.copyto(
            h_key, _KEY_MAX,
            where=np.logical_not(h_valid, out=self._sc_h_invalid),
        )
        if net._dist is None:
            # Fault-free: the topology's deterministic primary port (XY
            # on the grids — deadlock-free; shortest-hop on graphs),
            # gathered from the engine's route tables when present.
            if net._p0_flat is not None:
                net.productive_into(h_dest, self._sc_h_idx, self._sc_h_p0)
                h_p0 = self._sc_h_p0
            else:
                h_p0, _ = net.topology.productive_ports(net._node_col, h_dest)
            h_out = self._sc_h_out
            np.copyto(h_out, h_p0)
            np.copyto(
                h_out, eject_port,
                where=np.less(h_p0, 0, out=self._sc_h_invalid),
            )
        else:
            # Permanent faults: minimal routing on the healthy graph —
            # first port whose neighbor is strictly closer to dest.  A
            # flit with no such port (its dest drained away mid-rewrite)
            # waits; chaos re-addresses it before the link disappears.
            d_here = net._dist[net._node_col, h_dest]
            d_next = net._dist[net._neighbor_safe[:, None, :], h_dest[:, :, None]]
            good = net.link_up[:, None, :] & (d_next < d_here[:, :, None])
            h_out = np.where(
                h_dest == net._node_col,
                eject_port,
                np.where(good.any(axis=2), np.argmax(good, axis=2), -1),
            )

        # --- Output arbitration: one winner per output port --------------
        neighbor = net.topology.neighbor
        reverse = net.topology.reverse_port
        ejected = EjectedFlits.empty()
        mark = net.congested_nodes.any()
        # Faulted links cannot be granted; the flit stays buffered (XY
        # routing has no alternative path, unlike deflection routing).
        link_ok = net.link_up
        t_down = None
        quiesce = None
        if net.fault_model is not None:
            t_down = net.fault_model.transient_down(cycle)
            if t_down is not None:
                # Chaos-quiescing links still carry their last-hop
                # traffic (same exception as the deflection engine):
                # without it, a buffered flit destined to a draining
                # router waits at a neighbor forever and the drain
                # deadlocks against its own quiesce.
                q_mask = getattr(net.fault_model, "quiescing", None)
                if q_mask is not None and q_mask.any():
                    quiesce = q_mask
        pkey, col = self._sc_pkey, self._sc_col
        want = self._sc_h_invalid  # reuse: h_key masking is done
        for out_port in range(p + 1):
            np.equal(h_out, out_port, out=want)
            pkey.fill(_KEY_MAX)
            np.copyto(pkey, h_key, where=want)
            np.argmin(pkey, axis=1, out=col)
            rows = np.flatnonzero(pkey[net._node_ids, col] != _KEY_MAX)
            if rows.size == 0:
                continue
            in_ports = col[rows]
            if out_port == eject_port:
                meta, birth = net.buffers.pop(rows, in_ports)
                net.stats.buffer_reads += rows.size
                net.account_ejections(cycle, rows, meta, cycle - birth)
                net.trace_ejections(cycle, rows, meta)
                ejected = net.make_ejected(rows, meta)
                continue
            # Credit check: downstream input buffer must have space for
            # everything already there plus flits still on the wire; the
            # link itself must also be healthy this cycle.
            down = neighbor[rows, out_port].astype(np.int64)
            down_port = reverse[rows, out_port].astype(np.int64)
            space = (
                net.buffers.count[down, down_port]
                + net.reserved[down, down_port]
                < self.buffer_capacity
            )
            space &= link_ok[rows, out_port]
            if t_down is not None:
                blocked = t_down[rows, out_port]
                if quiesce is not None:
                    blocked = blocked & ~(
                        quiesce[rows, out_port]
                        & (h_dest[rows, in_ports] == down)
                    )
                space &= ~blocked
            rows, in_ports = rows[space], in_ports[space]
            down, down_port = down[space], down_port[space]
            if rows.size == 0:
                continue
            meta, birth = net.buffers.pop(rows, in_ports)
            net.stats.buffer_reads += rows.size
            meta = meta + HOP_ONE
            if mark:
                meta[net.congested_nodes[rows]] |= CBIT_MASK
            idx = down * p + down_port
            # Distinct directed links per (down, down_port) pair, so the
            # fancy-index writes and the credit increment never collide.
            slot = net.link_send_slot(net._lat_out[rows, out_port])
            net._ring_meta[slot, idx] = meta
            net._ring_birth[slot, idx] = birth
            net.reserved[down, down_port] += 1
            net.stats.flit_hops += rows.size
            if net.tracer is not None:
                net.tracer.record(
                    EV_HOP, cycle, rows, meta_src(meta), meta_dest(meta),
                    meta_kind(meta), meta_seq(meta), meta_hops(meta),
                )

        # --- Injection through the NI input buffer -----------------------
        ni_space = net.buffers.count[:, p] < self.buffer_capacity
        net.injection_stage(
            cycle, ni_space,
            lambda nodes, queue, cyc: self._place(net, nodes, queue, cyc),
        )
        return ejected

    # ------------------------------------------------------------------
    def _place(self, net, nodes, queue, cycle):
        if nodes.size == 0:
            return
        dest, kind, seq, _stamp, _ = queue.take_flit(nodes)
        if net.tracer is not None:
            net.tracer.record(
                EV_INJECT, cycle, nodes, nodes, dest, kind, seq, 0
            )
        ports = np.full(nodes.shape, net.num_ports, dtype=np.int64)
        net.buffers.push(
            nodes, ports,
            pack_meta(dest, nodes, kind, seq),
            np.full(nodes.shape, cycle, dtype=np.int64),
        )
        net.stats.buffer_writes += nodes.size
        net.stats.injected_flits += nodes.size
        net.stats.injected_per_node[nodes] += 1


class HybridFlowControl(DeflectFlowControl):
    """MinBD-style deflection + small side buffer (arXiv:2112.02516).

    Routes like FLIT-BLESS, but each router also has one small
    ``side_buffer_capacity``-flit FIFO.  Per cycle it may *capture* one
    flit that would otherwise deflect (buffer-eject width 1) and
    *redeem* one stored flit back into a free arrival slot, where it
    competes like any other arrival.  Captured flits neither traverse a
    link nor count as deflected — the side buffer absorbs exactly the
    misrouting that makes bufferless deflection expensive at load, with
    a fraction of the buffered baseline's storage.
    """

    def __init__(self, eject_width: int = 1, side_buffer_capacity: int = 4):
        super().__init__(eject_width)
        if side_buffer_capacity < 1:
            raise ValueError("side buffer capacity must be positive")
        self.side_buffer_capacity = side_buffer_capacity

    def attach(self, net: "RouterEngine") -> None:
        super().attach(net)
        net.side_buffer_capacity = self.side_buffer_capacity
        net.side_buffers = BufferBank(net.num_nodes, 1, self.side_buffer_capacity)
        self._can_capture = np.zeros(net.num_nodes, dtype=bool)

    def held_flits(self, net) -> int:
        return net.side_buffers.occupancy()

    def held_view(self, net):
        return net.side_buffers.view()

    def held_at(self, net, node: int) -> int:
        return int(net.side_buffers.count[node, 0])

    def rewrite_dest(self, net, old: int, new: int) -> int:
        return net.side_buffers.rewrite_dest(old, new)

    # ------------------------------------------------------------------
    def redeem(self, net, cycle, meta, birth) -> None:
        """Move one stored flit per node into a free arrival slot."""
        stored = net.side_buffers.count[:, 0] > 0
        if not stored.any():
            return
        empty = birth < 0
        nodes = np.flatnonzero(stored & empty.any(axis=1))
        if nodes.size == 0:
            return
        ports = np.argmax(empty[nodes], axis=1)
        m, b = net.side_buffers.pop(nodes, np.zeros(nodes.size, dtype=np.int64))
        meta[nodes, ports] = m
        birth[nodes, ports] = b
        net.stats.buffer_reads += nodes.size

    def begin_allocation(self, net) -> None:
        # Capture budget: at most one flit per router per cycle, and
        # only while the side buffer has space.
        np.less(
            net.side_buffers.count[:, 0], self.side_buffer_capacity,
            out=self._can_capture,
        )

    def resolve_blocked(self, net, cycle, meta, birth, rows, c, choice,
                        missing, free, spare):
        """Capture one would-be-deflected flit per node, deflect the rest."""
        cap = missing & self._can_capture[rows]
        if cap.any():
            taken = rows[cap]
            self._can_capture[taken] = False
            net.side_buffers.push(
                taken, np.zeros(taken.size, dtype=np.int64),
                meta[rows, c][cap], birth[rows, c][cap],
            )
            net.stats.buffer_writes += taken.size
            keep = ~cap
            rows, c, choice = rows[keep], c[keep], choice[keep]
            missing, free = missing[keep], free[keep]
            if not missing.any():
                return rows, c, choice
        return super().resolve_blocked(
            net, cycle, meta, birth, rows, c, choice, missing, free, spare
        )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class RouterEngine(NocModel):
    """Shared router machinery, specialized by policy objects.

    Owns the hop-delay ring (flits leaving at cycle *t* arrive
    ``hop_latency`` cycles later), the arbitration policy, and the
    stage helpers every flow control composes its cycle from.
    """

    def __init__(
        self,
        topology,
        flow: FlowControl,
        hop_latency: int = 3,
        queue_capacity: int = 64,
        starvation_window: int = 128,
        arbitration: str = "oldest_first",
        rng: Optional[np.random.Generator] = None,
        fault_model=None,
    ):
        super().__init__(topology, queue_capacity, starvation_window, fault_model)
        if arbitration not in ARBITRATION_POLICIES:
            raise ValueError(f"unknown arbitration policy: {arbitration!r}")
        if hop_latency < 1:
            raise ValueError("hop latency must be at least 1 cycle")
        self.hop_latency = hop_latency
        self.arbitration = arbitration
        self._arb = ARBITRATION_POLICIES[arbitration]()
        # Default-seed fallback for standalone construction; the
        # simulator passes its own "arbitration" stream, which this
        # label deliberately mirrors.
        self._rng = rng if rng is not None else child_rng(0, "arbitration")  # repro: noqa[RNG001]

        n, p = self.num_nodes, topology.num_ports
        self.num_ports = p
        # Per-(node, out port) hop latency: router pipeline plus that
        # link's wire cycles.  Grid topologies have uniform unit wires;
        # express/chiplet layouts stretch their long links.  The ring is
        # as deep as the slowest link; a flit entering a link with hop
        # latency L is written L-1 slots ahead of the arrival cursor, so
        # every row still retires all its flits on its arrival cycle.
        extra = topology.link_latency.astype(np.int64) - 1
        self._lat_out = np.where(topology.link_exists, hop_latency + extra,
                                 hop_latency)
        self._ring_depth = int(self._lat_out.max())
        self._uniform_latency = bool(
            (self._lat_out == hop_latency).all()
        )
        self._ring_meta = np.zeros((self._ring_depth, n * p), dtype=np.int64)
        self._ring_birth = np.full((self._ring_depth, n * p), -1, dtype=np.int64)
        self._cursor = 0
        # Static scatter map: flat arrival slot (neighbor, reverse port)
        # reached through each (node, out port).
        neighbor = topology.neighbor.astype(np.int64)
        rev = topology.reverse_port.astype(np.int64)
        self._target_flat = np.where(
            topology.link_exists, neighbor * p + rev, -1
        )
        self._node_ids = np.arange(n, dtype=np.int64)
        self._node_col = self._node_ids[:, None]
        # Scratch arena: every per-cycle working grid is preallocated
        # here and reused via out=/copyto, so the steady-state cycle
        # performs no numpy array allocations for its hot buffers.
        self.arena = ScratchArena()
        self._sc_moving = self.arena.buf("send_moving", (n, p), np.bool_)
        # Fault-free productive-port lookup tables ((n, n) int8): one
        # flat gather per cycle replaces the closed-form route math.
        # Bounded so giant topologies don't pay O(n^2) memory; beyond
        # the bound the engine falls back to computing routes per cycle.
        self._p0_table = self._p1_table = None
        self._p0_flat = self._p1_flat = None
        self._row_base_col = None
        if n <= _ROUTE_TABLE_MAX_NODES:
            t0, t1 = topology.productive_ports(
                self._node_ids[:, None], self._node_ids[None, :]
            )
            self._p0_table = np.ascontiguousarray(t0, dtype=np.int8)
            self._p1_table = np.ascontiguousarray(t1, dtype=np.int8)
            self._p0_flat = self._p0_table.reshape(-1)
            self._p1_flat = self._p1_table.reshape(-1)
            self._row_base_col = (self._node_ids * n)[:, None]
        # Injection-queueing latency statistics (time from enqueue at the
        # NI to entering the network), the paper's "injection latency";
        # only accumulated by flow controls that inject straight onto
        # links (buffered models charge queueing to in-network latency).
        self.injection_latency_sum = 0
        self.injection_latency_count = 0
        self.flow = flow
        flow.attach(self)

    # ------------------------------------------------------------------
    # NocModel interface
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> EjectedFlits:
        self.stats.cycles += 1
        ejected = self.flow.step(self, cycle)
        self.stats.buffer_occupancy_sum += self.flow.held_flits(self)
        return ejected

    def in_flight_flits(self) -> int:
        return int((self._ring_birth >= 0).sum()) + self.flow.held_flits(self)

    def in_flight_view(self):
        mask = self._ring_birth >= 0
        meta, birth = self._ring_meta[mask], self._ring_birth[mask]
        held = self.flow.held_view(self)
        if held is None:
            return meta, birth
        return (
            np.concatenate([meta, held[0]]),
            np.concatenate([birth, held[1]]),
        )

    # ------------------------------------------------------------------
    # Chaos support (mid-run topology transitions, repro.chaos)
    # ------------------------------------------------------------------
    def on_topology_change(self) -> None:
        """Refresh routing tables after a chaos link/router transition."""
        self.flow.on_topology_change(self)

    def held_at(self, node: int) -> int:
        """Flits stored inside router *node* (drain-completion checks)."""
        return self.flow.held_at(self, node)

    def rewrite_dest(self, old: int, new: int) -> int:
        """Re-address every flit destined *old* to *new*, everywhere.

        Covers the hop-delay ring, flow-control buffers, and the NI
        queues (packets enqueued before the destination re-striping took
        effect).  Returns the number of *in-network* flits rewritten;
        NI-queue rewrites touch stale slots harmlessly and are not
        counted.
        """
        mask = (self._ring_birth >= 0) & (meta_dest(self._ring_meta) == old)
        hits = int(mask.sum())
        if hits:
            self._ring_meta[mask] += new - old
        hits += self.flow.rewrite_dest(self, old, new)
        for queue in (self.request_queue, self.response_queue):
            stale = queue.dest == old
            if stale.any():
                queue.dest[stale] = new
        return hits

    def router_wire_empty(self, node: int) -> bool:
        """No flit on any wire into or out of *node*, in any ring stage."""
        p = self.num_ports
        inbound = self._ring_birth[:, node * p:(node + 1) * p]
        if (inbound >= 0).any():
            return False
        out = self._target_flat[node]
        out = out[out >= 0]
        return not (self._ring_birth[:, out] >= 0).any()

    def link_wire_empty(self, node: int, port: int) -> bool:
        """Both directions of link (node, port) are drained."""
        fwd = int(self._target_flat[node, port])
        neighbor = int(self.topology.neighbor[node, port])
        rev = int(self.topology.reverse_port[node, port])
        back = int(self._target_flat[neighbor, rev])
        slots = [s for s in (fwd, back) if s >= 0]
        return not (self._ring_birth[:, slots] >= 0).any()

    def purge_queues_at(self, node: int) -> int:
        """Drop un-injected NI packets at *node*; returns flits dropped.

        Only used by chaos when a fail-stopping router's queues refuse
        to drain (heavy throttling); the packets never entered the
        network, so flit conservation is unaffected.
        """
        return (
            self.request_queue.purge_node(node)
            + self.response_queue.purge_node(node)
        )

    # ------------------------------------------------------------------
    # Stage helpers (used by FlowControl implementations)
    # ------------------------------------------------------------------
    def arbitration_keys(self, birth: np.ndarray, meta: np.ndarray) -> np.ndarray:
        """Per-flit arbitration keys; the smallest key wins a conflict."""
        return self._arb.keys(self, birth, meta)

    def arbitration_keys_into(self, birth, meta, out, scratch) -> np.ndarray:
        """Allocation-free :meth:`arbitration_keys` into scratch *out*."""
        return self._arb.keys_into(self, birth, meta, out, scratch)

    def productive_into(self, dest, idx, p0, p1=None):
        """Gather fault-free productive ports from the route tables.

        *dest* is a per-(node, port) destination grid; *idx*/*p0*/*p1*
        are same-shaped scratch buffers.  Callers must check
        ``self._p0_flat is not None`` first.
        """
        np.add(dest, self._row_base_col, out=idx)
        np.take(self._p0_flat, idx, out=p0)
        if p1 is not None:
            np.take(self._p1_flat, idx, out=p1)

    def arrival_slot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Raw ``(meta, birth)`` views of this cycle's arrival slot."""
        return self._ring_meta[self._cursor], self._ring_birth[self._cursor]

    def retire_arrivals(self) -> None:
        """Clear the consumed arrival slot and advance the ring cursor."""
        self._ring_birth[self._cursor] = -1
        self._cursor = (self._cursor + 1) % self._ring_depth

    @property
    def send_slot(self) -> int:
        """Ring slot whose contents arrive ``hop_latency`` cycles out
        (the uniform-latency fast path)."""
        return (self._cursor + self.hop_latency - 1) % self._ring_depth

    def link_send_slot(self, lat_sel: np.ndarray) -> np.ndarray:
        """Per-flit ring slots for links with hop latencies *lat_sel*."""
        return (self._cursor + lat_sel - 1) % self._ring_depth

    def account_ejections(self, cycle, rows, meta, latencies) -> None:
        """Latency/hop statistics for a batch of delivered flits."""
        stats = self.stats
        stats.ejected_flits += rows.size
        stats.latency_sum += int(latencies.sum())
        stats.latency_count += rows.size
        stats.latency_max = max(stats.latency_max, int(latencies.max()))
        stats.record_latencies(latencies)
        stats.hops_sum += int(meta_hops(meta).sum())

    def trace_ejections(self, cycle, rows, meta) -> None:
        if self.tracer is not None:
            self.tracer.record(
                EV_EJECT, cycle, rows, meta_src(meta), rows,
                meta_kind(meta), meta_seq(meta), meta_hops(meta),
            )

    @staticmethod
    def make_ejected(rows, meta) -> EjectedFlits:
        return EjectedFlits(
            rows, meta_src(meta), meta_kind(meta), meta_seq(meta),
            meta_cbit(meta).astype(bool),
        )

    def injection_stage(self, cycle, capacity, place) -> None:
        """NI admission shared by all flow controls.

        Responses inject first (they are never throttled, §3.2), then
        requests pass the Algorithm-3 throttle gate; ``place(nodes,
        queue, cycle)`` performs the flow-specific placement.  Every
        node that wanted to inject but could not counts as starved.
        """
        resp_has = self.response_queue.nonempty
        req_has = self.request_queue.nonempty
        wanted = resp_has | req_has
        inject_resp = resp_has & capacity
        trying_req = req_has & capacity & ~inject_resp
        inject_req = trying_req & self.throttle.decide(trying_req)
        place(np.flatnonzero(inject_resp), self.response_queue, cycle)
        place(np.flatnonzero(inject_req), self.request_queue, cycle)
        self._record_starvation(wanted, inject_resp | inject_req, capacity)

    def mark_congestion(self, out_meta, out_birth) -> None:
        """Distributed-control congestion bit (§6.6) on departing flits."""
        if self.congested_nodes.any():
            mark = self.congested_nodes[:, None] & (out_birth >= 0)
            out_meta[mark] |= CBIT_MASK

    def send_grid(self, cycle, out_meta, out_birth) -> None:
        """Scatter granted ``(node, out port)`` flits into the ring."""
        moving = np.greater_equal(out_birth, 0, out=self._sc_moving)
        idx = self._target_flat[moving]
        if self._uniform_latency:
            slot = self.send_slot
        else:
            slot = self.link_send_slot(self._lat_out[moving])
        self._ring_meta[slot, idx] = out_meta[moving]
        self._ring_birth[slot, idx] = out_birth[moving]
        self.stats.flit_hops += idx.size
        if self.tracer is not None and idx.size:
            hop_rows = np.nonzero(moving)[0]
            hm = out_meta[moving]
            self.tracer.record(
                EV_HOP, cycle, hop_rows, meta_src(hm), meta_dest(hm),
                meta_kind(hm), meta_seq(hm), meta_hops(hm),
            )
