"""Vectorized per-node flit queues.

Each node has fixed-capacity FIFO queues (request queue fed by the core's
L1 misses, response queue fed by the local shared-cache slice).  A queue
entry describes one *packet*: destination, kind, and how many flits of it
remain to inject.  The injection stage draws one flit per cycle from the
head entry; the entry pops when its last flit leaves.

All operations take arrays of node indices so that thousands of nodes can
be serviced per simulated cycle without Python-level loops.  Node indices
within one call must be unique (each node enqueues/dequeues at most one
item per cycle), which the callers guarantee by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlitQueueArray"]


class FlitQueueArray:
    """A ring-buffer FIFO of packet entries for every node.

    Parameters
    ----------
    num_nodes:
        Number of per-node queues.
    capacity:
        Maximum entries per node.  A full queue exerts backpressure on
        the producer (the core stalls; the paper's self-throttling).
    """

    def __init__(self, num_nodes: int, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.num_nodes = num_nodes
        self.capacity = capacity
        self.dest = np.zeros((num_nodes, capacity), dtype=np.int32)
        self.kind = np.zeros((num_nodes, capacity), dtype=np.int8)
        self.flits = np.zeros((num_nodes, capacity), dtype=np.int16)
        self.stamp = np.zeros((num_nodes, capacity), dtype=np.int64)
        self.seq = np.zeros((num_nodes, capacity), dtype=np.int16)
        self.head = np.zeros(num_nodes, dtype=np.int32)
        self.count = np.zeros(num_nodes, dtype=np.int32)
        self._rows = np.arange(num_nodes, dtype=np.int32)

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> np.ndarray:
        """Boolean mask of nodes whose queue cannot accept an entry."""
        return self.count >= self.capacity

    @property
    def nonempty(self) -> np.ndarray:
        """Boolean mask of nodes with at least one queued entry."""
        return self.count > 0

    def queued_flits_total(self) -> int:
        """Total flits waiting across all nodes (for conservation checks)."""
        # A slot is occupied when it lies within [head, head + count) on
        # the ring; summing the masked flits counts stays loop-free.
        offsets = np.arange(self.capacity, dtype=np.int32)
        occupied = (
            (offsets[None, :] - self.head[:, None]) % self.capacity
            < self.count[:, None]
        )
        return int(self.flits[occupied].sum())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(
        self, nodes: np.ndarray, dest: np.ndarray, kind, flits, stamp=0, seq=0
    ) -> np.ndarray:
        """Enqueue one entry at each node in *nodes*.

        Returns the mask of successful pushes; entries for full queues
        are rejected (the caller decides whether that means a stall or a
        counted drop).  *nodes* must contain unique indices.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0, dtype=bool)
        ok = self.count[nodes] < self.capacity
        accepted = nodes if ok.all() else nodes[ok]
        slot = (self.head[accepted] + self.count[accepted]) % self.capacity
        for field, value in (
            (self.dest, dest),
            (self.kind, kind),
            (self.flits, flits),
            (self.stamp, stamp),
            (self.seq, seq),
        ):
            if np.ndim(value) == 0:
                field[accepted, slot] = value
            else:
                field[accepted, slot] = np.asarray(value)[ok]
        self.count[accepted] += 1
        return ok

    def push_burst(self, node: int, dest: np.ndarray, kind, flits,
                   stamp=0, seq=0) -> int:
        """Enqueue up to ``len(dest)`` entries into *one* node's queue.

        Entries are appended in order until the queue is full; because
        they all target the same queue, stopping at the first rejected
        entry is identical to accepting exactly the remaining-capacity
        prefix.  Returns the number of entries accepted.  (This is the
        hub's per-epoch rate-update burst in
        :meth:`~repro.sim.Simulator._inject_control_traffic`.)
        """
        dest = np.asarray(dest, dtype=np.int64)
        space = int(self.capacity - self.count[node])
        k = min(dest.size, max(space, 0))
        if k == 0:
            return 0
        slots = (self.head[node] + self.count[node]
                 + np.arange(k, dtype=np.int64)) % self.capacity
        for field, value in (
            (self.dest, dest),
            (self.kind, kind),
            (self.flits, flits),
            (self.stamp, stamp),
            (self.seq, seq),
        ):
            if np.ndim(value) == 0:
                field[node, slots] = value
            else:
                field[node, slots] = np.asarray(value)[:k]
        self.count[node] += k
        return k

    def purge_node(self, node: int) -> int:
        """Discard every queued entry at *node*; returns flits discarded.

        Chaos fail-stop support: a dying router's un-injected packets
        are dropped (they never entered the network, so conservation
        accounting is unaffected) and counted for the campaign report.
        """
        count = int(self.count[node])
        if count == 0:
            return 0
        slots = (
            self.head[node] + np.arange(count, dtype=np.int64)
        ) % self.capacity
        flits = int(self.flits[node, slots].sum())
        self.count[node] = 0
        return flits

    def peek(self, nodes: np.ndarray):
        """Head-entry ``(dest, kind)`` for each node in *nodes*.

        Callers must ensure the queues are non-empty.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        slot = self.head[nodes]
        return self.dest[nodes, slot], self.kind[nodes, slot]

    def take_flit(self, nodes: np.ndarray):
        """Remove one flit from each head entry; pop entries that drain.

        Returns ``(dest, kind, seq, stamp, last)`` arrays for the taken
        flits, where ``seq`` is the packet sequence tag, ``stamp`` the
        enqueue cycle, and ``last`` marks flits that completed their
        packet.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        slot = self.head[nodes]
        dest = self.dest[nodes, slot].copy()
        kind = self.kind[nodes, slot].copy()
        seq = self.seq[nodes, slot].copy()
        stamp = self.stamp[nodes, slot].copy()
        self.flits[nodes, slot] -= 1
        done = self.flits[nodes, slot] == 0
        popped = nodes[done]
        self.head[popped] = (self.head[popped] + 1) % self.capacity
        self.count[popped] -= 1
        return dest, kind, seq, stamp, done
