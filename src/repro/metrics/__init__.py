"""System-level performance metrics (§3.1, §6.2)."""

from repro.metrics.system import (
    max_slowdown,
    system_throughput,
    weighted_speedup,
)
from repro.metrics.collectors import EpochSeries

__all__ = [
    "system_throughput",
    "weighted_speedup",
    "max_slowdown",
    "EpochSeries",
]
