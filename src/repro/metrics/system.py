"""Application-level metrics.

The paper stresses that network-level metrics do not directly reflect
system performance (§7 "Metrics"); the quantities that do are defined
here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["system_throughput", "weighted_speedup", "max_slowdown"]


def system_throughput(ipc: np.ndarray) -> float:
    """Sum of per-core instruction throughput: ``sum_i IPC_i`` (§3.1)."""
    return float(np.asarray(ipc).sum())


def _validate_pair(ipc_shared, ipc_alone):
    shared = np.asarray(ipc_shared, dtype=float)
    alone = np.asarray(ipc_alone, dtype=float)
    if shared.shape != alone.shape:
        raise ValueError("shared and alone IPC arrays must align")
    return shared, alone


def weighted_speedup(ipc_shared, ipc_alone) -> float:
    """``WS = sum_i IPC_i,shared / IPC_i,alone`` (§6.2).

    WS equals N in an ideal N-application system with no interference
    and drops as network contention slows applications relative to
    their natural (alone) speed.  Nodes with zero alone-IPC (idle) are
    excluded.
    """
    shared, alone = _validate_pair(ipc_shared, ipc_alone)
    mask = alone > 0
    return float((shared[mask] / alone[mask]).sum())


def max_slowdown(ipc_shared, ipc_alone) -> float:
    """Worst per-application slowdown, ``max_i IPC_alone / IPC_shared``.

    An unfairness indicator: a mechanism that buys throughput by
    starving one application shows up here even if WS improves.
    """
    shared, alone = _validate_pair(ipc_shared, ipc_alone)
    mask = alone > 0
    shared = np.maximum(shared[mask], 1e-12)
    if not mask.any():
        return 1.0
    return float((alone[mask] / shared).max())
