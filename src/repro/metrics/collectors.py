"""Per-epoch time-series collection.

Every controller epoch the simulator appends one sample of each tracked
quantity; the resulting series drive the temporal figures (Fig 6) and
give visibility into controller behavior (when throttling engaged, how
utilization responded).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["EpochSeries"]


class EpochSeries:
    """Append-only named series sampled once per epoch.

    Alignment invariant: every series always has exactly one sample per
    recorded epoch (``len(series[name]) == len(series)``).  A series
    first recorded mid-run is backfilled with NaN for the epochs it
    missed, and a series omitted from an :meth:`append` is padded with
    NaN — without this, a late-appearing series would silently misalign
    with ``cycles`` and index off-by-many in the temporal figures.
    """

    def __init__(self):
        self._data: Dict[str, List[float]] = {}
        self.cycles: List[int] = []

    def append(self, cycle: int, **samples: float) -> None:
        self.cycles.append(cycle)
        n = len(self.cycles)
        for name, value in samples.items():
            column = self._data.setdefault(name, [])
            if len(column) < n - 1:  # first recorded mid-run: backfill
                column.extend([float("nan")] * (n - 1 - len(column)))
            column.append(float(value))
        for column in self._data.values():  # omitted this epoch: pad
            if len(column) < n:
                column.append(float("nan"))

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._data:
            raise KeyError(
                f"no series {name!r}; have {sorted(self._data)}"
            )
        return np.asarray(self._data[name])

    def names(self):
        return sorted(self._data)

    def __len__(self) -> int:
        return len(self.cycles)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EpochSeries):
            return NotImplemented
        if self.cycles != other.cycles or set(self._data) != set(other._data):
            return False
        # NaN-aware: backfilled samples must compare equal to themselves.
        return all(
            np.array_equal(
                np.asarray(column, dtype=float),
                np.asarray(other._data[name], dtype=float),
                equal_nan=True,
            )
            for name, column in self._data.items()
        )

    # ------------------------------------------------------------------
    # Lossless round-trip (harness result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict; NaN backfill encodes as ``None`` so the
        payload stays strict RFC-8259 (``allow_nan=False`` safe)."""
        return {
            "cycles": list(self.cycles),
            "series": {
                name: [None if v != v else v for v in column]
                for name, column in self._data.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochSeries":
        out = cls()
        out.cycles = [int(c) for c in data["cycles"]]
        out._data = {
            name: [float("nan") if v is None else float(v) for v in values]
            for name, values in data["series"].items()
        }
        return out
