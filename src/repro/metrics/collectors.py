"""Per-epoch time-series collection.

Every controller epoch the simulator appends one sample of each tracked
quantity; the resulting series drive the temporal figures (Fig 6) and
give visibility into controller behavior (when throttling engaged, how
utilization responded).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["EpochSeries"]


class EpochSeries:
    """Append-only named series sampled once per epoch."""

    def __init__(self):
        self._data: Dict[str, List[float]] = {}
        self.cycles: List[int] = []

    def append(self, cycle: int, **samples: float) -> None:
        self.cycles.append(cycle)
        for name, value in samples.items():
            self._data.setdefault(name, []).append(float(value))

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._data:
            raise KeyError(
                f"no series {name!r}; have {sorted(self._data)}"
            )
        return np.asarray(self._data[name])

    def names(self):
        return sorted(self._data)

    def __len__(self) -> int:
        return len(self.cycles)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EpochSeries):
            return NotImplemented
        return self.cycles == other.cycles and self._data == other._data

    # ------------------------------------------------------------------
    # Lossless round-trip (harness result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"cycles": list(self.cycles), "series": dict(self._data)}

    @classmethod
    def from_dict(cls, data: dict) -> "EpochSeries":
        out = cls()
        out.cycles = [int(c) for c in data["cycles"]]
        out._data = {
            name: [float(v) for v in values]
            for name, values in data["series"].items()
        }
        return out
