"""Machine-readable performance counters for one simulation run.

``PerfCounters`` is the lossless snapshot the observability layer
exports on :class:`~repro.sim.results.SimulationResult` (only when
profiling or tracing was enabled — the counters carry wall-clock times,
which are inherently nondeterministic, so default runs stay bit-exact
reproducible).  The ``python -m repro profile`` command serializes one
into ``BENCH_pr3.json`` as the repo's perf baseline, and
:meth:`~repro.harness.HarnessReport.perf_summary` aggregates them across
a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Wall-clock throughput and phase attribution for one run."""

    wall_seconds: float = 0.0
    cycles: int = 0
    injected_flits: int = 0
    ejected_flits: int = 0
    #: seconds attributed per phase; empty when profiling was off
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    trace_events: int = 0
    trace_dropped: int = 0
    #: chaos campaign events applied during the run (0 when chaos off)
    chaos_events: int = 0

    @property
    def cycles_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def flits_per_sec(self) -> float:
        """Delivered-flit throughput (ejections per wall second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.ejected_flits / self.wall_seconds

    def phase_shares(self) -> Dict[str, float]:
        total = sum(self.phase_seconds.values())
        if total <= 0.0:
            return {name: 0.0 for name in self.phase_seconds}
        return {n: s / total for n, s in self.phase_seconds.items()}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict (all values finite) for the result cache."""
        return {
            "wall_seconds": float(self.wall_seconds),
            "cycles": int(self.cycles),
            "injected_flits": int(self.injected_flits),
            "ejected_flits": int(self.ejected_flits),
            "cycles_per_sec": float(self.cycles_per_sec),
            "flits_per_sec": float(self.flits_per_sec),
            "phase_seconds": {
                name: float(secs) for name, secs in self.phase_seconds.items()
            },
            "phase_shares": self.phase_shares(),
            "trace_events": int(self.trace_events),
            "trace_dropped": int(self.trace_dropped),
            "chaos_events": int(self.chaos_events),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfCounters":
        return cls(
            wall_seconds=data["wall_seconds"],
            cycles=data["cycles"],
            injected_flits=data["injected_flits"],
            ejected_flits=data["ejected_flits"],
            phase_seconds=dict(data["phase_seconds"]),
            trace_events=data["trace_events"],
            trace_dropped=data["trace_dropped"],
            chaos_events=data.get("chaos_events", 0),
        )

    def table(self) -> str:
        """Per-phase wall-clock table plus the throughput headline."""
        shares = self.phase_shares()
        lines = [
            f"wall {self.wall_seconds:.3f}s  "
            f"{self.cycles_per_sec:,.0f} cycles/s  "
            f"{self.flits_per_sec:,.0f} flits/s"
        ]
        if self.phase_seconds:
            lines.append(f"{'phase':<10} {'seconds':>10} {'share':>8}")
            for name, secs in sorted(
                self.phase_seconds.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"{name:<10} {secs:>10.4f} {shares[name]:>7.1%}")
        if self.trace_events:
            lines.append(
                f"trace: {self.trace_events} events "
                f"({self.trace_dropped} dropped)"
            )
        return "\n".join(lines)
