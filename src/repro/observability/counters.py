"""Machine-readable performance counters for one simulation run.

``PerfCounters`` is the lossless snapshot the observability layer
exports on :class:`~repro.sim.results.SimulationResult` (only when
profiling or tracing was enabled — the counters carry wall-clock times,
which are inherently nondeterministic, so default runs stay bit-exact
reproducible).  The ``python -m repro profile`` command serializes one
into ``BENCH_pr3.json`` as the repo's perf baseline, and
:meth:`~repro.harness.HarnessReport.perf_summary` aggregates them across
a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Wall-clock throughput and phase attribution for one run."""

    wall_seconds: float = 0.0
    cycles: int = 0
    injected_flits: int = 0
    ejected_flits: int = 0
    #: seconds attributed per phase; empty when profiling was off
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    trace_events: int = 0
    trace_dropped: int = 0
    #: chaos campaign events applied during the run (0 when chaos off)
    chaos_events: int = 0
    #: modeled control-plane flits accepted/overflowed (0 unless
    #: model_control_traffic was on)
    control_flits_sent: int = 0
    control_flits_dropped: int = 0
    #: control-plane layout: domain count (0 = single-hub central) and
    #: epochs the controller ran
    control_domains: int = 0
    control_epochs: int = 0
    #: per-domain control flits delivered (empty without domains)
    per_domain_control_flits: List[int] = field(default_factory=list)

    @property
    def cycles_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def flits_per_sec(self) -> float:
        """Delivered-flit throughput (ejections per wall second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.ejected_flits / self.wall_seconds

    def phase_shares(self) -> Dict[str, float]:
        total = sum(self.phase_seconds.values())
        if total <= 0.0:
            return {name: 0.0 for name in self.phase_seconds}
        return {n: s / total for n, s in self.phase_seconds.items()}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict (all values finite) for the result cache."""
        return {
            "wall_seconds": float(self.wall_seconds),
            "cycles": int(self.cycles),
            "injected_flits": int(self.injected_flits),
            "ejected_flits": int(self.ejected_flits),
            "cycles_per_sec": float(self.cycles_per_sec),
            "flits_per_sec": float(self.flits_per_sec),
            "phase_seconds": {
                name: float(secs) for name, secs in self.phase_seconds.items()
            },
            "phase_shares": self.phase_shares(),
            "trace_events": int(self.trace_events),
            "trace_dropped": int(self.trace_dropped),
            "chaos_events": int(self.chaos_events),
            "control_flits_sent": int(self.control_flits_sent),
            "control_flits_dropped": int(self.control_flits_dropped),
            "control_domains": int(self.control_domains),
            "control_epochs": int(self.control_epochs),
            "per_domain_control_flits": [
                int(x) for x in self.per_domain_control_flits
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfCounters":
        return cls(
            wall_seconds=data["wall_seconds"],
            cycles=data["cycles"],
            injected_flits=data["injected_flits"],
            ejected_flits=data["ejected_flits"],
            phase_seconds=dict(data["phase_seconds"]),
            trace_events=data["trace_events"],
            trace_dropped=data["trace_dropped"],
            chaos_events=data.get("chaos_events", 0),
            control_flits_sent=data.get("control_flits_sent", 0),
            control_flits_dropped=data.get("control_flits_dropped", 0),
            control_domains=data.get("control_domains", 0),
            control_epochs=data.get("control_epochs", 0),
            per_domain_control_flits=list(
                data.get("per_domain_control_flits", ())
            ),
        )

    def table(self) -> str:
        """Per-phase wall-clock table plus the throughput headline."""
        shares = self.phase_shares()
        lines = [
            f"wall {self.wall_seconds:.3f}s  "
            f"{self.cycles_per_sec:,.0f} cycles/s  "
            f"{self.flits_per_sec:,.0f} flits/s"
        ]
        if self.phase_seconds:
            lines.append(f"{'phase':<10} {'seconds':>10} {'share':>8}")
            for name, secs in sorted(
                self.phase_seconds.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"{name:<10} {secs:>10.4f} {shares[name]:>7.1%}")
        if self.trace_events:
            lines.append(
                f"trace: {self.trace_events} events "
                f"({self.trace_dropped} dropped)"
            )
        if self.control_flits_sent or self.control_flits_dropped:
            layout = (
                f"{self.control_domains} domains"
                if self.control_domains
                else "single hub"
            )
            lines.append(
                f"control: {self.control_flits_sent} flits sent, "
                f"{self.control_flits_dropped} dropped over "
                f"{self.control_epochs} epochs ({layout})"
            )
        return "\n".join(lines)
