"""Per-phase wall-clock attribution for the simulator's cycle loop.

The simulator's per-cycle order of operations (see
:mod:`repro.sim.pipeline`) maps onto six phases.  When profiling is
enabled the pipeline compiles a timing wrapper around each phase that
brackets it with :meth:`PhaseTimer.begin_cycle` / :meth:`PhaseTimer.lap`,
so the cost of the timer itself is a handful of ``perf_counter`` calls
per cycle; when profiling is disabled the pipeline compiles to the bare
phase callables and the timer never exists at all.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["PHASES", "PhaseTimer"]

#: The simulator's phases, in per-cycle execution order.
PHASES = ("behavior", "cores", "memory", "network", "ejection", "epoch")


class PhaseTimer:
    """Accumulates wall-clock seconds into named simulation phases."""

    def __init__(self):
        self.seconds = {name: 0.0 for name in PHASES}
        self._mark = 0.0

    def begin_cycle(self) -> None:
        """Start timing; the next :meth:`lap` measures from here."""
        self._mark = perf_counter()

    def lap(self, phase: str) -> None:
        """Charge the time since the previous mark to *phase*."""
        now = perf_counter()
        self.seconds[phase] += now - self._mark
        self._mark = now

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def shares(self) -> dict:
        """Fraction of attributed time per phase (sums to 1 when any)."""
        total = self.total_seconds
        if total <= 0.0:
            return {name: 0.0 for name in self.seconds}
        return {name: secs / total for name, secs in self.seconds.items()}

    def table(self) -> str:
        """Human-readable per-phase breakdown, widest share first."""
        shares = self.shares()
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        lines = [f"{'phase':<10} {'seconds':>10} {'share':>8}"]
        for name, secs in rows:
            lines.append(f"{name:<10} {secs:>10.4f} {shares[name]:>7.1%}")
        lines.append(f"{'total':<10} {self.total_seconds:>10.4f} {'100.0%':>8}")
        return "\n".join(lines)
