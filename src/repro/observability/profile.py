"""The ``python -m repro profile`` driver and ``BENCH_pr3.json`` writer.

Runs a smoke configuration with profiling enabled, reports the per-phase
wall-clock breakdown, and serializes the machine-readable perf baseline
(``BENCH_pr3.json``) that later PRs regress against.  With
``overhead_check`` set it additionally times the *disabled* observability
path against a plain run and fails when the residual overhead (the
``tracer is None`` branches the layer added to the hot loops) exceeds
the given percentage — the guarantee that observability is free unless
switched on.

Kept out of ``repro.observability.__init__`` so the simulator's import
of the package never drags in the workload/driver stack (import cycle).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Optional

import numpy as np

__all__ = ["run_profile", "write_bench_json", "BENCH_SCHEMA"]

#: Layout version of the BENCH_pr3.json payload.
BENCH_SCHEMA = 1


def _build_simulator(nodes, category, network, topology, seed, epoch,
                     **overrides):
    from repro.config import SimulationConfig
    from repro.sim.simulator import Simulator
    from repro.traffic.workloads import make_category_workload

    workload = make_category_workload(
        category, nodes, np.random.default_rng(seed)
    )
    config = SimulationConfig(
        workload,
        seed=seed,
        epoch=epoch,
        network=network,
        topology=topology,
        **overrides,
    )
    return Simulator(config)


def _timed_cps(sim, cycles: int) -> float:
    """Cycles per wall-second of one fresh run."""
    start = time.perf_counter()
    sim.run(cycles)
    return cycles / (time.perf_counter() - start)


def run_profile(
    nodes: int = 64,
    cycles: int = 20_000,
    category: str = "H",
    network: str = "bless",
    topology: str = "mesh",
    seed: int = 1,
    epoch: int = 2_000,
    trace: bool = False,
    trace_sample: float = 1 / 16,
    overhead_check: Optional[float] = None,
    repeats: int = 2,
) -> dict:
    """Profile the smoke config; returns the ``BENCH_pr3.json`` payload.

    ``overhead_check`` (a percentage) also times the observability-
    *disabled* path against a plain run (best of ``repeats`` each, after
    a warm-up) and records whether the disabled overhead stays under the
    limit; the caller turns ``overhead_ok == False`` into a failure.
    """
    build = lambda **obs: _build_simulator(  # noqa: E731
        nodes, category, network, topology, seed, epoch, **obs
    )

    # --- profiled run (the baseline artifact) -------------------------
    sim = build(profile=True, trace=trace, trace_sample=trace_sample)
    result = sim.run(cycles)
    perf = result.perf
    payload = {
        "bench": "pr3-observability",
        "schema": BENCH_SCHEMA,
        "config": {
            "nodes": nodes,
            "cycles": cycles,
            "category": category,
            "network": network,
            "topology": topology,
            "seed": seed,
            "epoch": epoch,
        },
        # Headline counters, duplicated at the top level so downstream
        # tools need no knowledge of the PerfCounters layout.
        "cycles_per_sec": perf.cycles_per_sec,
        "flits_per_sec": perf.flits_per_sec,
        "phase_seconds": dict(perf.phase_seconds),
        "phase_shares": perf.phase_shares(),
        "wall_seconds": perf.wall_seconds,
        "perf": perf.to_dict(),
        "result": {
            "throughput_per_node": result.throughput_per_node,
            "avg_net_latency": result.avg_net_latency,
            "network_utilization": result.network_utilization,
            "mean_starvation": result.mean_starvation,
            "deflection_rate": result.deflection_rate,
        },
        "trace": (
            None
            if sim.tracer is None
            else {
                "sample": sim.tracer.sample,
                "capacity": sim.tracer.capacity,
                "recorded": sim.tracer.recorded,
                "dropped": sim.tracer.dropped,
                "event_counts": sim.tracer.event_counts(),
            }
        ),
        "baseline_cycles_per_sec": None,
        "tracing_disabled_cycles_per_sec": None,
        "overhead_pct": None,
        "overhead_limit_pct": overhead_check,
        "overhead_ok": None,
    }

    # --- overhead gate -------------------------------------------------
    # Times the observability layer with tracing *disabled* (profiling
    # only — the instrumented loop plus the ``tracer is None`` branches
    # in the network step) against a plain no-observability run.  When
    # everything is off the simulator takes its original loop verbatim,
    # so this bound is the worst residual cost the layer can impose on
    # a run that did not ask for tracing.
    if overhead_check is not None:
        build().run(min(cycles, 2_000))  # warm-up (imports, numpy caches)
        plain = max(_timed_cps(build(), cycles) for _ in range(repeats))
        profiled = max(
            _timed_cps(build(profile=True), cycles) for _ in range(repeats)
        )
        overhead = (1.0 - profiled / plain) * 100.0
        payload["baseline_cycles_per_sec"] = plain
        payload["tracing_disabled_cycles_per_sec"] = profiled
        payload["overhead_pct"] = overhead
        payload["overhead_ok"] = overhead <= overhead_check
    return payload


def write_bench_json(path, payload: dict) -> pathlib.Path:
    """Write the payload as strict RFC-8259 JSON (sorted, indented)."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path
