"""Sampled flit-event tracing into a bounded structured ring buffer.

A packet is identified by ``(src, seq, kind)`` — the same tag the
networks carry in the packed flit meta word — and is either *sampled* or
not for the whole run: the decision is a pure hash of the identity plus
a seed-derived salt, so every event of a sampled packet (inject, each
hop, each deflection, eject) lands in the trace and a re-run with the
same seed produces the same trace.  Storage is a fixed-capacity ring of
parallel numpy arrays; when the ring wraps, the oldest events are
overwritten and counted in :attr:`FlitTracer.dropped` (bounded memory is
a hard requirement — a 4096-node run emits millions of events).

The networks call :meth:`FlitTracer.record` with whole arrays per cycle,
so tracing stays vectorized; with tracing disabled the networks skip the
calls entirely (``tracer is None``), making the disabled cost one branch
per step.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EV_INJECT",
    "EV_HOP",
    "EV_DEFLECT",
    "EV_EJECT",
    "EVENT_NAMES",
    "FlitTracer",
]

EV_INJECT = 0  # flit entered the network from its NI queue
EV_HOP = 1  # flit granted an output link this cycle
EV_DEFLECT = 2  # flit lost port arbitration and took a non-productive link
EV_EJECT = 3  # flit delivered to its destination NI

EVENT_NAMES = ("inject", "hop", "deflect", "eject")

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix(h: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: avalanche a uint64 array."""
    with np.errstate(over="ignore"):  # mod-2^64 wraparound is the point
        h = (h ^ (h >> np.uint64(30))) * _MIX1
        h = (h ^ (h >> np.uint64(27))) * _MIX2
        return h ^ (h >> np.uint64(31))


class FlitTracer:
    """Bounded, seedable recorder of per-flit network events.

    Parameters
    ----------
    capacity:
        Maximum events held; older events are overwritten (and counted
        as dropped) once the ring wraps.
    sample:
        Fraction of packet identities traced, in [0, 1].  Sampling is
        quantized to 1/65536 steps.
    salt:
        Seed-derived value mixed into the sampling hash so different
        simulation seeds trace different (but per-seed reproducible)
        packet subsets.
    """

    def __init__(self, capacity: int = 65536, sample: float = 1 / 16,
                 salt: int = 0):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        if not 0.0 <= sample <= 1.0:
            raise ValueError("trace sample rate must lie in [0, 1]")
        self.capacity = int(capacity)
        self.sample = float(sample)
        self.salt = np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
        # sample == 1.0 maps to 65536 > any 16-bit hash: everything traced.
        self._threshold = np.uint64(int(round(self.sample * 65536)))
        self.cycle = np.zeros(self.capacity, dtype=np.int64)
        self.event = np.zeros(self.capacity, dtype=np.int8)
        self.node = np.zeros(self.capacity, dtype=np.int32)
        self.src = np.zeros(self.capacity, dtype=np.int32)
        self.dest = np.zeros(self.capacity, dtype=np.int32)
        self.kind = np.zeros(self.capacity, dtype=np.int8)
        self.seq = np.zeros(self.capacity, dtype=np.int32)
        self.hops = np.zeros(self.capacity, dtype=np.int32)
        self._pos = 0
        self.recorded = 0  # events ever written (>= capacity once wrapped)

    # ------------------------------------------------------------------
    def sampled(self, src, seq, kind) -> np.ndarray:
        """Mask of packets (by identity) included in the trace."""
        h = (
            np.asarray(src).astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            + np.asarray(seq).astype(np.uint64) * np.uint64(0xD1342543DE82EF95)
            + np.asarray(kind).astype(np.uint64) * np.uint64(0x2545F4914F6CDD1D)
            + self.salt
        )
        return (_splitmix(h) & np.uint64(0xFFFF)) < self._threshold

    def record(self, event: int, cycle: int, node, src, dest, kind,
               seq, hops) -> int:
        """Append events for the sampled subset; returns events written.

        All array arguments are parallel per-flit vectors; scalars
        broadcast.  Only flits whose identity passes :meth:`sampled` are
        stored.
        """
        src = np.asarray(src)
        seq = np.asarray(seq)
        kind = np.asarray(kind)
        keep = self.sampled(src, seq, kind)
        k = int(keep.sum())
        if k == 0:
            return 0
        slots = (self._pos + np.arange(k)) % self.capacity
        self.cycle[slots] = cycle
        self.event[slots] = event
        for field, value in (
            (self.node, node), (self.src, src), (self.dest, dest),
            (self.kind, kind), (self.seq, seq), (self.hops, hops),
        ):
            value = np.asarray(value)
            field[slots] = value if value.ndim == 0 else value[keep]
        self._pos = int((self._pos + k) % self.capacity)
        self.recorded += k
        return k

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events lost to ring wrap-around (oldest-first)."""
        return max(0, self.recorded - self.capacity)

    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    def events(self) -> dict:
        """Stored events in chronological order, as named arrays."""
        n = len(self)
        if self.recorded <= self.capacity:
            order = slice(0, n)
        else:
            order = (self._pos + np.arange(self.capacity)) % self.capacity
        return {
            "cycle": self.cycle[order].copy(),
            "event": self.event[order].copy(),
            "node": self.node[order].copy(),
            "src": self.src[order].copy(),
            "dest": self.dest[order].copy(),
            "kind": self.kind[order].copy(),
            "seq": self.seq[order].copy(),
            "hops": self.hops[order].copy(),
        }

    def event_counts(self) -> dict:
        """Stored-event tally per event type name."""
        ev = self.events()["event"]
        return {
            name: int((ev == code).sum())
            for code, name in enumerate(EVENT_NAMES)
        }

    def journeys(self, limit: int = 10) -> list:
        """Reassemble up to *limit* complete packet journeys.

        A journey spans one packet identity from its inject event to its
        eject event, summarizing hop and deflection counts and total
        latency — the "where did latency go" view.  Events lost to ring
        wrap-around can truncate journeys; only complete ones (inject
        and eject both present) are returned.

        Implementation: stable-argsort pre-bucketing by packet identity
        instead of a Python loop over every event — each identity's
        events stay chronological within its bucket, each inject opens a
        new trip segment, and the first eject of a segment closes it.
        Equivalent to the reference loop (see ``_journeys_loop``); the
        tie to physical identity reuse (``seq`` wraps mod 256) is kept
        by segmenting on injects rather than grouping whole identities.
        """
        ev = self.events()
        n = ev["cycle"].size
        if n == 0 or limit <= 0:
            return []
        ident = np.stack(
            [
                ev["src"].astype(np.int64),
                ev["seq"].astype(np.int64),
                ev["kind"].astype(np.int64),
            ],
            axis=1,
        )
        _, group = np.unique(ident, axis=0, return_inverse=True)
        group = group.reshape(-1)
        # Bucket by identity; stable keeps chronological order in-bucket.
        order = np.argsort(group, kind="stable")
        g = group[order]
        code = ev["event"][order].astype(np.int64)
        is_inj = code == EV_INJECT
        # 1-based trip id: each inject starts a fresh segment (re-inject
        # of an open identity discards the old, unfinished trip).
        trip = np.cumsum(is_inj)
        inj_pos = np.flatnonzero(is_inj)
        if inj_pos.size == 0:
            return []
        # An event belongs to a trip only if the inject that opened its
        # segment has the same identity (events before their bucket's
        # first inject fall into the previous bucket's last segment and
        # must be dropped as orphans).
        valid = trip > 0
        valid[valid] = g[valid] == g[inj_pos[trip[valid] - 1]]
        ej_pos = np.flatnonzero(valid & (code == EV_EJECT))
        if ej_pos.size == 0:
            return []
        # First eject per trip closes it; later same-identity events
        # before the next inject are ignored by the reference loop.
        ej_trip = trip[ej_pos]
        _, first = np.unique(ej_trip, return_index=True)
        closing = ej_pos[first]
        ntrips = int(trip[-1])
        close_of = np.full(ntrips + 1, -1, dtype=np.int64)
        close_of[trip[closing]] = closing
        pos = np.arange(n)
        in_window = valid & (close_of[trip] > pos)
        hops = np.bincount(
            trip[in_window & (code == EV_HOP)], minlength=ntrips + 1
        )
        defl = np.bincount(
            trip[in_window & (code == EV_DEFLECT)], minlength=ntrips + 1
        )
        # Completed trips come back in original eject order, up to limit.
        chrono = np.argsort(order[closing], kind="stable")[:limit]
        done = []
        for sel in chrono:
            close_sorted = int(closing[sel])
            t = int(trip[close_sorted])
            i_orig = int(order[inj_pos[t - 1]])
            e_orig = int(order[close_sorted])
            inject_cycle = int(ev["cycle"][i_orig])
            eject_cycle = int(ev["cycle"][e_orig])
            done.append(
                {
                    "src": int(ev["src"][i_orig]),
                    "seq": int(ev["seq"][i_orig]),
                    "kind": int(ev["kind"][i_orig]),
                    "dest": int(ev["dest"][i_orig]),
                    "inject_cycle": inject_cycle,
                    "hops": int(hops[t]),
                    "deflections": int(defl[t]),
                    "eject_cycle": eject_cycle,
                    "latency": eject_cycle - inject_cycle,
                }
            )
        return done

    def _journeys_loop(self, limit: int = 10) -> list:
        """Reference implementation of :meth:`journeys` (event-by-event
        Python loop); kept for the equivalence test suite."""
        ev = self.events()
        open_trips: dict = {}
        done = []
        for i in range(ev["cycle"].size):
            ident = (int(ev["src"][i]), int(ev["seq"][i]), int(ev["kind"][i]))
            code = int(ev["event"][i])
            if code == EV_INJECT:
                open_trips[ident] = {
                    "src": ident[0], "seq": ident[1], "kind": ident[2],
                    "dest": int(ev["dest"][i]),
                    "inject_cycle": int(ev["cycle"][i]),
                    "hops": 0, "deflections": 0,
                }
            elif ident in open_trips:
                trip = open_trips[ident]
                if code == EV_HOP:
                    trip["hops"] += 1
                elif code == EV_DEFLECT:
                    trip["deflections"] += 1
                elif code == EV_EJECT:
                    trip["eject_cycle"] = int(ev["cycle"][i])
                    trip["latency"] = trip["eject_cycle"] - trip["inject_cycle"]
                    done.append(open_trips.pop(ident))
                    if len(done) >= limit:
                        break
        return done

    def summary(self) -> str:
        """One-paragraph digest for the CLI's ``--trace`` output."""
        counts = self.event_counts()
        parts = ", ".join(f"{counts[n]} {n}" for n in EVENT_NAMES)
        line = (
            f"trace: {len(self)} events held ({self.recorded} recorded, "
            f"{self.dropped} dropped), sample={self.sample:g}: {parts}"
        )
        trips = self.journeys(limit=5)
        for t in trips:
            line += (
                f"\n  packet src={t['src']} dest={t['dest']} seq={t['seq']}: "
                f"inject@{t['inject_cycle']} -> eject@{t['eject_cycle']} "
                f"({t['latency']} cycles, {t['hops']} hops, "
                f"{t['deflections']} deflections)"
            )
        return line
