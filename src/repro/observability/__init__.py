"""Simulator observability: phase profiling, flit tracing, perf counters.

Three independent layers, all off by default and all near-zero cost when
disabled (the simulator keeps its uninstrumented hot loop unless a layer
is switched on through :class:`~repro.config.SimulationConfig`):

- :class:`PhaseTimer` attributes wall-clock time to each simulated phase
  (behavior tick, cores, memory, network step, ejection handling, epoch
  control), answering "where does a simulated cycle go";
- :class:`FlitTracer` records inject/hop/deflect/eject events for a
  deterministic, seedable sample of packets into a bounded ring buffer,
  answering "where did *this packet's* latency go" — the question the
  aggregate stats cannot;
- :class:`PerfCounters` is the machine-readable snapshot (cycles/sec,
  flits/sec, per-phase shares, trace volume) attached to
  :class:`~repro.sim.results.SimulationResult` and aggregated across a
  sweep by :class:`~repro.harness.HarnessReport`; the ``profile`` CLI
  writes it to ``BENCH_pr3.json`` so every later PR has a perf baseline
  to regress against.
"""

from repro.observability.counters import PerfCounters
from repro.observability.phases import PHASES, PhaseTimer
from repro.observability.tracer import (
    EVENT_NAMES,
    EV_DEFLECT,
    EV_EJECT,
    EV_HOP,
    EV_INJECT,
    FlitTracer,
)

__all__ = [
    "PHASES",
    "PhaseTimer",
    "FlitTracer",
    "PerfCounters",
    "EVENT_NAMES",
    "EV_INJECT",
    "EV_HOP",
    "EV_DEFLECT",
    "EV_EJECT",
]
