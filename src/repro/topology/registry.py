"""The topology registry: name -> (geometry validation, builder).

`SimulationConfig.__post_init__` used to special-case ``("mesh",
"torus")`` with a width x height fit check; every new layout would have
grown that if-ladder.  Instead each registered topology owns a
``prepare`` hook (infer missing geometry from the workload size, raise
clear errors for bad shapes — e.g. non-cubic 3D sizes) and a ``build``
hook (construct the topology object from a prepared config).  The
config layer, the simulator, and the CLI all consult this table, so
adding a layout is one :class:`TopologyEntry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.control.domains import (
    DomainMap,
    graph_domain_hubs,
    grid2d_domains,
    grid3d_domains,
)
from repro.topology import zoo
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D

__all__ = [
    "TopologyEntry",
    "TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "prepare_config",
    "build_topology",
    "domain_map",
]


@dataclass(frozen=True)
class TopologyEntry:
    """One selectable topology."""

    name: str
    #: one-line description (README table, ``--help``)
    description: str
    #: geometry hook: fills zeroed dimensions on the config in place and
    #: validates the shape, raising ``ValueError`` with a clear message
    prepare: Callable
    #: builder: prepared config -> topology instance
    build: Callable
    #: control-domain partition hook: ``(config, topology, num_domains)
    #: -> DomainMap`` with this layout's natural clustering (grid
    #: clusters, 3D layer bands, chiplet tiles); ``num_domains == 0``
    #: picks the layout's default count
    domains: Callable = None


def _prepare_grid2d(config) -> None:
    n = config.num_nodes
    if config.width == 0:
        side = int(round(n ** 0.5))
        if side * side != n:
            raise ValueError(
                f"workload size {n} is not square; pass width/height"
            )
        config.width = side
    if config.height == 0:
        config.height = config.width
    if config.width * config.height != n:
        raise ValueError(
            f"{config.width}x{config.height} topology does not fit "
            f"{n}-node workload"
        )


def _prepare_grid3d(config) -> None:
    n = config.num_nodes
    if config.width == 0 and config.depth > 0:
        # Depth hint only: split into ``depth`` square layers.
        if n % config.depth:
            raise ValueError(
                f"depth {config.depth} does not divide the "
                f"{n}-node workload"
            )
        layer = n // config.depth
        side = int(round(layer ** 0.5))
        if side * side != layer:
            raise ValueError(
                f"{n} nodes over {config.depth} layers is not a square "
                f"layer; pass width/height"
            )
        config.width = config.height = side
        return
    if config.width == 0:
        side = int(round(n ** (1.0 / 3.0)))
        if side ** 3 != n:
            raise ValueError(
                f"workload size {n} is not a cube; pass width/height/depth "
                f"for the {config.topology} topology"
            )
        config.width = config.height = side
        config.depth = side
        return
    if config.height == 0:
        config.height = config.width
    if config.depth == 0:
        layer = config.width * config.height
        if n % layer:
            raise ValueError(
                f"workload size {n} is not a multiple of the "
                f"{config.width}x{config.height} layer; pass depth"
            )
        config.depth = n // layer
    if config.width * config.height * config.depth != n:
        raise ValueError(
            f"{config.width}x{config.height}x{config.depth} topology does "
            f"not fit {n}-node workload"
        )


def _prepare_chiplet(config) -> None:
    _prepare_grid2d(config)
    tile = config.chiplet_tile
    if tile < 2:
        raise ValueError(f"chiplet_tile must be at least 2, got {tile}")
    if config.width % tile or config.height % tile:
        raise ValueError(
            f"chiplet_tile {tile} must divide both dimensions of the "
            f"{config.width}x{config.height} grid"
        )


def _prepare_express(config) -> None:
    _prepare_grid2d(config)
    if config.express_stride < 2:
        raise ValueError(
            f"express_stride must be at least 2, got {config.express_stride}"
        )


def _domains_grid2d(config, topology, num_domains: int) -> DomainMap:
    """Rectangular k x k clusters with closed-form center hubs (the
    ``Mesh2D.central_node`` rule per cluster)."""
    domain_of, hubs = grid2d_domains(
        config.width, config.height, num_domains
    )
    return DomainMap(domain_of, hubs, topology.central_node())


def _domains_graph_grid2d(config, topology, num_domains: int) -> DomainMap:
    """Grid clusters on a graph-described 2D layout; hubs by
    intra-domain distance minimization (express links shift centers)."""
    domain_of, _ = grid2d_domains(config.width, config.height, num_domains)
    hubs = graph_domain_hubs(topology, domain_of)
    return DomainMap(domain_of, hubs, topology.central_node())


def _domains_grid3d(config, topology, num_domains: int) -> DomainMap:
    """Layer bands along z (one per layer by default)."""
    domain_of = grid3d_domains(
        config.width, config.height, config.depth, num_domains
    )
    hubs = graph_domain_hubs(topology, domain_of)
    return DomainMap(domain_of, hubs, topology.central_node())


def _domains_chiplet(config, topology, num_domains: int) -> DomainMap:
    """Tile-aligned clusters (one domain per chiplet by default);
    domains never split a hardware tile."""
    domain_of, _ = grid2d_domains(
        config.width, config.height, num_domains,
        multiple=config.chiplet_tile,
    )
    hubs = graph_domain_hubs(topology, domain_of)
    return DomainMap(domain_of, hubs, topology.central_node())


_ENTRIES = (
    TopologyEntry(
        "mesh", "2D mesh, XY routing (the paper's baseline, Table 2)",
        _prepare_grid2d,
        lambda config: Mesh2D(config.width, config.height),
        domains=_domains_grid2d,
    ),
    TopologyEntry(
        "torus", "2D torus with shorter-wrap XY routing (paper §6.3)",
        _prepare_grid2d,
        lambda config: Torus2D(config.width, config.height),
        domains=_domains_grid2d,
    ),
    TopologyEntry(
        "mesh3d", "3D mesh, XYZ dimension-order routing",
        _prepare_grid3d,
        lambda config: zoo.mesh3d(config.width, config.height, config.depth),
        domains=_domains_grid3d,
    ),
    TopologyEntry(
        "torus3d", "3D torus, XYZ dimension-order routing",
        _prepare_grid3d,
        lambda config: zoo.torus3d(config.width, config.height, config.depth),
        domains=_domains_grid3d,
    ),
    TopologyEntry(
        "chiplet",
        "2D-mesh chiplets bridged by hub routers (--chiplet-tile)",
        _prepare_chiplet,
        lambda config: zoo.chiplet(
            config.width, config.height, config.chiplet_tile
        ),
        domains=_domains_chiplet,
    ),
    TopologyEntry(
        "express",
        "2D mesh plus long-range express channels (--express-stride)",
        _prepare_express,
        lambda config: zoo.express(
            config.width, config.height, config.express_stride
        ),
        domains=_domains_graph_grid2d,
    ),
)

#: Registry table; insertion order is the canonical CLI/choices order.
TOPOLOGIES = {entry.name: entry for entry in _ENTRIES}

#: Canonical name tuple for CLI ``choices`` and error messages.
TOPOLOGY_NAMES = tuple(entry.name for entry in _ENTRIES)


def prepare_config(config) -> None:
    """Validate/prepare *config*'s topology geometry in place."""
    entry = TOPOLOGIES.get(config.topology)
    if entry is None:
        raise ValueError(
            f"unknown topology {config.topology!r}; "
            f"expected one of {TOPOLOGY_NAMES}"
        )
    entry.prepare(config)


def build_topology(config):
    """Construct the topology a prepared config describes."""
    return TOPOLOGIES[config.topology].build(config)


def domain_map(config, topology, num_domains: int = 0) -> DomainMap:
    """Partition *topology* into control domains for *config*.

    Dispatches to the registered layout's natural clustering rule
    (see :class:`TopologyEntry.domains`); ``num_domains == 0`` lets the
    layout pick (grid: ~sqrt-side clusters; 3D: one domain per layer;
    chiplet: one domain per tile).  The returned
    :class:`~repro.control.domains.DomainMap` exposes ``domain_of`` and
    per-domain hubs consistent with ``topology.central_node()``.
    """
    entry = TOPOLOGIES.get(config.topology)
    if entry is None or entry.domains is None:
        raise ValueError(
            f"topology {config.topology!r} has no control-domain "
            f"partition rule"
        )
    return entry.domains(config, topology, num_domains)
