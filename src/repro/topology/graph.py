"""Graph-described topologies: the layout is data, not code.

`Mesh2D` bakes its layout into closed-form XY arithmetic; everything the
router engine actually consumes, though, is a handful of arrays — who is
my neighbor on port *p*, which port do I arrive on over there, how long
is that wire, and which output port brings a flit closer to its
destination.  :class:`GraphTopology` provides exactly those arrays for an
*arbitrary* symmetric graph:

- ``neighbor``/``link_exists``/``reverse_port``/``link_latency``:
  ``(N, P)`` per-directed-link tables, ``P`` = max ports on any router
  (routers with fewer links simply leave slots empty, like mesh edges);
- an all-pairs BFS hop-distance table (the same vectorized BFS the
  fault-aware routing in :mod:`repro.guardrails.faults` runs on the
  healthy subgraph);
- precomputed ``(N, N)`` productive-port tables: for each
  (here, destination) pair, the first and second output ports whose
  neighbor is strictly closer to the destination, scanned in
  ``port_scan_order``.  On a graph-built 2D mesh with x-ports scanned
  first this reproduces XY dimension-order routing exactly (verified
  bit-identical by ``tests/test_topology_zoo.py``); on a 3D grid it
  yields XYZ order; on irregular layouts it degrades gracefully to
  shortest-hop routing.

Links are undirected at construction time (``add_link`` wires both
directions, with equal latency) because the deflection router's no-drop
guarantee counts on in-degree == out-degree at every router.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.topology.mesh import INVALID_PORT

__all__ = ["GraphTopology", "UNREACHABLE", "MAX_GRAPH_PORTS"]

#: Sentinel hop distance for unreachable pairs (matches the fault model).
UNREACHABLE = np.iinfo(np.int32).max

#: Upper bound on per-router ports; keeps ``reverse_port`` in int8 and
#: chaos-event validation meaningful.
MAX_GRAPH_PORTS = 32


class GraphTopology:
    """An explicit-graph topology with precomputed routing tables.

    Build one by constructing, wiring links with :meth:`add_link`, then
    calling :meth:`finalize` (which validates symmetry + connectivity and
    computes the distance/route tables).  The generator zoo in
    :mod:`repro.topology.zoo` does this for every supported layout.
    """

    wraps = False
    #: Graph topologies have no 2D coordinate system; locality samplers
    #: fall back to the distance-bucket sampler.
    grid2d = False

    def __init__(
        self,
        num_nodes: int,
        num_ports: int,
        name: str = "graph",
        port_scan_order: Sequence[int] = (),
    ):
        if num_nodes < 2:
            raise ValueError("a topology needs at least 2 nodes")
        if not 1 <= num_ports <= MAX_GRAPH_PORTS:
            raise ValueError(
                f"num_ports must be in [1, {MAX_GRAPH_PORTS}], got {num_ports}"
            )
        self.name = name
        self.num_nodes = int(num_nodes)
        self.num_ports = int(num_ports)
        self.neighbor = np.full((num_nodes, num_ports), -1, dtype=np.int32)
        self.reverse_port = np.full((num_nodes, num_ports), -1, dtype=np.int8)
        self.link_latency = np.ones((num_nodes, num_ports), dtype=np.int32)
        order = tuple(int(p) for p in port_scan_order) or tuple(range(num_ports))
        if sorted(order) != list(range(num_ports)):
            raise ValueError(
                f"port_scan_order must be a permutation of 0..{num_ports - 1}"
            )
        self.port_scan_order = order
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(self, u: int, port_u: int, v: int, port_v: int, latency: int = 1):
        """Wire the undirected link ``u.port_u <-> v.port_v``.

        Both directions are installed with the same *latency* (extra wire
        cycles; 1 = a normal single-hop link).
        """
        if self._finalized:
            raise RuntimeError("cannot add links after finalize()")
        n, p = self.num_nodes, self.num_ports
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"link endpoints ({u}, {v}) outside 0..{n - 1}")
        if u == v:
            raise ValueError(f"self-link at node {u}")
        if not (0 <= port_u < p and 0 <= port_v < p):
            raise ValueError(f"link ports ({port_u}, {port_v}) outside 0..{p - 1}")
        if latency < 1:
            raise ValueError(f"link latency must be >= 1, got {latency}")
        for node, port in ((u, port_u), (v, port_v)):
            if self.neighbor[node, port] >= 0:
                raise ValueError(
                    f"port {port} of node {node} already wired to "
                    f"node {int(self.neighbor[node, port])}"
                )
        self.neighbor[u, port_u] = v
        self.neighbor[v, port_v] = u
        self.reverse_port[u, port_u] = port_v
        self.reverse_port[v, port_v] = port_u
        self.link_latency[u, port_u] = latency
        self.link_latency[v, port_v] = latency

    def has_link(self, u: int, v: int) -> bool:
        """True if any port of *u* is wired to *v* (generator dedup)."""
        return bool((self.neighbor[u] == v).any())

    def finalize(self) -> "GraphTopology":
        """Freeze the graph and precompute routing state."""
        if self._finalized:
            return self
        self.link_exists = self.neighbor >= 0
        self.num_links = int(self.link_exists.sum())
        self.ports_per_node = self.link_exists.sum(axis=1).astype(np.int32)
        if (self.ports_per_node == 0).any():
            isolated = int(np.flatnonzero(self.ports_per_node == 0)[0])
            raise ValueError(f"{self.name}: node {isolated} has no links")
        self._dist = self._all_pairs_distance()
        if (self._dist == UNREACHABLE).any():
            raise ValueError(f"{self.name}: topology is not connected")
        self._ecc = self._dist.max(axis=1).astype(np.int32)
        self._build_route_tables()
        self._finalized = True
        return self

    def _all_pairs_distance(self) -> np.ndarray:
        """Vectorized all-pairs BFS (same scheme as the fault model)."""
        n = self.num_nodes
        neighbor = self.neighbor.astype(np.int64)
        dist = np.full((n, n), UNREACHABLE, dtype=np.int32)
        reached = np.eye(n, dtype=bool)
        dist[reached] = 0
        frontier = reached.copy()
        hops = 0
        while frontier.any():
            hops += 1
            nxt = np.zeros((n, n), dtype=bool)
            for port in range(self.num_ports):
                ok = self.link_exists[:, port]
                if ok.any():
                    nxt[:, neighbor[ok, port]] |= frontier[:, ok]
            frontier = nxt & ~reached
            dist[frontier] = hops
            reached |= frontier
        return dist

    def _build_route_tables(self) -> None:
        """Productive-port tables: first/second port strictly closer to
        each destination, ports scanned in ``port_scan_order``."""
        n = self.num_nodes
        dist = self._dist
        primary = np.full((n, n), INVALID_PORT, dtype=np.int8)
        secondary = np.full((n, n), INVALID_PORT, dtype=np.int8)
        for port in self.port_scan_order:
            has = self.link_exists[:, port]
            if not has.any():
                continue
            nbr_dist = np.full((n, n), UNREACHABLE, dtype=np.int32)
            nbr_dist[has] = dist[self.neighbor[has, port]]
            productive = nbr_dist < dist
            first = productive & (primary == INVALID_PORT)
            primary[first] = port
            second = productive & ~first & (secondary == INVALID_PORT)
            secondary[second] = port
        self._route_primary = primary
        self._route_secondary = secondary

    # ------------------------------------------------------------------
    # Routing API (mirrors Mesh2D)
    # ------------------------------------------------------------------
    def distance(self, src, dest) -> np.ndarray:
        """BFS hop distance between node arrays or scalars."""
        return self._dist[np.asarray(src), np.asarray(dest)]

    def distance_table(self) -> np.ndarray:
        """The full ``(N, N)`` hop-distance table."""
        return self._dist

    def max_distance(self) -> int:
        """Network diameter in hops."""
        return int(self._ecc.max())

    def eccentricity(self) -> np.ndarray:
        """``(N,)`` max hop distance from each node."""
        return self._ecc

    def productive_ports(
        self, src: np.ndarray, dest: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """First/second productive output ports for *src* -> *dest*.

        Same contract as :meth:`Mesh2D.productive_ports`: ``INVALID_PORT``
        marks "already local" (primary) / "only one productive direction"
        (secondary).
        """
        src = np.asarray(src)
        dest = np.asarray(dest)
        return self._route_primary[src, dest], self._route_secondary[src, dest]

    def central_node(self) -> int:
        """Hub placement: the node minimizing total distance to all
        others (lowest id on ties, deterministically)."""
        return int(np.argmin(self._dist.sum(axis=1, dtype=np.int64)))

    def __repr__(self) -> str:
        return (
            f"GraphTopology({self.name}, {self.num_nodes} nodes, "
            f"{self.num_ports} ports)"
        )
