"""Network topologies.

Closed-form grids (``Mesh2D``/``Torus2D``, the paper's §6.3 pair) plus
the graph-described zoo (3D grids, chiplet, express — see
:mod:`repro.topology.zoo`), all selectable by name through
:mod:`repro.topology.registry`.
"""

from repro.topology.graph import GraphTopology
from repro.topology.mesh import (
    EAST,
    INVALID_PORT,
    Mesh2D,
    NORTH,
    NUM_PORTS,
    PORT_NAMES,
    SOUTH,
    WEST,
    opposite_port,
)
from repro.topology.registry import (
    TOPOLOGIES,
    TOPOLOGY_NAMES,
    TopologyEntry,
    build_topology,
    prepare_config,
)
from repro.topology.torus import Torus2D

__all__ = [
    "Mesh2D",
    "Torus2D",
    "GraphTopology",
    "TopologyEntry",
    "TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "build_topology",
    "prepare_config",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "NUM_PORTS",
    "INVALID_PORT",
    "PORT_NAMES",
    "opposite_port",
]
