"""Network topologies: 2D mesh and 2D torus with XY routing support."""

from repro.topology.mesh import (
    EAST,
    INVALID_PORT,
    Mesh2D,
    NORTH,
    NUM_PORTS,
    PORT_NAMES,
    SOUTH,
    WEST,
    opposite_port,
)
from repro.topology.torus import Torus2D

__all__ = [
    "Mesh2D",
    "Torus2D",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "NUM_PORTS",
    "INVALID_PORT",
    "PORT_NAMES",
    "opposite_port",
]
