"""2D mesh topology with XY (dimension-order) routing helpers.

The mesh is the paper's baseline topology (Table 2).  Nodes are numbered
row-major: node ``n`` sits at ``(x, y) = (n % width, n // width)``.  Each
router has up to four inter-router ports; edge routers have fewer, which
matters for deflection routing (a flit can only be deflected onto a link
that exists).

All lookups used in the per-cycle hot path are precomputed numpy arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "Mesh2D",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "NUM_PORTS",
    "INVALID_PORT",
    "PORT_NAMES",
    "opposite_port",
]

# Port indices.  NORTH decreases y, SOUTH increases y (row-major layout).
NORTH = 0
EAST = 1
SOUTH = 2
WEST = 3
NUM_PORTS = 4
INVALID_PORT = -1
PORT_NAMES = ("N", "E", "S", "W")

_OPPOSITE = np.array([SOUTH, WEST, NORTH, EAST], dtype=np.int8)


def opposite_port(port: int) -> int:
    """Return the port on which a flit sent out of *port* arrives."""
    return int(_OPPOSITE[port])


class Mesh2D:
    """A ``width`` x ``height`` 2D mesh.

    Attributes precomputed for vectorized routing:

    - ``neighbor``: ``(N, 4)`` int32, neighbor node id per port, -1 if the
      link does not exist (mesh edge).
    - ``link_exists``: ``(N, 4)`` bool mask of real links.
    - ``coord_x`` / ``coord_y``: ``(N,)`` node coordinates.
    - ``num_links``: number of directed inter-router links.
    """

    wraps = False
    #: 2D coordinate grid: locality samplers may use the axis-split
    #: sampling path (coord_x/coord_y + width/height) on this topology.
    grid2d = True
    num_ports = NUM_PORTS

    def __init__(self, width: int, height: int = 0):
        if width < 2:
            raise ValueError("mesh width must be at least 2")
        if height == 0:
            height = width
        if height < 2:
            raise ValueError("mesh height must be at least 2")
        self.width = width
        self.height = height
        self.num_nodes = width * height

        nodes = np.arange(self.num_nodes, dtype=np.int32)
        self.coord_x = (nodes % width).astype(np.int32)
        self.coord_y = (nodes // width).astype(np.int32)

        self.neighbor = np.full((self.num_nodes, NUM_PORTS), -1, dtype=np.int32)
        self._fill_neighbors()
        self.link_exists = self.neighbor >= 0
        self.num_links = int(self.link_exists.sum())
        self.ports_per_node = self.link_exists.sum(axis=1).astype(np.int32)
        self.opposite = _OPPOSITE
        # Per-(node, port) form of ``opposite``: on a grid every node
        # shares the same reverse-port row, but the router engine indexes
        # per link so graph topologies with irregular ports work too.
        self.reverse_port = np.broadcast_to(
            _OPPOSITE, (self.num_nodes, NUM_PORTS)
        ).copy()
        # Per-directed-link extra wire latency in cycles; uniform on a
        # grid, overridden by express/chiplet layouts for long links.
        self.link_latency = np.ones((self.num_nodes, NUM_PORTS), dtype=np.int32)

    def _fill_neighbors(self) -> None:
        n = np.arange(self.num_nodes)
        x, y = self.coord_x, self.coord_y
        self.neighbor[y > 0, NORTH] = n[y > 0] - self.width
        self.neighbor[y < self.height - 1, SOUTH] = n[y < self.height - 1] + self.width
        self.neighbor[x > 0, WEST] = n[x > 0] - 1
        self.neighbor[x < self.width - 1, EAST] = n[x < self.width - 1] + 1

    # ------------------------------------------------------------------
    # Coordinate helpers
    # ------------------------------------------------------------------
    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def coords(self, node: int) -> Tuple[int, int]:
        """Coordinates ``(x, y)`` of *node*."""
        return int(self.coord_x[node]), int(self.coord_y[node])

    def central_node(self) -> int:
        """The node used as the shared-resource hub (memory controller)."""
        return self.node_at(self.width // 2, self.height // 2)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def deltas(self, src: np.ndarray, dest: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Signed per-axis hop counts from *src* toward *dest*.

        In a mesh this is the plain coordinate difference; the torus
        overrides it to pick the shorter wrap-around direction.
        """
        dx = self.coord_x[dest] - self.coord_x[src]
        dy = self.coord_y[dest] - self.coord_y[src]
        return dx, dy

    def distance(self, src, dest) -> np.ndarray:
        """Hop (Manhattan) distance between node arrays or scalars."""
        src = np.asarray(src)
        dest = np.asarray(dest)
        dx, dy = self.deltas(src, dest)
        return np.abs(dx) + np.abs(dy)

    def max_distance(self) -> int:
        """Network diameter in hops."""
        return (self.width - 1) + (self.height - 1)

    def productive_ports(
        self, src: np.ndarray, dest: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """XY-routing port preferences for flits at *src* heading to *dest*.

        Returns ``(primary, secondary)`` port arrays.  The primary port is
        the X-direction port while the X offset is non-zero (XY routing:
        "a flit is first routed along the x-direction"), then the Y port.
        The secondary port is the other productive direction, used by the
        deflection router as second choice before misrouting; it is
        ``INVALID_PORT`` when only one axis is unresolved.
        """
        dx, dy = self.deltas(src, dest)
        x_port = np.where(dx > 0, EAST, WEST).astype(np.int8)
        y_port = np.where(dy > 0, SOUTH, NORTH).astype(np.int8)
        primary = np.where(
            dx != 0, x_port, np.where(dy != 0, y_port, INVALID_PORT)
        ).astype(np.int8)
        secondary = np.where((dx != 0) & (dy != 0), y_port, INVALID_PORT).astype(np.int8)
        return primary, secondary

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.width}x{self.height})"
