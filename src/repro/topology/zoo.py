"""The topology generator zoo.

Each generator returns a finalized :class:`~repro.topology.graph.GraphTopology`.
Port numbering always starts with the 2D-mesh convention (0=N, 1=E, 2=S,
3=W) so deflection fallbacks (lowest free port) behave like the classic
mesh wherever the layouts overlap; extra dimensions/link classes claim
ports 4+.

Layouts (ROADMAP open item 2; extends the paper's §6.3 mesh-vs-torus
comparison):

- ``mesh3d`` / ``torus3d``: width x height x depth grids, node id
  ``z*w*h + y*w + x``, z-axis ports UP (z+1) and DOWN (z-1).  The
  port-scan order (x, then y, then z) makes the BFS route tables
  reproduce XYZ dimension-order routing.
- ``chiplet``: the grid partitioned into ``tile x tile`` chiplets, each
  an isolated 2D mesh; the center node of each chiplet is a hub with
  bridge links (ports 4-7, latency = tile size) to the four neighboring
  chiplets' hubs — clusters of meshes joined by long inter-chiplet
  wires.
- ``express``: a 2D mesh plus express channels (ports 4-7) skipping
  ``stride`` nodes along each row and column at stride intervals, with
  latency = stride.  Express links collapse hop counts on long paths,
  the classic express-cube construction.
"""

from __future__ import annotations

from repro.topology.graph import GraphTopology
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

__all__ = [
    "UP",
    "DOWN",
    "graph_mesh2d",
    "mesh3d",
    "torus3d",
    "chiplet",
    "express",
]

#: z-axis ports for the 3D grids.
UP = 4      # toward z + 1
DOWN = 5    # toward z - 1

#: XY scan order: x-direction ports first, then y (mesh XY routing).
_SCAN_XY = (EAST, WEST, NORTH, SOUTH)
#: XYZ scan order for the 3D grids.
_SCAN_XYZ = (EAST, WEST, NORTH, SOUTH, UP, DOWN)

# Chiplet bridge ports (hub routers only) and express-channel ports,
# mirroring the N/E/S/W convention of ports 0-3.
BRIDGE_N, BRIDGE_E, BRIDGE_S, BRIDGE_W = 4, 5, 6, 7
EXP_E, EXP_W, EXP_S, EXP_N = 4, 5, 6, 7


def _check_dims(name, **dims):
    for key, value in sorted(dims.items()):
        if value < 2:
            raise ValueError(f"{name} {key} must be at least 2, got {value}")


def graph_mesh2d(width: int, height: int) -> GraphTopology:
    """A 2D mesh as a GraphTopology.

    Routing-equivalent to :class:`~repro.topology.mesh.Mesh2D` (the
    bit-identity test in ``tests/test_topology_zoo.py`` pins this); used
    as the equivalence witness for the graph machinery, not exposed in
    the CLI zoo.
    """
    _check_dims("mesh", width=width, height=height)
    topo = GraphTopology(
        width * height, 4, name=f"graph_mesh2d({width}x{height})",
        port_scan_order=_SCAN_XY,
    )
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x < width - 1:
                topo.add_link(node, EAST, node + 1, WEST)
            if y < height - 1:
                topo.add_link(node, SOUTH, node + width, NORTH)
    return topo.finalize()


def _grid3d(name, width, height, depth, wrap):
    _check_dims(name, width=width, height=height, depth=depth)
    n_layer = width * height
    topo = GraphTopology(
        n_layer * depth, 6, name=f"{name}({width}x{height}x{depth})",
        port_scan_order=_SCAN_XYZ,
    )
    for z in range(depth):
        for y in range(height):
            for x in range(width):
                node = z * n_layer + y * width + x
                if x < width - 1:
                    topo.add_link(node, EAST, node + 1, WEST)
                elif wrap and width > 2:
                    topo.add_link(node, EAST, node - (width - 1), WEST)
                if y < height - 1:
                    topo.add_link(node, SOUTH, node + width, NORTH)
                elif wrap and height > 2:
                    topo.add_link(node, SOUTH, node - (height - 1) * width, NORTH)
                if z < depth - 1:
                    topo.add_link(node, UP, node + n_layer, DOWN)
                elif wrap and depth > 2:
                    topo.add_link(node, UP, node - (depth - 1) * n_layer, DOWN)
    topo.width, topo.height, topo.depth = width, height, depth
    return topo.finalize()


def mesh3d(width: int, height: int, depth: int) -> GraphTopology:
    """``width x height x depth`` 3D mesh with XYZ routing order."""
    return _grid3d("mesh3d", width, height, depth, wrap=False)


def torus3d(width: int, height: int, depth: int) -> GraphTopology:
    """3D torus.  Like :class:`~repro.topology.torus.Torus2D`, a
    length-2 dimension keeps only the forward link (both wrap directions
    would reach the same node)."""
    return _grid3d("torus3d", width, height, depth, wrap=True)


def chiplet(width: int, height: int, tile: int) -> GraphTopology:
    """Hierarchical chiplet layout: ``tile x tile`` 2D-mesh clusters,
    hub routers bridged to neighboring clusters with latency-``tile``
    links."""
    _check_dims("chiplet", width=width, height=height, tile=tile)
    if width % tile or height % tile:
        raise ValueError(
            f"chiplet tile size {tile} must divide both grid dimensions "
            f"({width}x{height})"
        )
    topo = GraphTopology(
        width * height, 8, name=f"chiplet({width}x{height}/t{tile})",
        port_scan_order=(EAST, WEST, NORTH, SOUTH,
                         BRIDGE_E, BRIDGE_W, BRIDGE_N, BRIDGE_S),
    )
    # Intra-chiplet 2D meshes: mesh links that stay inside a tile.
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x % tile != tile - 1:
                topo.add_link(node, EAST, node + 1, WEST)
            if y % tile != tile - 1:
                topo.add_link(node, SOUTH, node + width, NORTH)
    # Inter-chiplet bridges between hub routers (tile centers).
    tiles_x, tiles_y = width // tile, height // tile

    def hub(tx, ty):
        return (ty * tile + tile // 2) * width + tx * tile + tile // 2

    for ty in range(tiles_y):
        for tx in range(tiles_x):
            if tx < tiles_x - 1:
                topo.add_link(hub(tx, ty), BRIDGE_E,
                              hub(tx + 1, ty), BRIDGE_W, latency=tile)
            if ty < tiles_y - 1:
                topo.add_link(hub(tx, ty), BRIDGE_S,
                              hub(tx, ty + 1), BRIDGE_N, latency=tile)
    topo.width, topo.height, topo.tile = width, height, tile
    return topo.finalize()


def express(width: int, height: int, stride: int) -> GraphTopology:
    """2D mesh plus express channels skipping *stride* nodes along each
    row and column, at stride intervals, with latency = stride.

    If the grid is too small for any express link the layout degrades to
    a plain mesh (still valid — useful for tiny smoke configs).
    """
    _check_dims("express", width=width, height=height, stride=stride)
    topo = GraphTopology(
        width * height, 8, name=f"express({width}x{height}/s{stride})",
        port_scan_order=(EXP_E, EXP_W, EXP_N, EXP_S, EAST, WEST, NORTH, SOUTH),
    )
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x < width - 1:
                topo.add_link(node, EAST, node + 1, WEST)
            if y < height - 1:
                topo.add_link(node, SOUTH, node + width, NORTH)
    for y in range(height):
        for x in range(0, width - stride, stride):
            topo.add_link(y * width + x, EXP_E,
                          y * width + x + stride, EXP_W, latency=stride)
    for x in range(width):
        for y in range(0, height - stride, stride):
            topo.add_link(y * width + x, EXP_S,
                          (y + stride) * width + x, EXP_N, latency=stride)
    topo.width, topo.height, topo.stride = width, height, stride
    return topo.finalize()
