"""2D torus topology (mesh with wrap-around links).

The paper notes (§6.3) that scalability trends hold in a torus and that
the torus yields roughly 10% higher throughput for all networks; the
`bench_sec63_torus` benchmark reproduces that comparison.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.topology.mesh import EAST, Mesh2D, NORTH, SOUTH, WEST

__all__ = ["Torus2D"]


class Torus2D(Mesh2D):
    """A ``width`` x ``height`` 2D torus.

    Every router has all four links, and XY routing picks the shorter
    wrap direction on each axis.
    """

    wraps = True

    def _fill_neighbors(self) -> None:
        x, y = self.coord_x, self.coord_y
        self.neighbor[:, NORTH] = ((y - 1) % self.height) * self.width + x
        self.neighbor[:, SOUTH] = ((y + 1) % self.height) * self.width + x
        self.neighbor[:, WEST] = y * self.width + (x - 1) % self.width
        self.neighbor[:, EAST] = y * self.width + (x + 1) % self.width
        if self.width == 2:
            # Degenerate: both x-directions reach the same node; keep one.
            self.neighbor[:, WEST] = -1
        if self.height == 2:
            self.neighbor[:, NORTH] = -1

    def deltas(self, src: np.ndarray, dest: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        dx = self.coord_x[dest] - self.coord_x[src]
        dy = self.coord_y[dest] - self.coord_y[src]
        half_w, half_h = self.width // 2, self.height // 2
        dx = np.where(dx > half_w, dx - self.width, dx)
        dx = np.where(dx < -half_w, dx + self.width, dx)
        dy = np.where(dy > half_h, dy - self.height, dy)
        dy = np.where(dy < -half_h, dy + self.height, dy)
        if self.width == 2:
            # Only the EAST link exists on a width-2 torus (see above).
            dx = np.abs(dx)
        if self.height == 2:
            dy = np.abs(dy)
        return dx, dy

    def max_distance(self) -> int:
        return self.width // 2 + self.height // 2
