"""Per-campaign outcome report attached to :class:`SimulationResult`.

The report is a plain value object (JSON scalars only) so it survives
the same pickle / ``to_dict`` round-trips the rest of the result does —
the content-addressed result cache stores chaos runs like any other.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["ChaosEventRecord", "ChaosReport"]


@dataclass(frozen=True)
class ChaosEventRecord:
    """What happened to one scheduled chaos event.

    ``cycle`` is the scheduled cycle; ``applied_cycle`` the cycle the
    event actually took effect (down events drain in-flight traffic off
    the target first, so it can trail the schedule), ``-1`` while never
    applied.  ``recovery_cycles`` is the measured time from application
    until the network's latency/deflection returned within tolerance of
    the pre-fault baseline; ``-1`` means recovery was not observed
    before the run ended (or the event needs no recovery probe).
    """

    cycle: int
    kind: str
    node: int = -1
    port: int = -1
    rate: float = 0.0
    applied_cycle: int = -1
    skipped: bool = False
    reason: str = ""
    recovery_cycles: int = -1

    def to_dict(self) -> dict:
        return {
            "cycle": int(self.cycle),
            "kind": self.kind,
            "node": int(self.node),
            "port": int(self.port),
            "rate": float(self.rate),
            "applied_cycle": int(self.applied_cycle),
            "skipped": bool(self.skipped),
            "reason": self.reason,
            "recovery_cycles": int(self.recovery_cycles),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosEventRecord":
        return cls(**data)


@dataclass(frozen=True)
class ChaosReport:
    """Aggregate outcome of one chaos campaign."""

    events: Tuple[ChaosEventRecord, ...] = ()
    #: cycles during which at least one fault was in force (or pending
    #: drain) somewhere in the system
    degraded_cycles: int = 0
    #: flits delivered during those degraded cycles
    degraded_flits: int = 0
    #: queued-but-never-injected packets discarded when their source
    #: router fail-stopped (accounting only — never in-network flits)
    orphaned_flits: int = 0
    controller_down_epochs: int = 0
    controller_failovers: int = 0
    total_cycles: int = 0

    @property
    def availability(self) -> float:
        """Fraction of the run with the full fault-free topology."""
        if self.total_cycles <= 0:
            return 1.0
        return 1.0 - self.degraded_cycles / self.total_cycles

    @property
    def applied_events(self) -> int:
        return sum(1 for e in self.events if e.applied_cycle >= 0)

    @property
    def recovered_events(self) -> int:
        return sum(1 for e in self.events if e.recovery_cycles >= 0)

    def max_recovery_cycles(self) -> int:
        """Worst observed recovery time, ``-1`` when nothing recovered."""
        times = [e.recovery_cycles for e in self.events if e.recovery_cycles >= 0]
        return max(times) if times else -1

    def to_dict(self) -> dict:
        return {
            "events": [e.to_dict() for e in self.events],
            "degraded_cycles": int(self.degraded_cycles),
            "degraded_flits": int(self.degraded_flits),
            "orphaned_flits": int(self.orphaned_flits),
            "controller_down_epochs": int(self.controller_down_epochs),
            "controller_failovers": int(self.controller_failovers),
            "total_cycles": int(self.total_cycles),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosReport":
        return cls(
            events=tuple(
                ChaosEventRecord.from_dict(e) for e in data["events"]
            ),
            degraded_cycles=data["degraded_cycles"],
            degraded_flits=data["degraded_flits"],
            orphaned_flits=data["orphaned_flits"],
            controller_down_epochs=data["controller_down_epochs"],
            controller_failovers=data["controller_failovers"],
            total_cycles=data["total_cycles"],
        )

    def summary(self) -> str:
        applied = self.applied_events
        recovered = self.recovered_events
        parts = [
            f"{applied}/{len(self.events)} events applied",
            f"{recovered} recovered"
            + (
                f" (worst {self.max_recovery_cycles()}cy)"
                if recovered
                else ""
            ),
            f"availability {self.availability:.3f}",
        ]
        if self.degraded_cycles:
            parts.append(
                f"{self.degraded_flits} flits delivered over "
                f"{self.degraded_cycles} degraded cycles"
            )
        if self.controller_down_epochs:
            parts.append(
                f"controller down {self.controller_down_epochs} epoch(s)"
            )
        if self.controller_failovers:
            parts.append(f"{self.controller_failovers} failover(s)")
        return "; ".join(parts)


def _record_with(record: ChaosEventRecord, **changes) -> ChaosEventRecord:
    """Functional update helper (records are frozen)."""
    return replace(record, **changes)
