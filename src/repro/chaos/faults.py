"""Dynamic extension of the static guardrail fault model.

:class:`~repro.guardrails.faults.FaultModel` draws one fault set before
cycle 0 and never changes it.  :class:`DynamicFaultModel` keeps the
same interface the network/checker stack consumes (``link_up``,
``alive_routers``, ``remap``, ``healthy_distance``, ``transient_down``)
but supports **in-place** mid-run transitions.

In-place matters: at construction time the network aliases
``fault_model.link_up`` (``NocModel.link_up`` *is* this array), the
invariant checker holds a raveled view of it (``_allowed_slots``) and a
reference to ``alive_routers``.  Every mutation here therefore writes
through those shared arrays rather than rebinding them, so the whole
stack observes a topology change the instant it happens with no
re-wiring hooks for the hot arrays.  (Routing tables — the healthy
distance cache — *are* rebuilt via an explicit
``RouterEngine.on_topology_change`` call, made by the chaos engine
after each transition.)

The model also tracks a **quiesce** mask: links the chaos engine is
draining before a hard down.  Quiescing links stay up (losslessness —
a bufferless router may still deflect over them as a last resort) but
are excluded from preferred allocation by folding them into
:meth:`transient_down`, which both router engines already honor.
"""

from __future__ import annotations

import numpy as np

from repro.guardrails.faults import FaultConfig, FaultModel

__all__ = ["DynamicFaultModel"]


class DynamicFaultModel(FaultModel):
    """A fault model whose fault set changes while the run is live."""

    def __init__(self, topology, static_config=None):
        if static_config is not None and static_config.any_faults:
            # Start from the statically sampled fault set, then mutate.
            super().__init__(topology, static_config)
            # The static constructor may alias topology.link_exists via
            # `link_exists & ~failed`; that expression always allocates,
            # so link_up is already a private array here.
        else:
            self.topology = topology
            self.config = static_config or FaultConfig()
            self._seed = int(self.config.seed)
            self._canonical = self._canonical_link_ids(topology)
            self.alive_routers = np.ones(topology.num_nodes, dtype=bool)
            # Never alias topology.link_exists: chaos mutates this array.
            self.link_up = topology.link_exists.copy()
            self.num_failed_routers = 0
            self.num_failed_links = 0
            self.remap = np.arange(topology.num_nodes, dtype=np.int64)
            self.transient_fault_rate = self.config.transient_fault_rate
            self._distance = None
        #: healthy links currently draining ahead of a hard down; folded
        #: into transient_down so allocation avoids them while they stay
        #: legal for deflection fallback
        self.quiescing = np.zeros_like(self.link_up)
        #: links taken down by chaos link_down events (vs. static faults
        #: or router-down side effects) — link_up restores consult this
        self._chaos_link_down = np.zeros_like(self.link_up)
        #: routers taken down by chaos (only these may be revived)
        self._chaos_router_down = np.zeros(topology.num_nodes, dtype=bool)
        #: the pre-chaos baseline topology (static faults applied)
        self._static_link_up = self.link_up.copy()
        self._base_transient = float(self.transient_fault_rate)

    # ------------------------------------------------------------------
    # Safety probes
    # ------------------------------------------------------------------
    @property
    def any_chaos_faults(self) -> bool:
        """Any chaos-induced (non-static) fault currently in effect?"""
        return bool(
            self._chaos_link_down.any() or self._chaos_router_down.any()
        )

    @property
    def any_quiescing(self) -> bool:
        """Any link currently draining ahead of a hard down?"""
        return bool(self.quiescing.any())

    def link_would_disconnect(self, node: int, port: int) -> bool:
        """Would downing (node, port) split the live routers?"""
        link_up = self.link_up.copy()
        self._clear_link(link_up, node, port)
        return not self._connected(
            self.alive_routers, link_up,
            self.topology.neighbor.astype(np.int64),
        )

    def router_would_disconnect(self, node: int) -> bool:
        """Would fail-stopping *node* split the remaining live routers?"""
        alive = self.alive_routers.copy()
        alive[node] = False
        if not alive.any():
            return True
        link_up = self.link_up.copy()
        self._clear_router_links(link_up, node)
        return not self._connected(
            alive, link_up, self.topology.neighbor.astype(np.int64)
        )

    # ------------------------------------------------------------------
    # Quiesce (drain) control
    # ------------------------------------------------------------------
    def quiesce_link(self, node: int, port: int) -> None:
        """Stop preferring (node, port) in both directions."""
        self.quiescing[node, port] = True
        neighbor = int(self.topology.neighbor[node, port])
        self.quiescing[neighbor, int(self.topology.reverse_port[node, port])] = True
        self._distance = None

    def quiesce_router_inbound(self, node: int) -> None:
        """Stop sending *toward* router ``node`` (drain it outward).

        Only inbound directions quiesce: the dying router keeps all of
        its own output links preferred so buffered flits can drain out.
        Quiescing both directions would deadlock a buffered router whose
        only escape ports were de-preferred.
        """
        neighbor = self.topology.neighbor
        for port in range(self.topology.num_ports):
            if self.link_up[node, port]:
                m = int(neighbor[node, port])
                self.quiescing[m, int(self.topology.reverse_port[node, port])] = True
        self._distance = None

    def unquiesce_link(self, node: int, port: int) -> None:
        self.quiescing[node, port] = False
        neighbor = int(self.topology.neighbor[node, port])
        self.quiescing[neighbor, int(self.topology.reverse_port[node, port])] = False
        self._distance = None

    def unquiesce_router_inbound(self, node: int) -> None:
        neighbor = self.topology.neighbor
        for port in range(self.topology.num_ports):
            if self.topology.link_exists[node, port]:
                m = int(neighbor[node, port])
                self.quiescing[m, int(self.topology.reverse_port[node, port])] = False
        self._distance = None

    # ------------------------------------------------------------------
    # Topology transitions (all in place)
    # ------------------------------------------------------------------
    def fail_link(self, node: int, port: int) -> None:
        """Hard-down one undirected link (wire already drained)."""
        self._chaos_link_down[node, port] = True
        neighbor = int(self.topology.neighbor[node, port])
        self._chaos_link_down[neighbor, int(self.topology.reverse_port[node, port])] = True
        self._clear_link(self.link_up, node, port)
        self._refresh_counts()

    def restore_link(self, node: int, port: int) -> None:
        """Bring one chaos-downed link back up (both directions)."""
        self._chaos_link_down[node, port] = False
        neighbor = int(self.topology.neighbor[node, port])
        opp = int(self.topology.reverse_port[node, port])
        self._chaos_link_down[neighbor, opp] = False
        if (
            self._static_link_up[node, port]
            and self.alive_routers[node]
            and self.alive_routers[neighbor]
        ):
            self.link_up[node, port] = True
            self.link_up[neighbor, opp] = True
        self._refresh_counts()

    def fail_router(self, node: int) -> None:
        """Fail-stop one router (its traffic already drained)."""
        self._chaos_router_down[node] = True
        self.alive_routers[node] = False
        self._clear_router_links(self.link_up, node)
        self.remap[:] = self._build_remap(self.alive_routers)
        self._refresh_counts()

    def restore_router(self, node: int) -> None:
        """Revive a chaos-killed router and its eligible links."""
        if not self._chaos_router_down[node]:
            return
        self._chaos_router_down[node] = False
        self.alive_routers[node] = True
        neighbor = self.topology.neighbor
        for port in range(self.topology.num_ports):
            if not self._static_link_up[node, port]:
                continue
            if self._chaos_link_down[node, port]:
                continue
            m = int(neighbor[node, port])
            if not self.alive_routers[m]:
                continue
            self.link_up[node, port] = True
            self.link_up[m, int(self.topology.reverse_port[node, port])] = True
        self.remap[:] = self._build_remap(self.alive_routers)
        self._refresh_counts()

    def set_noise(self, rate: float) -> None:
        """Install a transient-noise window (``rate=None``-like reset
        is :meth:`clear_noise`)."""
        self.transient_fault_rate = float(rate)

    def clear_noise(self) -> None:
        self.transient_fault_rate = self._base_transient

    # ------------------------------------------------------------------
    # Drain-aware routing distances
    # ------------------------------------------------------------------
    def _all_pairs_distance(self, link_up=None):
        """Routing distances that steer through-traffic around drains.

        Plain healthy distances still route *through* a quiescing
        region (its links are up), so under sustained load in a
        bufferless mesh the orbiting through-traffic keeps the target's
        wires occupied and the drain never terminates.  Compute
        distances over the graph minus quiescing links instead, then
        restore the full-graph distance *columns* of the quiesce
        targets: traffic addressed **to** a draining router must keep
        productive guidance (its final quiesced hop is admitted by the
        engines' last-hop exception), while everything else detours.
        """
        if link_up is not None or not self.quiescing.any():
            return super()._all_pairs_distance(link_up)
        routed = super()._all_pairs_distance(self.link_up & ~self.quiescing)
        full = super()._all_pairs_distance()
        targets = np.unique(
            self.topology.neighbor[self.quiescing & self.link_up]
        )
        routed[:, targets] = full[:, targets]
        return routed

    # ------------------------------------------------------------------
    # Per-cycle query override
    # ------------------------------------------------------------------
    def transient_down(self, cycle: int):
        """Base transient draw plus the quiesce mask.

        Quiescing links present exactly like transiently faulted ones:
        excluded from preferred allocation, still legal for the
        bufferless deflection fallback, blocking for buffered sends.
        """
        down = super().transient_down(cycle)
        if not self.quiescing.any():
            return down
        quiesced = self.quiescing & self.link_up
        if down is None:
            return quiesced
        return down | quiesced

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _clear_link(self, link_up, node: int, port: int) -> None:
        link_up[node, port] = False
        neighbor = int(self.topology.neighbor[node, port])
        link_up[neighbor, int(self.topology.reverse_port[node, port])] = False

    def _clear_router_links(self, link_up, node: int) -> None:
        neighbor = self.topology.neighbor
        for port in range(self.topology.num_ports):
            if self.topology.link_exists[node, port]:
                m = int(neighbor[node, port])
                link_up[m, int(self.topology.reverse_port[node, port])] = False
        link_up[node, :] = False

    def _refresh_counts(self) -> None:
        self.num_failed_routers = int((~self.alive_routers).sum())
        self.num_failed_links = int(
            (self.topology.link_exists & ~self.link_up).sum() // 2
        )
        self._distance = None
