"""The chaos campaign engine: applies scheduled faults to a live run.

One :class:`ChaosEngine` instance rides inside the simulator's phase
pipeline (the ``chaos`` phase, first in the cycle) and, at each event's
cycle, drives the corresponding transition through the
:class:`~repro.chaos.faults.DynamicFaultModel`, the router engine, and
the control plane.

**Down events are two-phase** so the invariant checker's losslessness
guarantee holds through every transition:

1. *quiesce*: the target's links leave preferred allocation (they
   present like transiently faulted links — still legal for the
   bufferless deflection fallback, blocking for buffered sends) and,
   for a router, its core halts and destinations re-stripe away so the
   population of traffic bound for it strictly shrinks;
2. *hard down*: once every wire/buffer of the target is observed empty
   — and a fresh connectivity check still passes — the fault model
   mutates in place, any straggler packets in NI queues are
   re-addressed, and the routers rebuild healthy-graph routing tables.

Up events apply immediately; an ``up`` arriving while its target is
still draining simply cancels the pending down.  The engine also
closes the loop on *measurement*: per-``recovery_window`` latency and
deflection deltas feed a pre-fault baseline, and each applied event
opens a probe that records how many cycles the network needed to come
back within tolerance (the per-event recovery time in the
:class:`~repro.chaos.report.ChaosReport`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.chaos.controlplane import ResilientController
from repro.chaos.report import ChaosEventRecord, ChaosReport
from repro.chaos.schedule import ChaosConfig, ChaosSchedule
from repro.control.distributed import DistributedController

__all__ = ["ChaosEngine"]


class ChaosEngine:
    """Applies one :class:`ChaosSchedule` to one simulator run."""

    def __init__(self, simulator, config: ChaosConfig):
        self.sim = simulator
        self.config = config
        self.network = simulator.network
        self.fm = simulator.fault_model  # always a DynamicFaultModel
        self.schedule = ChaosSchedule(config, simulator.topology)
        self.records = [
            ChaosEventRecord(
                cycle=e.cycle, kind=e.kind, node=e.node, port=e.port,
                rate=e.rate,
            )
            for e in self.schedule.events
        ]
        self._event_ptr = 0
        self._pending = []  # down events draining toward hard-down
        self._draining = np.zeros(simulator.topology.num_nodes, dtype=bool)
        self.resilient = None
        #: the hub's fault-free home; the live hub is remap[home]
        self._hub_home = simulator.hub
        # Recovery measurement state.
        self._window = config.recovery_window
        self._baseline = None  # (avg latency, deflection rate)
        self._win_start = self._snapshot()
        self._win_disturbed = False
        self._probes = []  # open per-event recovery probes
        # Degraded-service accounting.
        self.degraded_cycles = 0
        self.degraded_flits = 0
        self.orphaned_flits = 0
        self._noise_active = False
        self._prev_ejected = int(self.network.stats.ejected_flits)
        self._prev_disturbed = False

    # ------------------------------------------------------------------
    # Run-time wiring
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Wrap the controller for fail-stop if the campaign needs it.

        Called at the top of ``Simulator.run()`` — after any caller has
        installed its final controller (the CLI overrides the attribute
        post-construction) and before the simulator caches
        ``observes_ejections``.  Idempotent.
        """
        controller = self.sim.controller
        if isinstance(controller, ResilientController):
            self.resilient = controller
            return
        if getattr(controller, "self_resilient", False):
            # Hierarchical controllers carry their own fail-stop
            # semantics (coordinator loss degrades to independent
            # domains); drive fail()/restore() on them directly instead
            # of wrapping.
            self.resilient = controller
            return
        if self.resilient is not None:
            return
        needs = any(
            e.kind in ("controller_down", "controller_up")
            for e in self.schedule.events
        )
        if not needs:
            return
        standby = None
        if self.config.degraded_mode == "failover":
            standby = DistributedController(self.network)
        self.resilient = ResilientController(
            controller,
            mode=self.config.degraded_mode,
            decay=self.config.degraded_decay,
            standby=standby,
        )
        self.sim.controller = self.resilient

    # ------------------------------------------------------------------
    # The per-cycle chaos phase
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if cycle > 0 and cycle % self._window == 0:
            self._close_window(cycle)
        self._account_degraded()
        while self._event_ptr < len(self.schedule.events) and (
            self.schedule.events[self._event_ptr].cycle <= cycle
        ):
            idx = self._event_ptr
            self._event_ptr += 1
            self._apply(cycle, idx, self.schedule.events[idx])
        if self._pending:
            self._advance_drains(cycle)
        self._prev_disturbed = self._is_disturbed()
        if self._prev_disturbed:
            self._win_disturbed = True

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, cycle: int, idx: int, event) -> None:
        handler = {
            "link_down": self._link_down,
            "link_up": self._link_up,
            "router_down": self._router_down,
            "router_up": self._router_up,
            "controller_down": self._controller_down,
            "controller_up": self._controller_up,
            "noise_start": self._noise_start,
            "noise_end": self._noise_end,
        }[event.kind]
        handler(cycle, idx, event)

    def _link_down(self, cycle, idx, event) -> None:
        node, port = event.node, event.port
        if not self.fm.topology.link_exists[node, port]:
            return self._skip(idx, "no such link")
        if self._find_pending("link", node, port) is not None:
            return self._skip(idx, "link already draining")
        if not self.fm.link_up[node, port]:
            return self._skip(idx, "link already out of service")
        if self.fm.link_would_disconnect(node, port):
            return self._skip(idx, "would disconnect live routers")
        self.fm.quiesce_link(node, port)
        # Quiescing reshapes routing (through-traffic detours around the
        # draining link), not just preference masks.
        self.network.on_topology_change()
        self._pending.append(
            {"kind": "link", "node": node, "port": port, "index": idx,
             "since": cycle}
        )

    def _link_up(self, cycle, idx, event) -> None:
        node, port = event.node, event.port
        if not self.fm.topology.link_exists[node, port]:
            return self._skip(idx, "no such link")
        pending = self._find_pending("link", node, port)
        if pending is not None:
            self.fm.unquiesce_link(node, port)
            self.network.on_topology_change()
            self._pending.remove(pending)
            self._skip(pending["index"], "cancelled by link_up before drain")
            return self._applied(idx, cycle, reason="cancelled pending down")
        if not self.fm._chaos_link_down[node, port]:
            return self._skip(idx, "link not down")
        self.fm.restore_link(node, port)
        self.network.on_topology_change()
        self._applied(idx, cycle, probe=True)

    def _router_down(self, cycle, idx, event) -> None:
        r = event.node
        if r >= self.fm.topology.num_nodes:
            return self._skip(idx, "no such router")
        if not self.fm.alive_routers[r]:
            return self._skip(idx, "router already down")
        if self._find_pending("router", r) is not None:
            return self._skip(idx, "router already draining")
        if self.fm.router_would_disconnect(r):
            return self._skip(idx, "would disconnect live routers")
        survivors = self.fm.alive_routers & ~self._draining
        survivors[r] = False
        if not survivors.any():
            return self._skip(idx, "no live router left to re-stripe to")
        # Quiesce inbound only: neighbors stop sending toward r while r
        # keeps every output preferred, so its buffers drain outward.
        self.fm.quiesce_router_inbound(r)
        self.sim.cores.halt_node(r)
        self._draining[r] = True
        # Re-stripe destinations away *now* so the population of flits
        # bound for r strictly shrinks and the drain terminates.
        self._rebuild_remap()
        self.network.on_topology_change()
        self._pending.append(
            {"kind": "router", "node": r, "index": idx, "since": cycle}
        )

    def _router_up(self, cycle, idx, event) -> None:
        r = event.node
        if r >= self.fm.topology.num_nodes:
            return self._skip(idx, "no such router")
        pending = self._find_pending("router", r)
        if pending is not None:
            self._cancel_router_drain(pending)
            return self._applied(idx, cycle, reason="cancelled pending down")
        if not self.fm._chaos_router_down[r]:
            return self._skip(idx, "router not down")
        self.fm.restore_router(r)
        self._rebuild_remap()
        self.network.on_topology_change()
        self.sim.cores.revive_node(r)
        self._applied(idx, cycle, probe=True)

    def _controller_down(self, cycle, idx, event) -> None:
        if self.resilient is None:
            return self._skip(idx, "no controller to fail")
        self.resilient.fail()
        self._applied(idx, cycle)

    def _controller_up(self, cycle, idx, event) -> None:
        if self.resilient is None:
            return self._skip(idx, "no controller to restore")
        self.resilient.restore()
        self._applied(idx, cycle)

    def _noise_start(self, cycle, idx, event) -> None:
        self.fm.set_noise(event.rate)
        self._noise_active = True
        self._applied(idx, cycle)

    def _noise_end(self, cycle, idx, event) -> None:
        self.fm.clear_noise()
        self._noise_active = False
        self._applied(idx, cycle)

    # ------------------------------------------------------------------
    # Drain progression (pending hard-downs)
    # ------------------------------------------------------------------
    def _advance_drains(self, cycle: int) -> None:
        done = []
        for pending in self._pending:
            if pending["kind"] == "link":
                if self._finish_link_down(cycle, pending):
                    done.append(pending)
            else:
                if self._finish_router_down(cycle, pending):
                    done.append(pending)
        for pending in done:
            self._pending.remove(pending)

    def _finish_link_down(self, cycle, pending) -> bool:
        node, port = pending["node"], pending["port"]
        if not self.network.link_wire_empty(node, port):
            return False
        if self.fm.link_would_disconnect(node, port):
            # Topology changed while draining; the link is critical now.
            self.fm.unquiesce_link(node, port)
            self.network.on_topology_change()
            self._skip(pending["index"], "aborted: link became critical")
            return True
        self.fm.fail_link(node, port)
        self.fm.unquiesce_link(node, port)
        self.network.on_topology_change()
        self._applied(pending["index"], cycle, probe=True)
        return True

    def _finish_router_down(self, cycle, pending) -> bool:
        r = pending["node"]
        if cycle - pending["since"] > 2 * self._window:
            # NI queues refusing to drain (e.g. hard throttling): cut
            # them loose so the fail-stop completes; the dropped packets
            # never entered the network.
            self.orphaned_flits += self.network.purge_queues_at(r)
        if not self._router_drained(r):
            return False
        if self.fm.router_would_disconnect(r):
            self._cancel_router_drain(pending)
            self._skip(pending["index"], "aborted: router became critical")
            return True
        new = int(self.fm.remap[r])
        self.orphaned_flits += self.sim.memory.drop_requester(r)
        self.sim.memory.migrate_server(r, new)
        self.network.rewrite_dest(r, new)
        self.fm.fail_router(r)
        self._draining[r] = False
        self._rebuild_remap()
        self.fm.unquiesce_router_inbound(r)
        self.network.on_topology_change()
        self._applied(pending["index"], cycle, probe=True)
        return True

    def _router_drained(self, r: int) -> bool:
        """All traffic at/owed-to router *r* has left the system."""
        net = self.network
        return (
            net.router_wire_empty(r)
            and net.held_at(r) == 0
            and int(net.request_queue.count[r]) == 0
            and int(net.response_queue.count[r]) == 0
            and self.sim.memory.pending_for_server(r) == 0
        )

    def _cancel_router_drain(self, pending) -> None:
        r = pending["node"]
        self.fm.unquiesce_router_inbound(r)
        self._draining[r] = False
        self._rebuild_remap()
        self.network.on_topology_change()
        self.sim.cores.revive_node(r)
        if pending in self._pending:
            self._pending.remove(pending)
        if not self.records[pending["index"]].skipped:
            self._skip(pending["index"], "cancelled before drain completed")

    def _rebuild_remap(self) -> None:
        """Re-stripe destinations away from dead *and* draining routers."""
        alive = self.fm.alive_routers & ~self._draining
        self.fm.remap[:] = self.fm._build_remap(alive)
        self.sim.hub = int(self.fm.remap[self._hub_home])
        if self.sim.domains is not None:
            # Per-domain control hubs re-stripe the same way the global
            # hub does: a fail-stopped hub's traffic moves to the
            # nearest live router.
            self.sim.domain_hubs = self.fm.remap[
                self.sim._domain_hub_home
            ].astype(np.int64)

    # ------------------------------------------------------------------
    # Recovery measurement + degraded accounting
    # ------------------------------------------------------------------
    def _snapshot(self):
        stats = self.network.stats
        return (
            int(stats.latency_sum), int(stats.latency_count),
            int(stats.deflections), int(stats.injected_flits),
        )

    def _close_window(self, cycle: int) -> None:
        lat_sum, lat_cnt, defl, inj = self._snapshot()
        d_sum = lat_sum - self._win_start[0]
        d_cnt = lat_cnt - self._win_start[1]
        d_defl = defl - self._win_start[2]
        d_inj = inj - self._win_start[3]
        self._win_start = (lat_sum, lat_cnt, defl, inj)
        disturbed = self._win_disturbed
        self._win_disturbed = False
        if d_cnt <= 0:
            return  # no delivered traffic: nothing to measure
        latency = d_sum / d_cnt
        defl_rate = d_defl / max(d_inj, 1)
        if self._probes:
            tol = self.config.recovery_tolerance
            if self._baseline is None:
                # No pre-fault steady state on record; the first clean
                # traffic-bearing window counts as the recovery point.
                ok = not disturbed
            else:
                base_lat, base_defl = self._baseline
                ok = latency <= base_lat * (1.0 + tol) + 2.0 and (
                    defl_rate <= base_defl + max(base_defl * tol, 0.02)
                )
            if ok:
                for probe in self._probes:
                    idx = probe["index"]
                    self.records[idx] = replace(
                        self.records[idx],
                        recovery_cycles=cycle - probe["applied"],
                    )
                self._probes = []
        if not disturbed and not self._pending:
            self._baseline = (latency, defl_rate)

    def _account_degraded(self) -> None:
        ejected = int(self.network.stats.ejected_flits)
        if self._prev_disturbed:
            self.degraded_cycles += 1
            self.degraded_flits += ejected - self._prev_ejected
        self._prev_ejected = ejected

    def _is_disturbed(self) -> bool:
        return (
            bool(self._pending)
            or self.fm.any_chaos_faults
            or self._noise_active
            or (self.resilient is not None and self.resilient.down)
        )

    # ------------------------------------------------------------------
    # Record bookkeeping
    # ------------------------------------------------------------------
    def _find_pending(self, kind: str, node: int, port: int = -1):
        if kind == "link":
            neighbor = int(self.fm.topology.neighbor[node, port])
            opp = int(self.fm.topology.reverse_port[node, port])
            for pending in self._pending:
                if pending["kind"] != "link":
                    continue
                if (pending["node"], pending["port"]) in (
                    (node, port), (neighbor, opp)
                ):
                    return pending
            return None
        for pending in self._pending:
            if pending["kind"] == "router" and pending["node"] == node:
                return pending
        return None

    def _skip(self, idx: int, reason: str) -> None:
        self.records[idx] = replace(
            self.records[idx], skipped=True, reason=reason
        )

    def _applied(self, idx, cycle, probe: bool = False, reason: str = "") -> None:
        self.records[idx] = replace(
            self.records[idx], applied_cycle=cycle, reason=reason
        )
        if probe:
            self._probes.append({"index": idx, "applied": cycle})

    # ------------------------------------------------------------------
    def report(self, total_cycles: int) -> ChaosReport:
        return ChaosReport(
            events=tuple(self.records),
            degraded_cycles=self.degraded_cycles,
            degraded_flits=self.degraded_flits,
            orphaned_flits=self.orphaned_flits,
            controller_down_epochs=(
                self.resilient.downtime_epochs if self.resilient else 0
            ),
            controller_failovers=(
                self.resilient.failovers if self.resilient else 0
            ),
            total_cycles=int(total_cycles),
        )
