"""Mid-run fault/recovery campaigns (the chaos layer).

``repro.chaos`` extends the static :mod:`repro.guardrails.faults` model
to *dynamic* faults: links, routers, and the congestion controller fail
and recover at scheduled cycles while the run is in flight, and the
simulator measures how long the network takes to return to its
pre-fault steady state.  Everything is seeded and pre-scheduled, so a
chaos run is exactly as deterministic (and cacheable) as a fault-free
one.

See DESIGN.md §S23 for the architecture and the drain/quiesce protocol
that keeps the :class:`~repro.guardrails.invariants.InvariantChecker`
losslessness guarantee intact through every topology transition.
"""

from repro.chaos.controlplane import ResilientController
from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import DynamicFaultModel
from repro.chaos.report import ChaosEventRecord, ChaosReport
from repro.chaos.schedule import (
    CHAOS_EVENT_KINDS,
    ChaosConfig,
    ChaosEvent,
    ChaosSchedule,
)

__all__ = [
    "CHAOS_EVENT_KINDS",
    "ChaosConfig",
    "ChaosEngine",
    "ChaosEvent",
    "ChaosEventRecord",
    "ChaosReport",
    "ChaosSchedule",
    "DynamicFaultModel",
    "ResilientController",
]
