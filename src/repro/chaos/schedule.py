"""Declarative chaos campaigns and their deterministic event timelines.

A campaign is described by a frozen :class:`ChaosConfig`: an explicit
list of scripted :class:`ChaosEvent`\\ s, plus optional MTBF/MTTR pairs
per fault domain (links, routers, controller) from which additional
fail/repair cycles are drawn as a renewal process.  All randomness
flows through :func:`repro.rng.child_rng` substreams of the campaign
seed, and the full timeline is materialized **before cycle 0** by
:class:`ChaosSchedule` — a chaos run is a pure function of its config,
which is what makes ``--chaos`` results cacheable and bit-identical
across serial/parallel execution.

The config also round-trips through canonical JSON (``to_json`` /
``from_json``) so a campaign can ride inside a
:class:`~repro.harness.jobs.JobSpec` and participate in content-hash
cache keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.rng import child_rng
from repro.topology.graph import MAX_GRAPH_PORTS

__all__ = ["CHAOS_EVENT_KINDS", "ChaosConfig", "ChaosEvent", "ChaosSchedule"]

#: Every event kind the engine knows how to apply.  ``*_down`` kinds
#: start a fault, the matching ``*_up`` ends it; ``noise_start`` /
#: ``noise_end`` bracket a transient-fault-rate window (``rate``).
CHAOS_EVENT_KINDS = (
    "link_down",
    "link_up",
    "router_down",
    "router_up",
    "controller_down",
    "controller_up",
    "noise_start",
    "noise_end",
)

_DEGRADED_MODES = ("freeze", "decay", "failover")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault or recovery action.

    ``node``/``port`` identify the target: links use both (undirected —
    the reverse direction fails/recovers together), routers use
    ``node`` only, controller and noise events use neither.  ``rate``
    is the transient-fault rate installed by ``noise_start``.
    """

    cycle: int
    kind: str
    node: int = -1
    port: int = -1
    rate: float = 0.0

    def __post_init__(self):
        if self.kind not in CHAOS_EVENT_KINDS:
            raise ValueError(
                f"unknown chaos event kind {self.kind!r}; "
                f"expected one of {CHAOS_EVENT_KINDS}"
            )
        if self.cycle < 0:
            raise ValueError(f"event cycle must be >= 0, got {self.cycle}")
        if self.kind in ("link_down", "link_up"):
            # The static bound is the engine-wide port ceiling; whether
            # the (node, port) link actually exists in the run's topology
            # is checked when the event is applied.
            if self.node < 0 or not 0 <= self.port < MAX_GRAPH_PORTS:
                raise ValueError(
                    f"{self.kind} needs node >= 0 and port in "
                    f"[0, {MAX_GRAPH_PORTS}), got node={self.node} "
                    f"port={self.port}"
                )
        elif self.kind in ("router_down", "router_up"):
            if self.node < 0:
                raise ValueError(f"{self.kind} needs node >= 0")
        if self.kind == "noise_start" and not 0.0 <= self.rate < 1.0:
            raise ValueError(
                f"noise_start rate must be in [0, 1), got {self.rate!r}"
            )

    def to_dict(self) -> dict:
        return {
            "cycle": int(self.cycle),
            "kind": self.kind,
            "node": int(self.node),
            "port": int(self.port),
            "rate": float(self.rate),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosEvent":
        return cls(
            cycle=data["cycle"],
            kind=data["kind"],
            node=data.get("node", -1),
            port=data.get("port", -1),
            rate=data.get("rate", 0.0),
        )


@dataclass(frozen=True)
class ChaosConfig:
    """Declarative description of one chaos campaign.

    ``events`` are scripted events applied verbatim.  Each nonzero
    ``*_mtbf`` additionally draws a renewal process of random faults
    for that domain: inter-failure gaps are ``1 + floor(Exp(mtbf))``
    cycles and each fault heals after ``1 + floor(Exp(mttr))`` cycles,
    both from dedicated :func:`~repro.rng.child_rng` substreams of
    ``seed``.  ``degraded_mode`` picks the control-plane policy while
    the controller is down (see
    :class:`~repro.chaos.controlplane.ResilientController`).
    ``recovery_window`` / ``recovery_tolerance`` parameterize the
    steady-state recovery probes recorded in the
    :class:`~repro.chaos.report.ChaosReport`.
    """

    events: Tuple[ChaosEvent, ...] = ()
    link_mtbf: float = 0.0
    link_mttr: float = 0.0
    router_mtbf: float = 0.0
    router_mttr: float = 0.0
    controller_mtbf: float = 0.0
    controller_mttr: float = 0.0
    seed: int = 0
    degraded_mode: str = "freeze"
    degraded_decay: float = 0.5
    recovery_window: int = 250
    recovery_tolerance: float = 0.25
    max_random_events: int = 64

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        for name in (
            "link_mtbf", "link_mttr", "router_mtbf", "router_mttr",
            "controller_mtbf", "controller_mttr",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("link", "router", "controller"):
            mtbf = getattr(self, f"{name}_mtbf")
            mttr = getattr(self, f"{name}_mttr")
            if (mtbf > 0) != (mttr > 0):
                raise ValueError(
                    f"{name}_mtbf and {name}_mttr must be set together"
                )
        if self.degraded_mode not in _DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode must be one of {_DEGRADED_MODES}, "
                f"got {self.degraded_mode!r}"
            )
        if not 0.0 <= self.degraded_decay <= 1.0:
            raise ValueError("degraded_decay must be in [0, 1]")
        if self.recovery_window < 1:
            raise ValueError("recovery_window must be >= 1")
        if self.recovery_tolerance < 0:
            raise ValueError("recovery_tolerance must be >= 0")
        if self.max_random_events < 0:
            raise ValueError("max_random_events must be >= 0")

    @property
    def any_events(self) -> bool:
        """False for a config that can never emit an event (== no chaos)."""
        return bool(self.events) or (
            self.link_mtbf > 0
            or self.router_mtbf > 0
            or self.controller_mtbf > 0
        )

    # ------------------------------------------------------------------
    # Canonical JSON (JobSpec transport + cache keys)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON encoding.

        Two equal configs encode to the same string, so the encoding is
        safe to embed in :meth:`JobSpec.canonical` content hashes.
        """
        payload = {
            "events": [e.to_dict() for e in self.events],
            "link_mtbf": float(self.link_mtbf),
            "link_mttr": float(self.link_mttr),
            "router_mtbf": float(self.router_mtbf),
            "router_mttr": float(self.router_mttr),
            "controller_mtbf": float(self.controller_mtbf),
            "controller_mttr": float(self.controller_mttr),
            "seed": int(self.seed),
            "degraded_mode": self.degraded_mode,
            "degraded_decay": float(self.degraded_decay),
            "recovery_window": int(self.recovery_window),
            "recovery_tolerance": float(self.recovery_tolerance),
            "max_random_events": int(self.max_random_events),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosConfig":
        data = json.loads(text)
        events = tuple(ChaosEvent.from_dict(e) for e in data.pop("events", []))
        return cls(events=events, **data)


class ChaosSchedule:
    """The fully materialized, sorted event timeline of one campaign.

    Construction draws every random fault up front (bounded by
    ``max_random_events`` per domain), merges them with the scripted
    events, and sorts by ``(cycle, kind, node, port)`` — ties resolve
    identically on every host, keeping campaigns bit-reproducible.
    The engine consumes events through :meth:`due`.
    """

    def __init__(self, config: ChaosConfig, topology):
        self.config = config
        self.topology = topology
        events = list(config.events)
        events.extend(self._draw_link_faults())
        events.extend(self._draw_router_faults())
        events.extend(self._draw_controller_faults())
        events.sort(key=lambda e: (e.cycle, e.kind, e.node, e.port))
        self.events: Tuple[ChaosEvent, ...] = tuple(events)
        self._next = 0

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Random fault generation (renewal processes)
    # ------------------------------------------------------------------
    def _renewal_times(self, rng, mtbf: float, mttr: float):
        """``(down_cycle, up_cycle)`` pairs of one renewal process."""
        pairs = []
        t = 0
        for _ in range(self.config.max_random_events):
            t += 1 + int(rng.exponential(mtbf))
            duration = 1 + int(rng.exponential(mttr))
            pairs.append((t, t + duration))
            t += duration
        return pairs

    def _undirected_links(self) -> np.ndarray:
        """``(K, 2)`` array of (node, port) undirected representatives."""
        exists = self.topology.link_exists
        n, p = exists.shape
        flat = np.arange(n * p, dtype=np.int64)
        neighbor = self.topology.neighbor.astype(np.int64).ravel()
        partner = np.where(
            neighbor >= 0,
            neighbor * p + self.topology.reverse_port.astype(np.int64).ravel(),
            flat,
        )
        keep = exists.ravel() & (flat <= partner)
        ids = np.flatnonzero(keep)
        return np.stack([ids // p, ids % p], axis=1)

    def _draw_link_faults(self):
        if self.config.link_mtbf <= 0:
            return []
        rng = child_rng(self.config.seed, "chaos-links")
        links = self._undirected_links()
        events = []
        for down, up in self._renewal_times(
            rng, self.config.link_mtbf, self.config.link_mttr
        ):
            node, port = links[int(rng.integers(links.shape[0]))]
            events.append(
                ChaosEvent(down, "link_down", node=int(node), port=int(port))
            )
            events.append(
                ChaosEvent(up, "link_up", node=int(node), port=int(port))
            )
        return events

    def _draw_router_faults(self):
        if self.config.router_mtbf <= 0:
            return []
        rng = child_rng(self.config.seed, "chaos-routers")
        n = self.topology.num_nodes
        events = []
        for down, up in self._renewal_times(
            rng, self.config.router_mtbf, self.config.router_mttr
        ):
            node = int(rng.integers(n))
            events.append(ChaosEvent(down, "router_down", node=node))
            events.append(ChaosEvent(up, "router_up", node=node))
        return events

    def _draw_controller_faults(self):
        if self.config.controller_mtbf <= 0:
            return []
        rng = child_rng(self.config.seed, "chaos-controller")
        events = []
        for down, up in self._renewal_times(
            rng, self.config.controller_mtbf, self.config.controller_mttr
        ):
            events.append(ChaosEvent(down, "controller_down"))
            events.append(ChaosEvent(up, "controller_up"))
        return events

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def due(self, cycle: int):
        """Events scheduled at or before *cycle*, in timeline order.

        Advances the internal cursor; each event is returned exactly
        once.  Events beyond the run's horizon simply never come due.
        """
        out = []
        while self._next < len(self.events) and (
            self.events[self._next].cycle <= cycle
        ):
            out.append(self.events[self._next])
            self._next += 1
        return out

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.events)
