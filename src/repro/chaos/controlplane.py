"""Control-plane failure semantics: the resilient controller wrapper.

The paper's central congestion controller is a single point of failure
its evaluation never stresses.  :class:`ResilientController` wraps any
:class:`~repro.control.base.Controller` and gives it fail-stop
semantics with one of three degraded modes while it is down:

- ``freeze``: keep the last installed throttle rates (the network runs
  open-loop on stale decisions);
- ``decay``: multiplicatively relax the last rates toward zero each
  epoch (stale throttles age out, trading congestion protection for
  throughput);
- ``failover``: delegate epochs to a standby
  :class:`~repro.control.distributed.DistributedController` — the
  paper's §6.6 comparison scheme, which needs no central coordinator
  and is therefore a natural warm spare.

The wrapper is driven by ``controller_down`` / ``controller_up`` chaos
events via :meth:`fail` / :meth:`restore`.
"""

from __future__ import annotations

import numpy as np

from repro.control.base import Controller, EpochView

__all__ = ["ResilientController"]

#: Rates below this decay to exactly zero (matches the distributed
#: controller's cutoff so tiny stale throttles do not linger forever).
_RATE_EPSILON = 0.01


class ResilientController(Controller):
    """Fail-stop wrapper around a primary congestion controller."""

    def __init__(
        self,
        primary: Controller,
        mode: str = "freeze",
        decay: float = 0.5,
        standby: Controller = None,
    ):
        if mode not in ("freeze", "decay", "failover"):
            raise ValueError(f"unknown degraded mode {mode!r}")
        if mode == "failover" and standby is None:
            raise ValueError("failover mode needs a standby controller")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        self.primary = primary
        self.mode = mode
        self.decay = decay
        self.standby = standby
        self.down = False
        self._last_rates = None
        self.downtime_epochs = 0
        self.failovers = 0
        # Instance attribute shadows the class attribute: the simulator
        # reads this once per run() to decide whether to feed ejections.
        self.observes_ejections = bool(
            primary.observes_ejections
            or (standby is not None and standby.observes_ejections)
        )

    # ------------------------------------------------------------------
    # Chaos-event entry points
    # ------------------------------------------------------------------
    def fail(self) -> None:
        if self.down:
            return
        self.down = True
        if self.mode == "failover":
            self.failovers += 1

    def restore(self) -> None:
        self.down = False

    # ------------------------------------------------------------------
    # Controller interface
    # ------------------------------------------------------------------
    def on_epoch(self, view: EpochView) -> np.ndarray:
        if not self.down:
            rates = np.asarray(self.primary.on_epoch(view), dtype=float)
            self._last_rates = rates.copy()
            return rates
        self.downtime_epochs += 1
        if self.mode == "failover":
            return np.asarray(self.standby.on_epoch(view), dtype=float)
        if self._last_rates is None:
            return np.zeros(view.active.shape[0])
        if self.mode == "decay":
            self._last_rates = self._last_rates * self.decay
            self._last_rates[self._last_rates < _RATE_EPSILON] = 0.0
        return self._last_rates.copy()

    def on_ejected(self, ejected) -> None:
        if self.primary.observes_ejections:
            self.primary.on_ejected(ejected)
        if (
            self.down
            and self.mode == "failover"
            and self.standby.observes_ejections
        ):
            self.standby.on_ejected(ejected)

    def describe(self) -> str:
        inner = self.primary.describe()
        if self.mode == "failover":
            return (
                f"Resilient({inner}, failover->{self.standby.describe()})"
            )
        return f"Resilient({inner}, degraded={self.mode})"
