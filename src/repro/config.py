"""Simulation configuration.

Defaults follow the paper's Table 2:

======================  =============================================
Network topology        2D mesh (``"mesh"``; ``"torus"`` supported)
Routing algorithm       FLIT-BLESS (``network="bless"``)
Router (link) latency   2 (1) cycles
Core model              out-of-order, 3 insns/cycle, 1 mem insn/cycle
Instruction window      128 instructions
Cache block             32 bytes (2 reply flits over 128-bit links)
L1 cache                private (its miss stream drives the traffic)
L2 cache                shared, distributed, perfect
L2 address mapping      per-block interleaving (uniform striping);
                        randomized exponential for locality studies
======================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.control.base import Controller, NoController
from repro.guardrails.faults import FaultConfig
from repro.power.model import PowerCoefficients
from repro.topology.registry import prepare_config
from repro.traffic.workloads import Workload

__all__ = ["SimulationConfig"]


@dataclass
class SimulationConfig:
    """Everything needed to build a :class:`~repro.sim.Simulator`.

    ``locality`` may be a string (``"uniform"``, ``"exponential"``,
    ``"powerlaw"``) resolved with ``locality_param``, or a pre-built
    sampler object from :mod:`repro.traffic.locality`.
    """

    workload: Workload
    seed: int = 0

    # --- topology / network ------------------------------------------
    #: any name in :data:`repro.topology.registry.TOPOLOGY_NAMES`
    #: ("mesh", "torus", "mesh3d", "torus3d", "chiplet", "express")
    topology: str = "mesh"
    width: int = 0  # 0: inferred (square grid / cube) from workload size
    height: int = 0
    depth: int = 0  # 3D topologies only; 0: inferred
    chiplet_tile: int = 4  # chiplet topology: cluster edge length
    express_stride: int = 4  # express topology: skip-link span
    network: str = "bless"  # "bless" | "buffered" | "hybrid"
    #: hot-path execution backend: "numpy" (pure vectorized Python, the
    #: reference) or "native" (compiled C kernels, bit-identical results;
    #: falls back with an error when the configuration is unsupported)
    backend: str = "numpy"
    router_latency: int = 2
    link_latency: int = 1
    eject_width: int = 1
    arbitration: str = "oldest_first"
    buffer_capacity: int = 16  # buffered network: 4 VCs x 4 flits
    side_buffer_capacity: int = 4  # hybrid network: MinBD-style side buffer
    queue_capacity: int = 64  # NI packet queues (requests / responses)

    # --- core / memory (Table 2) --------------------------------------
    issue_width: int = 3
    window_size: int = 128
    mshr_limit: int = 16
    request_flits: int = 1
    reply_flits: int = 2  # 32-byte block over 128-bit flits
    l2_latency: int = 6

    # --- traffic -------------------------------------------------------
    locality: Union[str, object] = "uniform"
    locality_param: float = 1.0  # mean hop distance (exp) or alpha (powerlaw)
    phase_sigma: float = 0.4
    phase_length: int = 20_000

    # --- control ---------------------------------------------------------
    controller: Controller = field(default_factory=NoController)
    epoch: int = 10_000  # controller/measurement period T
    model_control_traffic: bool = False

    # --- power ----------------------------------------------------------
    power: PowerCoefficients = field(default_factory=PowerCoefficients)

    # --- observability (repro.observability) -----------------------------
    #: attribute wall-clock per simulated phase (PhaseTimer); when off the
    #: simulator runs its original uninstrumented loop
    profile: bool = False
    #: record inject/hop/deflect/eject events for a sampled packet subset
    trace: bool = False
    #: fraction of packet identities traced (quantized to 1/65536)
    trace_sample: float = 1 / 16
    #: ring-buffer bound on stored trace events (oldest overwritten)
    trace_capacity: int = 65536

    # --- guardrails (repro.guardrails) -----------------------------------
    #: verify the no-drop / eject-width / age-order invariants every cycle
    check_invariants: bool = False
    #: cycles without ejection progress before the watchdog trips (0 = off)
    watchdog_window: int = 0
    #: maximum tolerated in-flight flit age in cycles (0 = off)
    max_flit_age: int = 0
    #: link/router fault injection; ``None`` runs a healthy network
    faults: Optional[FaultConfig] = None
    #: mid-run fault/recovery campaign (repro.chaos); ``None`` disables
    chaos: Optional[object] = None

    def __post_init__(self):
        # Topology-specific geometry: the registry entry fills zeroed
        # dimensions from the workload size and validates the shape.
        prepare_config(self)
        if self.network not in ("bless", "buffered", "hybrid"):
            raise ValueError(f"unknown network {self.network!r}")
        if self.backend not in ("numpy", "native"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.side_buffer_capacity < 1:
            raise ValueError("side_buffer_capacity must be >= 1")
        if self.epoch < 1:
            raise ValueError("epoch must be positive")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must lie in [0, 1]")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be positive")
        if self.watchdog_window < 0:
            raise ValueError("watchdog_window must be >= 0 (0 disables it)")
        if self.max_flit_age < 0:
            raise ValueError("max_flit_age must be >= 0 (0 disables it)")
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise ValueError(
                f"faults must be a FaultConfig or None, got {self.faults!r}"
            )
        if self.chaos is not None:
            # Imported lazily: repro.chaos pulls in the network stack,
            # which this module must not depend on at import time.
            from repro.chaos.schedule import ChaosConfig

            if not isinstance(self.chaos, ChaosConfig):
                raise ValueError(
                    f"chaos must be a ChaosConfig or None, got {self.chaos!r}"
                )

    @property
    def hop_latency(self) -> int:
        return self.router_latency + self.link_latency

    @property
    def num_nodes(self) -> int:
        return self.workload.num_nodes

    def with_(self, **overrides) -> "SimulationConfig":
        """A modified copy (baseline-vs-mechanism comparisons)."""
        return replace(self, **overrides)
