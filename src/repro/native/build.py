"""Compile-on-demand loader for the native hot-path kernels.

The kernels ship as C source (``kernels.c``) and are compiled to a
shared object on first use with whatever C compiler the host provides.
The build artifact is tagged with a hash of the source so editing the
kernels invalidates stale objects, and the compile is atomic (build to a
temp file, ``os.replace`` into place) so concurrent processes never load
a half-written library.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

__all__ = ["NativeBuildError", "load_library", "native_available"]


class NativeBuildError(RuntimeError):
    """The native kernels could not be compiled or loaded."""


_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernels.c")
_BUILD_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")

#: Entry points exported by kernels.c; all share the same ABI.
KERNELS = (
    "noc_cores", "noc_issue", "noc_memory", "noc_bless", "noc_credit",
    "noc_eject",
)

_lib = None


def _find_compiler():
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for cc in candidates:
        if cc and shutil.which(cc):
            return cc
    return None


def _compile(so_path: str) -> None:
    cc = _find_compiler()
    if cc is None:
        raise NativeBuildError(
            "no C compiler found (tried $CC, cc, gcc, clang); "
            "use backend='numpy' instead"
        )
    os.makedirs(_BUILD_DIR, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=_BUILD_DIR, suffix=".so.tmp")
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, _SRC],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"compiling kernels.c with {cc!r} failed:\n{proc.stderr}"
            )
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_library():
    """The compiled kernel library, building it on first call.

    Raises :class:`NativeBuildError` when no compiler is available or
    the build fails; the result is cached for the process lifetime.
    """
    global _lib
    if _lib is not None:
        return _lib
    with open(_SRC, "rb") as f:
        tag = hashlib.sha256(f.read()).hexdigest()[:16]
    so_path = os.path.join(_BUILD_DIR, f"kernels-{tag}.so")
    if not os.path.exists(so_path):
        _compile(so_path)
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:  # corrupt artifact: rebuild once
        os.unlink(so_path)
        _compile(so_path)
        try:
            lib = ctypes.CDLL(so_path)
        except OSError as exc2:
            raise NativeBuildError(f"loading {so_path} failed: {exc2}") from exc
    abi = [
        ctypes.POINTER(ctypes.c_void_p),
        ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_longlong),
        ctypes.c_longlong,
    ]
    for name in KERNELS:
        fn = getattr(lib, name)
        fn.argtypes = abi
        fn.restype = None
    _lib = lib
    return lib


def native_available() -> bool:
    """Whether the compiled backend can be built and loaded here."""
    try:
        load_library()
    except NativeBuildError:
        return False
    return True
