/* Native hot-path kernels for the cycle-level NoC simulator.
 *
 * Compiled on demand (see build.py) and loaded through ctypes; every
 * function operates directly on the simulator's numpy buffers through a
 * pointer table, so Python-side views stay coherent without copies.
 *
 * BIT-IDENTITY CONTRACT: each kernel replicates the corresponding
 * pure-numpy phase exactly — same arbitration tie-breaks (numpy argmin /
 * argmax take the first occurrence; stable argsort keeps column order),
 * same order of floating-point operations, same statistics accumulation.
 * Any semantic change here must keep tests/test_native_backend.py's
 * numpy-vs-native equivalence suite green.
 *
 * ABI: every entry point takes (void **pt, const long long *cfg,
 * long long *ctr, long long cycle).  `pt` is the pointer table (slot
 * enum below, built in the same order by accel.py), `cfg` immutable
 * configuration constants, `ctr` mutable 64-bit counters mirrored back
 * onto the Python stats objects after each call.
 */

#include <stdint.h>
#include <string.h>
#include <math.h>

/* ------------------------------------------------------------------ */
/* Flit meta layout (repro.network.flit)                               */
/* ------------------------------------------------------------------ */
#define NODE_MASK ((1LL << 14) - 1)
#define SRC_SHIFT 14
#define KIND_SHIFT 28
#define CBIT (1LL << 30)
#define SEQ_SHIFT 31
#define SEQ_MASK 0xFFLL
#define HOPS_SHIFT 39
#define HOPS_MASK ((1LL << 20) - 1)
#define HOP_ONE (1LL << 39)
#define KEY_MAX 0x7FFFFFFFFFFFFFFFLL
#define SEQ_RING 256
#define HIST_BUCKETS 1024
#define THROTTLE_MAX 128.0
#define MAX_PORTS 64

#define KIND_REQUEST 0
#define KIND_REPLY 1

/* Pointer-table slots; accel.py's PT_SLOT_NAMES/arrays mirror this
 * order exactly — checked statically by NATIVE002 (repro.analysis). */
enum {
    PT_RING_META = 0, PT_RING_BIRTH, PT_LAT_OUT, PT_TARGET_FLAT,
    PT_LINK_UP, PT_NEIGHBOR, PT_REVERSE, PT_P0TAB, PT_P1TAB, PT_CONGESTED,
    PT_REQ_DEST, PT_REQ_KIND, PT_REQ_FLITS, PT_REQ_STAMP, PT_REQ_SEQ,
    PT_REQ_HEAD, PT_REQ_COUNT,
    PT_RESP_DEST, PT_RESP_KIND, PT_RESP_FLITS, PT_RESP_STAMP, PT_RESP_SEQ,
    PT_RESP_HEAD, PT_RESP_COUNT,
    PT_THR_COUNTER, PT_THR_RATE, PT_STARV_RING, PT_STARV_SUM,
    PT_INJ_PER_NODE, PT_STARVED_CYC, PT_PORT_STARVED_CYC, PT_LAT_HIST,
    PT_G_META, PT_G_BIRTH, PT_G_KEY, PT_G_AVAIL, PT_G_OUTM, PT_G_OUTB,
    PT_H_KEY, PT_H_OUT, PT_W_NODE, PT_W_IN, PT_W_DOWN, PT_W_DPORT,
    PT_BUF_META, PT_BUF_BIRTH, PT_BUF_HEAD, PT_BUF_COUNT, PT_RESERVED,
    PT_EJ_NODE, PT_EJ_SRC, PT_EJ_KIND, PT_EJ_SEQ, PT_EJ_CBIT,
    PT_CO_ACTIVE, PT_CO_RETIRED, PT_CO_ISSUE_POS, PT_CO_RECV,
    PT_CO_COMPLETE, PT_CO_ISSUED, PT_CO_COMPLETED, PT_CO_HEAD, PT_CO_GAP,
    PT_CO_EPOCH_INSNS, PT_CO_STALL, PT_CO_WSTALL, PT_MISS_OUT,
    PT_VISITED,
    PT_MEM_SRV, PT_MEM_REQ, PT_MEM_SEQ, PT_MEM_CNT,
    PT_PEND_S, PT_PEND_R, PT_PEND_Q, PT_SCR_S, PT_SCR_R, PT_SCR_Q,
    PT_CO_MISSES, PT_CO_EPOCH_FLITS, PT_ISSUE_DEST,
    PT_NUM_SLOTS
};

/* cfg slots; mirrored in accel.py, checked by NATIVE001 */
enum {
    CFG_N = 0, CFG_P, CFG_DEPTH, CFG_EJECT_W, CFG_QCAP, CFG_SW, CFG_ARB,
    CFG_ISSUE_W, CFG_WINDOW, CFG_MSHR, CFG_REPLY_FLITS, CFG_L2_LAT,
    CFG_EJ_CAP, CFG_PEND_CAP, CFG_BUF_CAP, CFG_SLOT_COUNT, CFG_REQ_FLITS,
    CFG_NUM
};

/* ctr slots; mirrored in accel.py, checked by NATIVE001 */
enum {
    CTR_CURSOR = 0, CTR_SPOS, CTR_SSEEN, CTR_CYCLES, CTR_INJ,
    CTR_EJ_FLITS, CTR_HOPS, CTR_DEFL, CTR_BWRITES, CTR_BREADS, CTR_OCC,
    CTR_LAT_SUM, CTR_LAT_CNT, CTR_LAT_MAX, CTR_HOPS_SUM, CTR_INJLAT_SUM,
    CTR_INJLAT_CNT, CTR_HEAD_DIRTY, CTR_MISS_CNT, CTR_MEM_CURSOR,
    CTR_PEND_CNT, CTR_REQ_SERVICED, CTR_REP_ISSUED, CTR_EJ_COUNT,
    CTR_ERROR, CTR_ACCEPTED,
    CTR_NUM
};

/* ctr[CTR_ERROR] codes */
#define ERR_SLOT_MISMATCH 1
#define ERR_MEM_RING_OVERFLOW 2
#define ERR_PENDING_OVERFLOW 3
#define ERR_EJECT_OVERFLOW 4
#define ERR_TOO_MANY_PORTS 5

#define ARB_OLDEST 0
#define ARB_YOUNGEST 1
#define ARB_RANDOM 2

typedef long long i64;

static int check_abi(const i64 *cfg, i64 *ctr)
{
    if (cfg[CFG_SLOT_COUNT] != PT_NUM_SLOTS) {
        ctr[CTR_ERROR] = ERR_SLOT_MISMATCH;
        return 0;
    }
    if (cfg[CFG_P] + 1 > MAX_PORTS) {
        ctr[CTR_ERROR] = ERR_TOO_MANY_PORTS;
        return 0;
    }
    return 1;
}

/* ------------------------------------------------------------------ */
/* Shared pieces                                                       */
/* ------------------------------------------------------------------ */

static inline void account_ejection(i64 *ctr, i64 *hist, i64 meta, i64 lat)
{
    ctr[CTR_EJ_FLITS] += 1;
    ctr[CTR_LAT_SUM] += lat;
    ctr[CTR_LAT_CNT] += 1;
    if (lat > ctr[CTR_LAT_MAX])
        ctr[CTR_LAT_MAX] = lat;
    hist[lat > HIST_BUCKETS - 1 ? HIST_BUCKETS - 1 : lat] += 1;
    ctr[CTR_HOPS_SUM] += (meta >> HOPS_SHIFT) & HOPS_MASK;
}

static inline int emit_ejected(void **pt, const i64 *cfg, i64 *ctr,
                               i64 node, i64 meta)
{
    i64 k = ctr[CTR_EJ_COUNT];
    if (k >= cfg[CFG_EJ_CAP]) {
        ctr[CTR_ERROR] = ERR_EJECT_OVERFLOW;
        return 0;
    }
    ((i64 *)pt[PT_EJ_NODE])[k] = node;
    ((i64 *)pt[PT_EJ_SRC])[k] = (meta >> SRC_SHIFT) & NODE_MASK;
    ((i64 *)pt[PT_EJ_KIND])[k] = (meta >> KIND_SHIFT) & 0x3;
    ((i64 *)pt[PT_EJ_SEQ])[k] = (meta >> SEQ_SHIFT) & SEQ_MASK;
    ((unsigned char *)pt[PT_EJ_CBIT])[k] =
        (unsigned char)((meta >> 30) & 0x1);
    ctr[CTR_EJ_COUNT] = k + 1;
    return 1;
}

/* Take one flit from a FlitQueueArray head entry at `node`
 * (repro.network.queues.FlitQueueArray.take_flit). */
static inline void queue_take(void **pt, int base_slot, i64 qcap, i64 node,
                              i64 *dest, i64 *kind, i64 *seq, i64 *stamp)
{
    int32_t *head = (int32_t *)pt[base_slot + 5];
    int32_t *count = (int32_t *)pt[base_slot + 6];
    i64 h = head[node];
    i64 idx = node * qcap + h;
    *dest = ((int32_t *)pt[base_slot + 0])[idx];
    *kind = ((int8_t *)pt[base_slot + 1])[idx];
    *stamp = ((i64 *)pt[base_slot + 3])[idx];
    *seq = ((int16_t *)pt[base_slot + 4])[idx];
    int16_t *flits = (int16_t *)pt[base_slot + 2];
    flits[idx] -= 1;
    if (flits[idx] == 0) {
        head[node] = (int32_t)((h + 1) % qcap);
        count[node] -= 1;
    }
}

/* NI admission shared by both flow controls
 * (RouterEngine.injection_stage + InjectionThrottleGate.decide +
 * NocModel._record_starvation).  mode 0 = bless (route onto a free
 * link), mode 1 = credit (push into the NI input buffer). */
static void injection_stage(void **pt, const i64 *cfg, i64 *ctr, i64 cycle,
                            const unsigned char *capacity, int mode,
                            unsigned char *avail)
{
    i64 n = cfg[CFG_N], p = cfg[CFG_P], qcap = cfg[CFG_QCAP];
    i64 sw = cfg[CFG_SW];
    i64 spos = ctr[CTR_SPOS];
    const int32_t *req_count = (const int32_t *)pt[PT_REQ_COUNT];
    const int32_t *resp_count = (const int32_t *)pt[PT_RESP_COUNT];
    int32_t *thr_counter = (int32_t *)pt[PT_THR_COUNTER];
    const double *thr_rate = (const double *)pt[PT_THR_RATE];
    unsigned char *starv_ring = (unsigned char *)pt[PT_STARV_RING];
    int32_t *starv_sum = (int32_t *)pt[PT_STARV_SUM];
    i64 *inj_per_node = (i64 *)pt[PT_INJ_PER_NODE];
    i64 *starved_cyc = (i64 *)pt[PT_STARVED_CYC];
    i64 *port_starved = (i64 *)pt[PT_PORT_STARVED_CYC];
    const signed char *p0tab = (const signed char *)pt[PT_P0TAB];
    const signed char *p1tab = (const signed char *)pt[PT_P1TAB];
    i64 *out_meta = (i64 *)pt[PT_G_OUTM];
    i64 *out_birth = (i64 *)pt[PT_G_OUTB];
    i64 pp = p + 1, bufcap = cfg[CFG_BUF_CAP];
    i64 *buf_meta = (i64 *)pt[PT_BUF_META];
    i64 *buf_birth = (i64 *)pt[PT_BUF_BIRTH];
    int32_t *buf_head = (int32_t *)pt[PT_BUF_HEAD];
    int32_t *buf_count = (int32_t *)pt[PT_BUF_COUNT];

    for (i64 node = 0; node < n; node++) {
        int resp_has = resp_count[node] > 0;
        int req_has = req_count[node] > 0;
        int wanted = resp_has || req_has;
        int cap = capacity[node] != 0;
        int inject_resp = resp_has && cap;
        int trying_req = req_has && cap && !inject_resp;
        int inject_req = 0;
        if (trying_req) {
            /* Algorithm 3: the counter advances on every attempt. */
            int32_t c = (int32_t)((thr_counter[node] + 1) % 128);
            thr_counter[node] = c;
            inject_req = (double)c >= thr_rate[node] * THROTTLE_MAX;
        }
        for (int which = 0; which < 2; which++) {
            int go = which == 0 ? inject_resp : inject_req;
            if (!go)
                continue;
            i64 dest, kind, seq, stamp;
            queue_take(pt, which == 0 ? PT_RESP_DEST : PT_REQ_DEST,
                       qcap, node, &dest, &kind, &seq, &stamp);
            i64 meta = dest | (node << SRC_SHIFT) | (kind << KIND_SHIFT)
                       | (seq << SEQ_SHIFT);
            if (mode == 0) {
                /* Productive port first, then the other productive
                 * direction, then the first free link (argmax). */
                const unsigned char *row = avail + node * p;
                int port = -1;
                int p0 = p0tab[node * n + dest];
                int p1 = p1tab[node * n + dest];
                if (p0 >= 0 && row[p0])
                    port = p0;
                else if (p1 >= 0 && row[p1])
                    port = p1;
                if (port < 0) {
                    port = 0;
                    for (int c = 0; c < p; c++)
                        if (row[c]) { port = c; break; }
                }
                avail[node * p + port] = 0;
                out_meta[node * p + port] = meta + HOP_ONE;
                out_birth[node * p + port] = cycle;
                ctr[CTR_INJLAT_SUM] += cycle - stamp;
                ctr[CTR_INJLAT_CNT] += 1;
            } else {
                i64 b = node * pp + p;
                i64 slot = (buf_head[b] + buf_count[b]) % bufcap;
                buf_meta[b * bufcap + slot] = meta;
                buf_birth[b * bufcap + slot] = cycle;
                buf_count[b] += 1;
                ctr[CTR_BWRITES] += 1;
            }
            ctr[CTR_INJ] += 1;
            inj_per_node[node] += 1;
        }
        /* Starvation meter (W-bit shift register) + stats. */
        int starved = wanted && !(inject_resp || inject_req);
        unsigned char old = starv_ring[node * sw + spos];
        starv_sum[node] += (int32_t)starved - (int32_t)old;
        starv_ring[node * sw + spos] = (unsigned char)starved;
        starved_cyc[node] += starved;
        port_starved[node] += wanted && !cap;
    }
    ctr[CTR_SPOS] = (spos + 1) % sw;
    ctr[CTR_SSEEN] += 1;
}

/* ------------------------------------------------------------------ */
/* FLIT-BLESS network step (DeflectFlowControl.step)                   */
/* ------------------------------------------------------------------ */
void noc_bless(void **pt, const i64 *cfg, i64 *ctr, i64 cycle)
{
    if (!check_abi(cfg, ctr))
        return;
    i64 n = cfg[CFG_N], p = cfg[CFG_P], depth = cfg[CFG_DEPTH];
    i64 np = n * p;
    i64 *ring_meta = (i64 *)pt[PT_RING_META];
    i64 *ring_birth = (i64 *)pt[PT_RING_BIRTH];
    i64 *gmeta = (i64 *)pt[PT_G_META];
    i64 *gbirth = (i64 *)pt[PT_G_BIRTH];
    i64 *gkey = (i64 *)pt[PT_G_KEY];
    unsigned char *avail = (unsigned char *)pt[PT_G_AVAIL];
    i64 *out_meta = (i64 *)pt[PT_G_OUTM];
    i64 *out_birth = (i64 *)pt[PT_G_OUTB];
    i64 *hist = (i64 *)pt[PT_LAT_HIST];
    const signed char *p0tab = (const signed char *)pt[PT_P0TAB];
    const signed char *p1tab = (const signed char *)pt[PT_P1TAB];
    const unsigned char *link_up = (const unsigned char *)pt[PT_LINK_UP];
    const unsigned char *congested = (const unsigned char *)pt[PT_CONGESTED];
    const i64 *lat_out = (const i64 *)pt[PT_LAT_OUT];
    const i64 *target = (const i64 *)pt[PT_TARGET_FLAT];
    i64 arb = cfg[CFG_ARB];

    ctr[CTR_CYCLES] += 1;
    ctr[CTR_EJ_COUNT] = 0;

    /* Arrivals: copy the ring's arrival slot, clear it, advance. */
    i64 cur = ctr[CTR_CURSOR];
    memcpy(gmeta, ring_meta + cur * np, (size_t)np * sizeof(i64));
    memcpy(gbirth, ring_birth + cur * np, (size_t)np * sizeof(i64));
    memset(ring_birth + cur * np, 0xFF, (size_t)np * sizeof(i64));
    cur = (cur + 1) % depth;
    ctr[CTR_CURSOR] = cur;

    /* Arbitration keys; KEY_MAX marks empty/consumed slots.  For
     * ARB_RANDOM the key grid was prefilled by Python from the same RNG
     * stream as the numpy path. */
    for (i64 i = 0; i < np; i++) {
        if (gbirth[i] < 0) {
            gkey[i] = KEY_MAX;
        } else if (arb != ARB_RANDOM) {
            i64 k = (gbirth[i] << SRC_SHIFT)
                    | ((gmeta[i] >> SRC_SHIFT) & NODE_MASK);
            gkey[i] = arb == ARB_YOUNGEST ? -k : k;
        }
    }

    /* Ejection: up to eject_width oldest local flits per node; output
     * order is round-major, node-ascending within a round (matches the
     * numpy ej_parts concatenation). */
    for (i64 round = 0; round < cfg[CFG_EJECT_W]; round++) {
        for (i64 node = 0; node < n; node++) {
            i64 base = node * p, best = KEY_MAX;
            int bc = -1;
            for (int c = 0; c < p; c++) {
                i64 k = gkey[base + c];
                if (k != KEY_MAX && (gmeta[base + c] & NODE_MASK) == node
                    && k < best) {
                    best = k;
                    bc = c;
                }
            }
            if (bc < 0)
                continue;
            i64 m = gmeta[base + bc];
            gkey[base + bc] = KEY_MAX;
            if (!emit_ejected(pt, cfg, ctr, node, m))
                return;
            account_ejection(ctr, hist, m, cycle - gbirth[base + bc]);
        }
    }

    /* Output-port allocation: per node, flits in key order try their
     * productive ports, else deflect to the first free link.  The numpy
     * rank-by-rank loop is per-node independent, so a per-node pass is
     * exactly equivalent. */
    memcpy(avail, link_up, (size_t)np);
    memset(out_birth, 0xFF, (size_t)np * sizeof(i64));
    for (i64 node = 0; node < n; node++) {
        i64 base = node * p;
        int cols[MAX_PORTS], cnt = 0;
        for (int c = 0; c < p; c++)
            if (gkey[base + c] != KEY_MAX)
                cols[cnt++] = c;
        /* Stable insertion sort by key (ties keep column order, like
         * kind="stable" argsort). */
        for (int i = 1; i < cnt; i++) {
            int c = cols[i];
            i64 k = gkey[base + c];
            int j = i - 1;
            while (j >= 0 && gkey[base + cols[j]] > k) {
                cols[j + 1] = cols[j];
                j--;
            }
            cols[j + 1] = c;
        }
        unsigned char *row = avail + base;
        for (int i = 0; i < cnt; i++) {
            int c = cols[i];
            i64 dest = gmeta[base + c] & NODE_MASK;
            int choice = -1;
            int p0 = p0tab[node * n + dest];
            int p1 = p1tab[node * n + dest];
            if (p0 >= 0 && row[p0])
                choice = p0;
            else if (p1 >= 0 && row[p1])
                choice = p1;
            if (choice < 0) {
                /* Deflect to the first free link (np.argmax). */
                choice = 0;
                for (int f = 0; f < p; f++)
                    if (row[f]) { choice = f; break; }
                ctr[CTR_DEFL] += 1;
            }
            row[choice] = 0;
            out_meta[base + choice] = gmeta[base + c] + HOP_ONE;
            out_birth[base + choice] = gbirth[base + c];
        }
    }

    /* Injection: responses first, then throttled requests; capacity is
     * "any free healthy output link". */
    unsigned char *capacity = (unsigned char *)pt[PT_W_NODE];
    for (i64 node = 0; node < n; node++) {
        unsigned char any = 0;
        for (int c = 0; c < p; c++)
            if (avail[node * p + c]) { any = 1; break; }
        capacity[node] = any;
    }
    injection_stage(pt, cfg, ctr, cycle, capacity, 0, avail);

    /* Congestion bit (mark_congestion) + send into the ring. */
    int mark = 0;
    for (i64 node = 0; node < n; node++)
        if (congested[node]) { mark = 1; break; }
    i64 sent = 0;
    for (i64 i = 0; i < np; i++) {
        if (out_birth[i] < 0)
            continue;
        i64 m = out_meta[i];
        if (mark && congested[i / p])
            m |= CBIT;
        i64 slot = (cur + lat_out[i] - 1) % depth;
        ring_meta[slot * np + target[i]] = m;
        ring_birth[slot * np + target[i]] = out_birth[i];
        sent++;
    }
    ctr[CTR_HOPS] += sent;
    /* Bufferless: occupancy integral stays zero. */
}

/* ------------------------------------------------------------------ */
/* Buffered XY network step (CreditFlowControl.step)                   */
/* ------------------------------------------------------------------ */
void noc_credit(void **pt, const i64 *cfg, i64 *ctr, i64 cycle)
{
    if (!check_abi(cfg, ctr))
        return;
    i64 n = cfg[CFG_N], p = cfg[CFG_P], depth = cfg[CFG_DEPTH];
    i64 pp = p + 1, np = n * p, bufcap = cfg[CFG_BUF_CAP];
    i64 *ring_meta = (i64 *)pt[PT_RING_META];
    i64 *ring_birth = (i64 *)pt[PT_RING_BIRTH];
    i64 *buf_meta = (i64 *)pt[PT_BUF_META];
    i64 *buf_birth = (i64 *)pt[PT_BUF_BIRTH];
    int32_t *buf_head = (int32_t *)pt[PT_BUF_HEAD];
    int32_t *buf_count = (int32_t *)pt[PT_BUF_COUNT];
    int32_t *reserved = (int32_t *)pt[PT_RESERVED];
    i64 *hkey = (i64 *)pt[PT_H_KEY];
    i64 *hout = (i64 *)pt[PT_H_OUT];
    i64 *w_node = (i64 *)pt[PT_W_NODE];
    i64 *w_in = (i64 *)pt[PT_W_IN];
    i64 *w_down = (i64 *)pt[PT_W_DOWN];
    i64 *w_dport = (i64 *)pt[PT_W_DPORT];
    unsigned char *grant = (unsigned char *)pt[PT_G_AVAIL];
    i64 *hist = (i64 *)pt[PT_LAT_HIST];
    const signed char *p0tab = (const signed char *)pt[PT_P0TAB];
    const unsigned char *link_up = (const unsigned char *)pt[PT_LINK_UP];
    const unsigned char *congested = (const unsigned char *)pt[PT_CONGESTED];
    const i64 *lat_out = (const i64 *)pt[PT_LAT_OUT];
    const i64 *neighbor = (const i64 *)pt[PT_NEIGHBOR];
    const i64 *reverse = (const i64 *)pt[PT_REVERSE];
    i64 arb = cfg[CFG_ARB];

    ctr[CTR_CYCLES] += 1;
    ctr[CTR_EJ_COUNT] = 0;

    /* Link arrivals drain into the input buffers (row-major, matching
     * np.nonzero order); each flat slot is a unique (node, port). */
    i64 cur = ctr[CTR_CURSOR];
    for (i64 i = 0; i < np; i++) {
        i64 b = ring_birth[cur * np + i];
        if (b < 0)
            continue;
        i64 node = i / p, port = i % p;
        i64 bi = node * pp + port;
        i64 slot = (buf_head[bi] + buf_count[bi]) % bufcap;
        buf_meta[bi * bufcap + slot] = ring_meta[cur * np + i];
        buf_birth[bi * bufcap + slot] = b;
        buf_count[bi] += 1;
        reserved[i] -= 1;
        ctr[CTR_BWRITES] += 1;
        ring_birth[cur * np + i] = -1;
    }
    cur = (cur + 1) % depth;
    ctr[CTR_CURSOR] = cur;

    /* Head-of-queue snapshot: key + output port per (node, in port),
     * computed once — pops during the out-port loop do NOT refresh it
     * (heads_into semantics).  hout -2 marks empty FIFOs. */
    int mark = 0;
    for (i64 node = 0; node < n; node++)
        if (congested[node]) { mark = 1; break; }
    for (i64 node = 0; node < n; node++) {
        for (i64 port = 0; port < pp; port++) {
            i64 bi = node * pp + port;
            if (buf_count[bi] <= 0) {
                hkey[bi] = KEY_MAX;
                hout[bi] = -2;
                continue;
            }
            i64 m = buf_meta[bi * bufcap + buf_head[bi]];
            i64 b = buf_birth[bi * bufcap + buf_head[bi]];
            if (arb != ARB_RANDOM) {
                i64 k = (b << SRC_SHIFT) | ((m >> SRC_SHIFT) & NODE_MASK);
                hkey[bi] = arb == ARB_YOUNGEST ? -k : k;
            }
            i64 dest = m & NODE_MASK;
            int p0 = p0tab[node * n + dest];
            hout[bi] = p0 < 0 ? p : p0;
        }
    }

    /* One winner per (node, output port); the eject port (index p) is
     * the last loop iteration, exactly like the numpy range(p + 1). */
    for (i64 op = 0; op <= p; op++) {
        i64 nw = 0;
        for (i64 node = 0; node < n; node++) {
            i64 best = KEY_MAX;
            int bc = -1;
            for (i64 port = 0; port < pp; port++) {
                i64 bi = node * pp + port;
                if (hout[bi] == op && hkey[bi] < best) {
                    best = hkey[bi];
                    bc = (int)port;
                }
            }
            if (bc < 0)
                continue;
            if (op == p) {
                /* Local delivery: pop immediately, node-ascending. */
                i64 bi = node * pp + bc;
                i64 m = buf_meta[bi * bufcap + buf_head[bi]];
                i64 b = buf_birth[bi * bufcap + buf_head[bi]];
                buf_head[bi] = (int32_t)((buf_head[bi] + 1) % bufcap);
                buf_count[bi] -= 1;
                ctr[CTR_BREADS] += 1;
                if (!emit_ejected(pt, cfg, ctr, node, m))
                    return;
                account_ejection(ctr, hist, m, cycle - b);
            } else {
                w_node[nw] = node;
                w_in[nw] = bc;
                nw++;
            }
        }
        if (op == p)
            continue;
        /* Two-phase grant: all credit checks read buffer/reserve state
         * as of this out-port iteration's start (the numpy space vector
         * is computed before any pop), then the grants apply. */
        for (i64 k = 0; k < nw; k++) {
            i64 node = w_node[k];
            i64 down = neighbor[node * p + op];
            i64 dport = reverse[node * p + op];
            w_down[k] = down;
            w_dport[k] = dport;
            grant[k] = (buf_count[down * pp + dport]
                        + reserved[down * p + dport] < bufcap)
                       && link_up[node * p + op];
        }
        for (i64 k = 0; k < nw; k++) {
            if (!grant[k])
                continue;
            i64 node = w_node[k];
            i64 bi = node * pp + w_in[k];
            i64 m = buf_meta[bi * bufcap + buf_head[bi]];
            i64 b = buf_birth[bi * bufcap + buf_head[bi]];
            buf_head[bi] = (int32_t)((buf_head[bi] + 1) % bufcap);
            buf_count[bi] -= 1;
            ctr[CTR_BREADS] += 1;
            m += HOP_ONE;
            if (mark && congested[node])
                m |= CBIT;
            i64 slot = (cur + lat_out[node * p + op] - 1) % depth;
            i64 idx = w_down[k] * p + w_dport[k];
            ring_meta[slot * np + idx] = m;
            ring_birth[slot * np + idx] = b;
            reserved[w_down[k] * p + w_dport[k]] += 1;
            ctr[CTR_HOPS] += 1;
        }
    }

    /* Injection through the NI input buffer.  The winner scratch is
     * free again once the out-port loop is done. */
    unsigned char *capacity = (unsigned char *)pt[PT_W_NODE];
    for (i64 node = 0; node < n; node++)
        capacity[node] = buf_count[node * pp + p] < bufcap;
    injection_stage(pt, cfg, ctr, cycle, capacity, 1, (unsigned char *)0);

    /* Occupancy integral: flits held in buffers after this cycle. */
    i64 occ = 0;
    for (i64 bi = 0; bi < n * pp; bi++)
        occ += buf_count[bi];
    ctr[CTR_OCC] += occ;
}

/* ------------------------------------------------------------------ */
/* Core phase (CoreArray.step minus the miss-issue tail)               */
/* ------------------------------------------------------------------ */
void noc_cores(void **pt, const i64 *cfg, i64 *ctr, i64 cycle)
{
    (void)cycle;
    if (!check_abi(cfg, ctr))
        return;
    i64 n = cfg[CFG_N];
    const unsigned char *active = (const unsigned char *)pt[PT_CO_ACTIVE];
    double *retired = (double *)pt[PT_CO_RETIRED];
    const double *issue_pos = (const double *)pt[PT_CO_ISSUE_POS];
    const unsigned char *complete = (const unsigned char *)pt[PT_CO_COMPLETE];
    const i64 *issued = (const i64 *)pt[PT_CO_ISSUED];
    const i64 *completed = (const i64 *)pt[PT_CO_COMPLETED];
    i64 *head = (i64 *)pt[PT_CO_HEAD];
    double *gap = (double *)pt[PT_CO_GAP];
    double *epoch_insns = (double *)pt[PT_CO_EPOCH_INSNS];
    i64 *stall = (i64 *)pt[PT_CO_STALL];
    i64 *wstall = (i64 *)pt[PT_CO_WSTALL];
    i64 *miss_out = (i64 *)pt[PT_MISS_OUT];
    const int32_t *req_count = (const int32_t *)pt[PT_REQ_COUNT];
    i64 qcap = cfg[CFG_QCAP];
    double iw = (double)cfg[CFG_ISSUE_W];
    double ws = (double)cfg[CFG_WINDOW];
    i64 mshr = cfg[CFG_MSHR];

    /* Bounded head sweep: up to 4 rounds; the dirty flag clears only
     * when a round advances no node (the numpy early-break). */
    if (ctr[CTR_HEAD_DIRTY]) {
        for (int round = 0; round < 4; round++) {
            int any = 0;
            for (i64 node = 0; node < n; node++) {
                if (head[node] < issued[node]
                    && complete[node * SEQ_RING + head[node] % SEQ_RING]) {
                    head[node] += 1;
                    any = 1;
                }
            }
            if (!any) {
                ctr[CTR_HEAD_DIRTY] = 0;
                break;
            }
        }
    }

    i64 miss = 0;
    for (i64 node = 0; node < n; node++) {
        i64 outstanding = issued[node] - completed[node];
        int has_inflight = head[node] < issued[node];
        double wr = INFINITY;
        if (has_inflight)
            wr = (issue_pos[node * SEQ_RING + head[node] % SEQ_RING] + ws)
                 - retired[node];
        int stalled = (outstanding >= mshr) || (req_count[node] >= qcap)
                      || (wr <= 0.0);
        int run = active[node] && !stalled;
        stall[node] += active[node] && stalled;
        wstall[node] += active[node] && (wr <= 0.0);
        double adv = 0.0;
        if (run) {
            double g = gap[node] > 0.0 ? gap[node] : 0.0;
            double m = g < wr ? g : wr;
            adv = iw < m ? iw : m;
        }
        retired[node] += adv;
        epoch_insns[node] += adv;
        gap[node] -= adv;
        if (run && gap[node] <= 0.0)
            miss_out[miss++] = node;
    }
    ctr[CTR_MISS_CNT] = miss;
}

/* ------------------------------------------------------------------ */
/* Miss-issue tail (CoreArray._issue_misses minus the RNG draws)       */
/* ------------------------------------------------------------------ */
/* Python samples the destinations (PT_ISSUE_DEST) from the shared RNG
 * stream first, this kernel performs the queue pushes and per-miss
 * bookkeeping, and Python then draws the next gaps for the accepted
 * subset — the exact call order of the reference tail.  The accepted
 * nodes are compacted in place into PT_MISS_OUT (they are a prefix-
 * order subset of the misser list). */
void noc_issue(void **pt, const i64 *cfg, i64 *ctr, i64 cycle)
{
    if (!check_abi(cfg, ctr))
        return;
    i64 k = ctr[CTR_MISS_CNT];
    i64 qcap = cfg[CFG_QCAP];
    i64 req_flits = cfg[CFG_REQ_FLITS];
    i64 *nodes = (i64 *)pt[PT_MISS_OUT];
    const i64 *dest = (const i64 *)pt[PT_ISSUE_DEST];
    int32_t *req_dest = (int32_t *)pt[PT_REQ_DEST];
    int8_t *req_kind = (int8_t *)pt[PT_REQ_KIND];
    int16_t *req_flit = (int16_t *)pt[PT_REQ_FLITS];
    i64 *req_stamp = (i64 *)pt[PT_REQ_STAMP];
    int16_t *req_seq = (int16_t *)pt[PT_REQ_SEQ];
    int32_t *req_head = (int32_t *)pt[PT_REQ_HEAD];
    int32_t *req_count = (int32_t *)pt[PT_REQ_COUNT];
    double *issue_pos = (double *)pt[PT_CO_ISSUE_POS];
    int16_t *recv = (int16_t *)pt[PT_CO_RECV];
    unsigned char *complete = (unsigned char *)pt[PT_CO_COMPLETE];
    i64 *issued = (i64 *)pt[PT_CO_ISSUED];
    i64 *misses = (i64 *)pt[PT_CO_MISSES];
    i64 *epoch_flits = (i64 *)pt[PT_CO_EPOCH_FLITS];
    const double *retired = (const double *)pt[PT_CO_RETIRED];

    i64 m = 0;
    for (i64 i = 0; i < k; i++) {
        i64 node = nodes[i];
        if (req_count[node] >= qcap)
            continue;  /* rejected: gap stays 0, backpressure stalls */
        i64 seq = issued[node] % SEQ_RING;
        i64 slot = (req_head[node] + req_count[node]) % qcap;
        i64 idx = node * qcap + slot;
        req_dest[idx] = (int32_t)dest[i];
        req_kind[idx] = KIND_REQUEST;
        req_flit[idx] = (int16_t)req_flits;
        req_stamp[idx] = cycle;
        req_seq[idx] = (int16_t)seq;
        req_count[node] += 1;
        i64 ring = node * SEQ_RING + seq;
        issue_pos[ring] = retired[node];
        recv[ring] = 0;
        complete[ring] = 0;
        issued[node] += 1;
        misses[node] += 1;
        epoch_flits[node] += req_flits + cfg[CFG_REPLY_FLITS];
        nodes[m++] = node;
    }
    ctr[CTR_ACCEPTED] = m;
}

/* ------------------------------------------------------------------ */
/* Memory phase (MemorySystem.step)                                    */
/* ------------------------------------------------------------------ */
void noc_memory(void **pt, const i64 *cfg, i64 *ctr, i64 cycle)
{
    if (!check_abi(cfg, ctr))
        return;
    i64 L = cfg[CFG_L2_LAT], cap = cfg[CFG_EJ_CAP], pcap = cfg[CFG_PEND_CAP];
    i64 qcap = cfg[CFG_QCAP];
    i64 *mem_srv = (i64 *)pt[PT_MEM_SRV];
    i64 *mem_req = (i64 *)pt[PT_MEM_REQ];
    i64 *mem_seq = (i64 *)pt[PT_MEM_SEQ];
    i64 *mem_cnt = (i64 *)pt[PT_MEM_CNT];
    i64 *pend_s = (i64 *)pt[PT_PEND_S];
    i64 *pend_r = (i64 *)pt[PT_PEND_R];
    i64 *pend_q = (i64 *)pt[PT_PEND_Q];
    i64 *scr_s = (i64 *)pt[PT_SCR_S];
    i64 *scr_r = (i64 *)pt[PT_SCR_R];
    i64 *scr_q = (i64 *)pt[PT_SCR_Q];
    unsigned char *seen = (unsigned char *)pt[PT_VISITED];
    int32_t *resp_dest = (int32_t *)pt[PT_RESP_DEST];
    int8_t *resp_kind = (int8_t *)pt[PT_RESP_KIND];
    int16_t *resp_flits = (int16_t *)pt[PT_RESP_FLITS];
    i64 *resp_stamp = (i64 *)pt[PT_RESP_STAMP];
    int16_t *resp_seq = (int16_t *)pt[PT_RESP_SEQ];
    int32_t *resp_head = (int32_t *)pt[PT_RESP_HEAD];
    int32_t *resp_count = (int32_t *)pt[PT_RESP_COUNT];

    i64 mcur = ctr[CTR_MEM_CURSOR];
    i64 due_cnt = mem_cnt[mcur];
    i64 due_base = mcur * cap;
    i64 pend = ctr[CTR_PEND_CNT];
    mem_cnt[mcur] = 0;
    ctr[CTR_MEM_CURSOR] = (mcur + 1) % L;
    if (due_cnt == 0 && pend == 0)
        return;
    i64 total = pend + due_cnt;

    /* Combined order: retries first, then the due batch.  One reply per
     * server per cycle: the first occurrence attempts the enqueue;
     * failures then leftovers (in order) become the new retry list. */
    i64 nf = 0, nl = 0;
    for (i64 i = 0; i < total; i++) {
        i64 s, r, q;
        if (i < pend) {
            s = pend_s[i]; r = pend_r[i]; q = pend_q[i];
        } else {
            s = mem_srv[due_base + i - pend];
            r = mem_req[due_base + i - pend];
            q = mem_seq[due_base + i - pend];
        }
        if (!seen[s]) {
            seen[s] = 1;
            if (resp_count[s] < qcap) {
                i64 slot = (resp_head[s] + resp_count[s]) % qcap;
                i64 idx = s * qcap + slot;
                resp_dest[idx] = (int32_t)r;
                resp_kind[idx] = KIND_REPLY;
                resp_flits[idx] = (int16_t)cfg[CFG_REPLY_FLITS];
                resp_stamp[idx] = cycle;
                resp_seq[idx] = (int16_t)q;
                resp_count[s] += 1;
                ctr[CTR_REP_ISSUED] += 1;
            } else {
                scr_s[nf] = s; scr_r[nf] = r; scr_q[nf] = q;
                nf++;
            }
        } else {
            scr_s[pcap + nl] = s; scr_r[pcap + nl] = r; scr_q[pcap + nl] = q;
            nl++;
        }
    }
    for (i64 i = 0; i < total; i++) {
        i64 s = i < pend ? pend_s[i] : mem_srv[due_base + i - pend];
        seen[s] = 0;
    }
    if (nf + nl > pcap) {
        ctr[CTR_ERROR] = ERR_PENDING_OVERFLOW;
        return;
    }
    memcpy(pend_s, scr_s, (size_t)nf * sizeof(i64));
    memcpy(pend_r, scr_r, (size_t)nf * sizeof(i64));
    memcpy(pend_q, scr_q, (size_t)nf * sizeof(i64));
    memcpy(pend_s + nf, scr_s + pcap, (size_t)nl * sizeof(i64));
    memcpy(pend_r + nf, scr_r + pcap, (size_t)nl * sizeof(i64));
    memcpy(pend_q + nf, scr_q + pcap, (size_t)nl * sizeof(i64));
    ctr[CTR_PEND_CNT] = nf + nl;
}

/* ------------------------------------------------------------------ */
/* Ejection phase (Simulator._ejection_phase consumers)                */
/* ------------------------------------------------------------------ */
void noc_eject(void **pt, const i64 *cfg, i64 *ctr, i64 cycle)
{
    (void)cycle;
    if (!check_abi(cfg, ctr))
        return;
    i64 k = ctr[CTR_EJ_COUNT];
    if (k == 0)
        return;
    const i64 *ej_node = (const i64 *)pt[PT_EJ_NODE];
    const i64 *ej_src = (const i64 *)pt[PT_EJ_SRC];
    const i64 *ej_kind = (const i64 *)pt[PT_EJ_KIND];
    const i64 *ej_seq = (const i64 *)pt[PT_EJ_SEQ];

    /* Request flits enter L2 service (MemorySystem.on_requests): the
     * whole cycle's batch lands l2_latency - 1 slots ahead. */
    i64 L = cfg[CFG_L2_LAT];
    i64 slot = (ctr[CTR_MEM_CURSOR] + L - 1) % L;
    i64 *mem_cnt = (i64 *)pt[PT_MEM_CNT];
    i64 cnt = mem_cnt[slot];
    i64 base = slot * cfg[CFG_EJ_CAP];
    i64 *mem_srv = (i64 *)pt[PT_MEM_SRV];
    i64 *mem_req = (i64 *)pt[PT_MEM_REQ];
    i64 *mem_seq = (i64 *)pt[PT_MEM_SEQ];
    for (i64 i = 0; i < k; i++) {
        if (ej_kind[i] != KIND_REQUEST)
            continue;
        if (cnt >= cfg[CFG_EJ_CAP]) {
            ctr[CTR_ERROR] = ERR_MEM_RING_OVERFLOW;
            return;
        }
        mem_srv[base + cnt] = ej_node[i];
        mem_req[base + cnt] = ej_src[i];
        mem_seq[base + cnt] = ej_seq[i];
        cnt++;
        ctr[CTR_REQ_SERVICED] += 1;
    }
    mem_cnt[slot] = cnt;

    /* Reply flits complete core misses (CoreArray.on_reply_flits):
     * first accumulate every flit, then resolve each distinct
     * (node, seq) pair once. */
    int16_t *recv = (int16_t *)pt[PT_CO_RECV];
    unsigned char *complete = (unsigned char *)pt[PT_CO_COMPLETE];
    i64 *completed = (i64 *)pt[PT_CO_COMPLETED];
    unsigned char *visited = (unsigned char *)pt[PT_VISITED];
    i64 reply_flits = cfg[CFG_REPLY_FLITS];
    int dirty = 0;
    for (i64 i = 0; i < k; i++)
        if (ej_kind[i] == KIND_REPLY)
            recv[ej_node[i] * SEQ_RING + ej_seq[i]] += 1;
    for (i64 i = 0; i < k; i++) {
        if (ej_kind[i] != KIND_REPLY)
            continue;
        i64 idx = ej_node[i] * SEQ_RING + ej_seq[i];
        if (visited[idx])
            continue;
        visited[idx] = 1;
        if (recv[idx] >= reply_flits && !complete[idx]) {
            complete[idx] = 1;
            completed[ej_node[i]] += 1;
            dirty = 1;
        }
    }
    for (i64 i = 0; i < k; i++)
        if (ej_kind[i] == KIND_REPLY)
            visited[ej_node[i] * SEQ_RING + ej_seq[i]] = 0;
    if (dirty)
        ctr[CTR_HEAD_DIRTY] = 1;
}
