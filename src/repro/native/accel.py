"""ctypes bridge between the simulator and the compiled kernels.

:class:`NativeAccel` gathers the simulator's numpy buffers into a
pointer table (one slot per array, in the exact order of the C enum in
``kernels.c``) and drives the four hot phases through the compiled
entry points.  The kernels mutate the *same* arrays Python owns, so
every live view (queues, buffers, per-node stats arrays, core state)
stays coherent without copies; only Python-scalar statistics need a
per-cycle mirror flush.

Configurations the kernels do not model raise
:class:`NativeUnsupported` at construction time — the backend is opt-in
and refuses loudly rather than silently diverging from the reference.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.network.base import EjectedFlits
from repro.network.flit import SEQ_RING
from repro.native.build import NativeBuildError, load_library

__all__ = ["NativeAccel", "NativeUnsupported"]

#: The C translation unit this module mirrors, relative to this file.
#: Declaring it makes the module a *kernel mirror* for the NATIVE rules
#: in ``repro.analysis``: the enum/#define mirrors below are checked
#: against the C source on every analyzer run, not just at runtime.
KERNEL_SOURCE = "kernels.c"

_KEY_MAX = np.iinfo(np.int64).max  # repro: c-mirror[KEY_MAX]

#: C-side port-count cap.
_MAX_PORTS = 64  # repro: c-mirror[MAX_PORTS]

_ARB_CODES = {"oldest_first": 0, "youngest_first": 1, "random": 2}

# cfg slots — mirror of the CFG_* enum in kernels.c, checked by NATIVE001.
(
    CFG_N, CFG_P, CFG_DEPTH, CFG_EJECT_W, CFG_QCAP, CFG_SW, CFG_ARB,
    CFG_ISSUE_W, CFG_WINDOW, CFG_MSHR, CFG_REPLY_FLITS, CFG_L2_LAT,
    CFG_EJ_CAP, CFG_PEND_CAP, CFG_BUF_CAP, CFG_SLOT_COUNT, CFG_REQ_FLITS,
    CFG_NUM,
) = range(18)

# ctr slots — mirror of the CTR_* enum in kernels.c, checked by NATIVE001.
(
    CTR_CURSOR, CTR_SPOS, CTR_SSEEN, CTR_CYCLES, CTR_INJ, CTR_EJ_FLITS,
    CTR_HOPS, CTR_DEFL, CTR_BWRITES, CTR_BREADS, CTR_OCC, CTR_LAT_SUM,
    CTR_LAT_CNT, CTR_LAT_MAX, CTR_HOPS_SUM, CTR_INJLAT_SUM,
    CTR_INJLAT_CNT, CTR_HEAD_DIRTY, CTR_MISS_CNT, CTR_MEM_CURSOR,
    CTR_PEND_CNT, CTR_REQ_SERVICED, CTR_REP_ISSUED, CTR_EJ_COUNT,
    CTR_ERROR, CTR_ACCEPTED, CTR_NUM,
) = range(27)

#: Pointer-table slot names, in slot order — mirror of the PT_* enum in
#: kernels.c (terminator excluded), checked by NATIVE002 together with
#: the length of the ``arrays`` literal that realizes it below.
PT_SLOT_NAMES = (
    "PT_RING_META", "PT_RING_BIRTH", "PT_LAT_OUT", "PT_TARGET_FLAT",
    "PT_LINK_UP", "PT_NEIGHBOR", "PT_REVERSE", "PT_P0TAB", "PT_P1TAB",
    "PT_CONGESTED",
    "PT_REQ_DEST", "PT_REQ_KIND", "PT_REQ_FLITS", "PT_REQ_STAMP",
    "PT_REQ_SEQ", "PT_REQ_HEAD", "PT_REQ_COUNT",
    "PT_RESP_DEST", "PT_RESP_KIND", "PT_RESP_FLITS", "PT_RESP_STAMP",
    "PT_RESP_SEQ", "PT_RESP_HEAD", "PT_RESP_COUNT",
    "PT_THR_COUNTER", "PT_THR_RATE", "PT_STARV_RING", "PT_STARV_SUM",
    "PT_INJ_PER_NODE", "PT_STARVED_CYC", "PT_PORT_STARVED_CYC",
    "PT_LAT_HIST",
    "PT_G_META", "PT_G_BIRTH", "PT_G_KEY", "PT_G_AVAIL", "PT_G_OUTM",
    "PT_G_OUTB",
    "PT_H_KEY", "PT_H_OUT", "PT_W_NODE", "PT_W_IN", "PT_W_DOWN",
    "PT_W_DPORT",
    "PT_BUF_META", "PT_BUF_BIRTH", "PT_BUF_HEAD", "PT_BUF_COUNT",
    "PT_RESERVED",
    "PT_EJ_NODE", "PT_EJ_SRC", "PT_EJ_KIND", "PT_EJ_SEQ", "PT_EJ_CBIT",
    "PT_CO_ACTIVE", "PT_CO_RETIRED", "PT_CO_ISSUE_POS", "PT_CO_RECV",
    "PT_CO_COMPLETE", "PT_CO_ISSUED", "PT_CO_COMPLETED", "PT_CO_HEAD",
    "PT_CO_GAP",
    "PT_CO_EPOCH_INSNS", "PT_CO_STALL", "PT_CO_WSTALL", "PT_MISS_OUT",
    "PT_VISITED",
    "PT_MEM_SRV", "PT_MEM_REQ", "PT_MEM_SEQ", "PT_MEM_CNT",
    "PT_PEND_S", "PT_PEND_R", "PT_PEND_Q", "PT_SCR_S", "PT_SCR_R",
    "PT_SCR_Q",
    "PT_CO_MISSES", "PT_CO_EPOCH_FLITS", "PT_ISSUE_DEST",
)

_ERRORS = {
    1: "pointer-table slot count mismatch — the Python table drifted "
       "from the PT_* enum; run "
       "`python -m repro.analysis src --select NATIVE002` and rebuild",
    2: "memory service ring overflow",
    3: "pending-reply scratch overflow",
    4: "ejection scratch overflow",
    5: f"too many router ports for the native backend (max {_MAX_PORTS})",
}


class NativeUnsupported(RuntimeError):
    """This configuration cannot run on the compiled backend."""


def _check(condition: bool, why: str) -> None:
    if not condition:
        raise NativeUnsupported(f"native backend: {why}")


class NativeAccel:
    """Compiled drop-in for the behavior-independent simulator phases."""

    def __init__(self, sim):
        config = sim.config
        net = sim.network
        cores = sim.cores
        memory = sim.memory
        _check(
            config.network in ("bless", "buffered"),
            f"network {config.network!r} is not implemented in C "
            "(only 'bless' and 'buffered' are)",
        )
        _check(sim.fault_model is None, "fault/chaos campaigns need the "
               "reference implementation's recovery paths")
        _check(sim.tracer is None, "flit tracing hooks only exist in the "
               "reference implementation")
        _check(sim.checker is None, "the invariant checker needs "
               "reference-side intermediate state")
        _check(net._p0_flat is not None,
               "topology too large for precomputed route tables")
        n, p = net.num_nodes, net.num_ports
        _check(p + 1 <= _MAX_PORTS - 1, "router has too many ports")
        try:
            self._lib = load_library()
        except NativeBuildError as exc:
            raise NativeUnsupported(f"native backend: {exc}") from exc

        self._sim = sim
        self._net = net
        self._cores = cores
        self._memory = memory
        self._stats = net.stats
        self._buffered = config.network == "buffered"
        arb = _ARB_CODES[net.arbitration]
        self._arb_random = arb == _ARB_CODES["random"]
        self._rng = net._rng

        eject_width = net.eject_width if not self._buffered else 1
        ej_cap = n * eject_width
        pend_cap = n * cores.mshr_limit + ej_cap + 8
        l2 = memory.l2_latency
        qcap = net.request_queue.capacity

        i64, u8 = np.int64, np.bool_

        def alloc(shape, dtype):
            return np.zeros(shape, dtype=dtype)

        # Contiguous int64 copies of topology tables the C side indexes
        # flat; the topology is immutable under the supported configs.
        self._neighbor = np.ascontiguousarray(
            net.topology.neighbor, dtype=i64
        )
        self._reverse = np.ascontiguousarray(
            net.topology.reverse_port, dtype=i64
        )
        self._link_up = np.ascontiguousarray(net.link_up, dtype=u8)

        # Working grids owned by the accel (the reference path's arena
        # grids stay untouched so both paths can coexist in one process).
        self._g_meta = alloc((n, p), i64)
        self._g_birth = alloc((n, p), i64)
        self._g_key = alloc((n, p), i64)
        self._g_avail = alloc((n, p), u8)
        self._g_outm = alloc((n, p), i64)
        self._g_outb = alloc((n, p), i64)
        self._h_key = alloc((n, p + 1), i64)
        self._h_out = alloc((n, p + 1), i64)
        self._w_node = alloc(n, i64)
        self._w_in = alloc(n, i64)
        self._w_down = alloc(n, i64)
        self._w_dport = alloc(n, i64)

        # Ejection batch, exposed back to Python as array views.
        self._ej_node = alloc(ej_cap, i64)
        self._ej_src = alloc(ej_cap, i64)
        self._ej_kind = alloc(ej_cap, i64)
        self._ej_seq = alloc(ej_cap, i64)
        self._ej_cbit = alloc(ej_cap, u8)

        # Core-phase miss output + (node, seq)-dedup scratch.
        self._miss_out = alloc(n, i64)
        self._issue_dest = alloc(n, i64)
        self._visited = alloc(max(n * SEQ_RING, 1), np.uint8)

        # Memory system state lives entirely on the C side (the Python
        # MemorySystem ring holds object tuples, which C cannot share).
        self._mem_srv = alloc((l2, ej_cap), i64)
        self._mem_req = alloc((l2, ej_cap), i64)
        self._mem_seq = alloc((l2, ej_cap), i64)
        self._mem_cnt = alloc(l2, i64)
        self._pend_s = alloc(pend_cap, i64)
        self._pend_r = alloc(pend_cap, i64)
        self._pend_q = alloc(pend_cap, i64)
        self._scr_s = alloc(2 * pend_cap, i64)
        self._scr_r = alloc(2 * pend_cap, i64)
        self._scr_q = alloc(2 * pend_cap, i64)

        dummy64 = alloc(1, i64)
        dummy32 = alloc(1, np.int32)
        if self._buffered:
            buf = net.buffers
            buf_meta, buf_birth = buf.meta, buf.birth
            buf_head, buf_count = buf.head, buf.count
            reserved = net.reserved
            buf_cap = net.buffer_capacity
        else:
            buf_meta = buf_birth = dummy64
            buf_head = buf_count = reserved = dummy32
            buf_cap = 0

        req, resp = net.request_queue, net.response_queue
        meter, gate = net.starvation, net.throttle
        stats = net.stats
        # Slot order here IS PT_SLOT_NAMES (and therefore the PT_* enum
        # in kernels.c) — append-only; NATIVE002 checks all three sides.
        arrays = [
            net._ring_meta, net._ring_birth, net._lat_out,
            net._target_flat, self._link_up, self._neighbor,
            self._reverse, net._p0_flat, net._p1_flat,
            net.congested_nodes,
            req.dest, req.kind, req.flits, req.stamp, req.seq,
            req.head, req.count,
            resp.dest, resp.kind, resp.flits, resp.stamp, resp.seq,
            resp.head, resp.count,
            gate.counter, gate.rate, meter._ring, meter._sum,
            stats.injected_per_node, stats.starved_cycles,
            stats.port_starved_cycles, stats.latency_hist,
            self._g_meta, self._g_birth, self._g_key, self._g_avail,
            self._g_outm, self._g_outb,
            self._h_key, self._h_out,
            self._w_node, self._w_in, self._w_down, self._w_dport,
            buf_meta, buf_birth, buf_head, buf_count, reserved,
            self._ej_node, self._ej_src, self._ej_kind, self._ej_seq,
            self._ej_cbit,
            cores.active, cores.retired, cores._issue_pos, cores._recv,
            cores._complete, cores._issued, cores._completed,
            cores._head, cores._insns_until_miss, cores.epoch_insns,
            cores.stall_cycles, cores.window_stall_cycles,
            self._miss_out,
            self._visited,
            self._mem_srv, self._mem_req, self._mem_seq, self._mem_cnt,
            self._pend_s, self._pend_r, self._pend_q,
            self._scr_s, self._scr_r, self._scr_q,
            cores.misses_issued, cores.epoch_flits, self._issue_dest,
        ]
        if len(arrays) != len(PT_SLOT_NAMES):
            raise NativeUnsupported(
                f"pointer table has {len(arrays)} entries but "
                f"PT_SLOT_NAMES declares {len(PT_SLOT_NAMES)} slots; the "
                "table drifted from the kernels.c PT_* enum — run "
                "`python -m repro.analysis src --select NATIVE002`"
            )
        for a in arrays:
            assert a.flags["C_CONTIGUOUS"], "pointer-table arrays must be contiguous"
        self._arrays = arrays  # keep the buffers alive
        self._pt = (ctypes.c_void_p * len(arrays))(
            *[a.ctypes.data for a in arrays]
        )

        cfg = np.zeros(CFG_NUM, dtype=np.int64)
        cfg[CFG_N] = n
        cfg[CFG_P] = p
        cfg[CFG_DEPTH] = net._ring_depth
        cfg[CFG_EJECT_W] = eject_width
        cfg[CFG_QCAP] = qcap
        cfg[CFG_SW] = meter.window
        cfg[CFG_ARB] = arb
        cfg[CFG_ISSUE_W] = cores.issue_width
        cfg[CFG_WINDOW] = cores.window_size
        cfg[CFG_MSHR] = cores.mshr_limit
        cfg[CFG_REPLY_FLITS] = cores.reply_flits
        cfg[CFG_L2_LAT] = l2
        cfg[CFG_EJ_CAP] = ej_cap
        cfg[CFG_PEND_CAP] = pend_cap
        cfg[CFG_BUF_CAP] = buf_cap
        cfg[CFG_SLOT_COUNT] = len(arrays)
        cfg[CFG_REQ_FLITS] = cores.request_flits
        self._cfg = cfg

        ctr = np.zeros(CTR_NUM, dtype=np.int64)
        ctr[CTR_CURSOR] = net._cursor
        ctr[CTR_SPOS] = meter._pos
        ctr[CTR_SSEEN] = meter._cycles_seen
        ctr[CTR_CYCLES] = stats.cycles
        ctr[CTR_INJ] = stats.injected_flits
        ctr[CTR_EJ_FLITS] = stats.ejected_flits
        ctr[CTR_HOPS] = stats.flit_hops
        ctr[CTR_DEFL] = stats.deflections
        ctr[CTR_BWRITES] = stats.buffer_writes
        ctr[CTR_BREADS] = stats.buffer_reads
        ctr[CTR_OCC] = stats.buffer_occupancy_sum
        ctr[CTR_LAT_SUM] = stats.latency_sum
        ctr[CTR_LAT_CNT] = stats.latency_count
        ctr[CTR_LAT_MAX] = stats.latency_max
        ctr[CTR_HOPS_SUM] = stats.hops_sum
        ctr[CTR_INJLAT_SUM] = net.injection_latency_sum
        ctr[CTR_INJLAT_CNT] = net.injection_latency_count
        ctr[CTR_HEAD_DIRTY] = int(cores._head_dirty)
        ctr[CTR_MEM_CURSOR] = memory._cursor
        ctr[CTR_REQ_SERVICED] = memory.requests_serviced
        ctr[CTR_REP_ISSUED] = memory.replies_issued
        self._ctr = ctr

        ll = ctypes.POINTER(ctypes.c_longlong)
        self._cfg_p = cfg.ctypes.data_as(ll)
        self._ctr_p = ctr.ctypes.data_as(ll)
        self._net_kernel = (
            self._lib.noc_credit if self._buffered else self._lib.noc_bless
        )
        self._key_grid = self._h_key if self._buffered else self._g_key
        self._empty_ejected = EjectedFlits.empty()
        # The scalar-stats mirror flush is deferred to epoch boundaries
        # and result() unless a per-cycle observer (the watchdog) reads
        # the stats object between network steps.
        self._eager_flush = sim.watchdog is not None

    # ------------------------------------------------------------------
    def _check_error(self) -> None:
        code = int(self._ctr[CTR_ERROR])
        if code:
            raise RuntimeError(
                f"native kernel error: {_ERRORS.get(code, code)}"
            )

    def flush(self) -> None:
        """Mirror the C counters back onto the Python stat objects.

        Array state needs no flushing (the kernels mutate the arrays
        Python owns); this covers the Python *scalars* only.  Called at
        epoch boundaries and before result() — and per network step
        when a watchdog observes the stats every cycle.
        """
        ctr, stats, net = self._ctr, self._stats, self._net
        stats.cycles = int(ctr[CTR_CYCLES])
        stats.injected_flits = int(ctr[CTR_INJ])
        stats.ejected_flits = int(ctr[CTR_EJ_FLITS])
        stats.flit_hops = int(ctr[CTR_HOPS])
        stats.deflections = int(ctr[CTR_DEFL])
        stats.buffer_writes = int(ctr[CTR_BWRITES])
        stats.buffer_reads = int(ctr[CTR_BREADS])
        stats.buffer_occupancy_sum = int(ctr[CTR_OCC])
        stats.latency_sum = int(ctr[CTR_LAT_SUM])
        stats.latency_count = int(ctr[CTR_LAT_CNT])
        stats.latency_max = int(ctr[CTR_LAT_MAX])
        stats.hops_sum = int(ctr[CTR_HOPS_SUM])
        net.injection_latency_sum = int(ctr[CTR_INJLAT_SUM])
        net.injection_latency_count = int(ctr[CTR_INJLAT_CNT])
        net._cursor = int(ctr[CTR_CURSOR])
        meter = net.starvation
        meter._pos = int(ctr[CTR_SPOS])
        meter._cycles_seen = int(ctr[CTR_SSEEN])
        self._memory.requests_serviced = int(ctr[CTR_REQ_SERVICED])
        self._memory.replies_issued = int(ctr[CTR_REP_ISSUED])
        self._cores._head_dirty = bool(ctr[CTR_HEAD_DIRTY])

    # ------------------------------------------------------------------
    # Phase drivers (called by the Simulator's native pipeline)
    # ------------------------------------------------------------------
    def cores_phase(self, cycle: int) -> None:
        self._lib.noc_cores(self._pt, self._cfg_p, self._ctr_p, cycle)
        self._check_error()
        k = int(self._ctr[CTR_MISS_CNT])
        if k:
            # The reference miss tail, split around its RNG draws: the
            # destinations and next gaps come from the same streams, in
            # the same order, as CoreArray._issue_misses; the queue
            # pushes and per-miss bookkeeping in between run in C.
            cores = self._cores
            self._issue_dest[:k] = cores.locality.sample(
                self._miss_out[:k], cores.rng
            )
            self._lib.noc_issue(self._pt, self._cfg_p, self._ctr_p, cycle)
            m = int(self._ctr[CTR_ACCEPTED])
            if m:
                accepted = self._miss_out[:m]
                cores._insns_until_miss[accepted] = (
                    cores.behavior.sample_gap(accepted, cores.rng)
                )

    def memory_phase(self, cycle: int) -> None:
        self._lib.noc_memory(self._pt, self._cfg_p, self._ctr_p, cycle)
        self._check_error()

    def network_phase(self, cycle: int) -> EjectedFlits:
        if self._arb_random:
            # Same draw (size, dtype, bounds) as RandomArbitration, so
            # the RNG stream matches the reference bit for bit.
            self._key_grid[...] = self._rng.integers(
                0, _KEY_MAX, size=self._key_grid.shape, dtype=np.int64
            )
        self._net_kernel(self._pt, self._cfg_p, self._ctr_p, cycle)
        self._check_error()
        if self._eager_flush:
            self.flush()
        if not self._sim._observe:
            # Ejection consumers run in C (noc_eject); the batch only
            # needs Python-side wrapping for an observing controller.
            return self._empty_ejected
        k = int(self._ctr[CTR_EJ_COUNT])
        return EjectedFlits(
            self._ej_node[:k], self._ej_src[:k], self._ej_kind[:k],
            self._ej_seq[:k], self._ej_cbit[:k],
        )

    def ejection_phase(self, cycle: int) -> None:
        self._lib.noc_eject(self._pt, self._cfg_p, self._ctr_p, cycle)
        self._check_error()
