"""Compiled hot-path backend (``SimulationConfig.backend = "native"``).

C implementations of the four behavior-independent simulator phases
(cores, memory, network, ejection), bit-identical to the pure-numpy
reference.  The kernels compile on demand from ``kernels.c``; hosts
without a C compiler keep the default numpy backend.
"""

from repro.native.accel import NativeAccel, NativeUnsupported
from repro.native.build import NativeBuildError, load_library, native_available

__all__ = [
    "NativeAccel",
    "NativeBuildError",
    "NativeUnsupported",
    "load_library",
    "native_available",
]
