"""Hardware-cost model of the mechanism (§6.5).

Per node the mechanism needs:

- the starvation meter: a W-bit shift register plus an up/down counter
  wide enough to count to W,
- the throttle gate: a free-running 7-bit counter (``MAX_COUNT`` = 128)
  and one comparator,
- a quantized throttling-rate register the comparator reads.

With the paper's W = 128 this totals 149 bits of storage, two counters
and one comparator — "a minimal cost compared to (for example) the
128KB L1 cache".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MechanismHardwareCost", "mechanism_hardware_cost"]

#: Width of the quantized per-node throttling-rate register.
_RATE_REGISTER_BITS = 6


@dataclass(frozen=True)
class MechanismHardwareCost:
    """Per-node storage/logic inventory."""

    shift_register_bits: int
    starvation_counter_bits: int
    throttle_counter_bits: int
    rate_register_bits: int
    counters: int = 2
    comparators: int = 1

    @property
    def total_bits(self) -> int:
        return (
            self.shift_register_bits
            + self.starvation_counter_bits
            + self.throttle_counter_bits
            + self.rate_register_bits
        )

    def fraction_of_l1(self, l1_bytes: int = 128 * 1024) -> float:
        """Storage relative to the 128KB L1 the paper compares against."""
        return self.total_bits / (l1_bytes * 8)


def mechanism_hardware_cost(
    starvation_window: int = 128, max_count: int = 128
) -> MechanismHardwareCost:
    """Cost of the mechanism for a given starvation window W."""
    if starvation_window < 1 or max_count < 2:
        raise ValueError("window and max_count must be positive")
    return MechanismHardwareCost(
        shift_register_bits=starvation_window,
        starvation_counter_bits=math.ceil(math.log2(starvation_window + 1)),
        throttle_counter_bits=math.ceil(math.log2(max_count)),
        rate_register_bits=_RATE_REGISTER_BITS,
    )
