"""Fairness-aware throttling (§7, "Fairness").

The paper notes its controller "has no explicit fairness target" and
suggests the bufferless NoC as "an interesting opportunity to develop a
novel application-aware fairness controller".  This extension is one
such controller: it augments the paper's mechanism with a per-node
*slowdown estimate* and withholds throttling from nodes that are
already making the least relative progress.

Slowdown is estimated without alone-run oracles: a node's achievable
IPC is approximated from its measured IPF (a node with gap ``g = IPF x
flits/miss`` instructions between misses retires at most
``issue_width`` IPC, and is memory-bound below that), and the estimate
is ``achievable / observed``.  Nodes whose estimated slowdown exceeds
``max_slowdown`` are exempted from throttling even when their IPF is
below the mean, and their throttle rate is scaled down smoothly below
that point.
"""

from __future__ import annotations

import numpy as np

from repro.control.base import EpochView
from repro.control.central import CentralController, ControlParams

__all__ = ["FairCentralController"]


class FairCentralController(CentralController):
    """The paper's mechanism plus an explicit slowdown cap."""

    def __init__(
        self,
        params: ControlParams = ControlParams(),
        max_slowdown: float = 3.0,
        issue_width: int = 3,
    ):
        super().__init__(params)
        if max_slowdown <= 1.0:
            raise ValueError("max_slowdown must exceed 1")
        self.max_slowdown = max_slowdown
        self.issue_width = issue_width
        self.last_slowdown = None

    def estimate_slowdown(self, view: EpochView) -> np.ndarray:
        """Per-node slowdown estimate: achievable IPC (the issue width)
        over the IPC observed this epoch, capped at 100x."""
        if view.epoch_ipc is None:
            # Degenerate gracefully to the paper's behavior when the
            # caller provides no progress data.
            return np.ones(view.ipf.shape)
        achievable = np.full(view.ipf.shape, float(self.issue_width))
        observed = np.maximum(view.epoch_ipc, 1e-6)
        return np.minimum(achievable / observed, 100.0)

    #: at most this fraction of nodes may be exempted per epoch, so the
    #: mechanism never disarms itself on uniformly-slow workloads
    exempt_fraction = 0.25
    #: nodes below this estimated slowdown are never exempted
    min_exempt_slowdown = 1.5

    def on_epoch(self, view: EpochView) -> np.ndarray:
        rates = super().on_epoch(view)
        slowdown = self.estimate_slowdown(view)
        self.last_slowdown = slowdown
        if not view.active.any():
            return rates
        # Only the worst-off quartile qualifies for relief: in a
        # uniformly congested workload everyone is equally slow and
        # exempting everyone would just disable congestion control
        # (which hurts the worst node even more).
        threshold = float(
            np.quantile(slowdown[view.active], 1.0 - self.exempt_fraction)
        )
        exempt = view.active & (
            slowdown >= max(threshold, self.min_exempt_slowdown)
        )
        # Scale throttling away as an exempt node approaches the cap:
        # factor 1 at slowdown<=1, 0 at slowdown>=max_slowdown.
        headroom = np.clip(
            (self.max_slowdown - slowdown) / (self.max_slowdown - 1.0),
            0.0,
            1.0,
        )
        rates[exempt] *= headroom[exempt]
        return rates

    def describe(self) -> str:
        return (
            f"FairCentralController(max_slowdown={self.max_slowdown}, "
            f"{self.params})"
        )
