"""Hierarchical congestion control: domain shards + a coordinator.

The paper's Algorithm 1 is centralized — one controller sees every
node's (IPF, sigma) each epoch.  At thousands of cores the 2n control
flits per epoch converge on one hub queue and overflow (measured in
``benchmarks/bench_control_scaling.py``).  The hierarchical scheme
keeps the *decision rule* of §5 but distributes the *collection*:

- each control domain (see :mod:`repro.control.domains`) runs a
  :class:`ShardController` — Algorithm 1 on the domain-local
  :class:`~repro.control.base.EpochView` slice;
- shards produce a :class:`DomainSummary` (congested?, sum of capped
  IPF over active members, active-member count) — the only state that
  crosses domain boundaries;
- the :class:`HierarchicalController` coordinator aggregates the
  summaries and reconciles throttling under one of two criteria:

  ``global``
      the paper's criterion computed exactly: throttling activates when
      *any* domain is congested, and node *i* throttles iff
      ``IPF_i < mean(IPF over all active nodes)``.  The global mean is
      reassembled from the shard sums (``sum/count`` is bitwise what
      ``ndarray.mean`` computes), so one domain spanning the whole
      fabric is bit-identical to :class:`CentralController`.
  ``local``
      each domain decides independently with its own mean — no global
      state at all, the fully decentralized limit.

Coordinator fail-stop (chaos ``controller_down`` events) degrades
``global`` mode to independent domains: shards keep running on local
criteria while the summary exchange is suspended, and ``restore()``
resumes global reconciliation.  The controller is *self-resilient* —
the chaos engine drives :meth:`fail`/:meth:`restore` directly instead
of wrapping it in a
:class:`~repro.chaos.controlplane.ResilientController`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.base import Controller, EpochView
from repro.control.central import CentralController, ControlParams
from repro.control.domains import DomainMap

__all__ = ["DomainSummary", "ShardController", "HierarchicalController"]

_MODES = ("global", "local")


@dataclass(frozen=True)
class DomainSummary:
    """What one shard tells the coordinator each epoch (one flit each
    way in the modeled control traffic)."""

    congested: bool
    #: sum of min(IPF, ipf_cap) over the domain's active nodes
    ipf_sum: float
    active_nodes: int


class ShardController(CentralController):
    """Algorithm 1 confined to one control domain.

    Splits :meth:`CentralController.on_epoch` into the measurement half
    (:meth:`summarize` — what ships to the coordinator) and the
    actuation half (:meth:`throttle` — applied once the coordinator
    hands back the reconciled congestion flag and mean IPF).  Both
    reuse the parent's Eq. (1)/(2) helpers unchanged.
    """

    def __init__(self, params: ControlParams, domain: int):
        super().__init__(params)
        self.domain = domain

    def summarize(self, view: EpochView) -> DomainSummary:
        """Measure this domain: congestion flag + mean-IPF ingredients."""
        active = view.active
        if not active.any():
            return DomainSummary(False, 0.0, 0)
        p = self.params
        ipf = np.minimum(view.ipf, p.ipf_cap)
        congested = bool(
            np.any(
                view.starvation_rate[active]
                > self.starvation_threshold(ipf[active])
            )
        )
        return DomainSummary(congested, float(ipf[active].sum()), int(active.sum()))

    def throttle(
        self, view: EpochView, congested: bool, mean_ipf
    ) -> np.ndarray:
        """Install the coordinator's decision on this domain's nodes."""
        p = self.params
        rates = np.zeros(view.active.shape[0])
        active = view.active
        self.last_congested = congested
        throttled = np.zeros_like(active)
        if congested and mean_ipf is not None and active.any():
            ipf = np.minimum(view.ipf, p.ipf_cap)
            throttled = active & (ipf < mean_ipf)
            rates[throttled] = self.throttle_rate(ipf[throttled])
        self.last_throttled = throttled
        return rates

    def describe(self) -> str:
        return f"ShardController(domain={self.domain}, {self.params})"


class HierarchicalController(Controller):
    """Coordinator over per-domain Algorithm-1 shards."""

    #: The simulator resolves a DomainMap from the topology registry and
    #: calls :meth:`bind` before the first epoch.
    wants_domains = True
    #: The chaos engine drives fail()/restore() on this controller
    #: directly instead of wrapping it in a ResilientController.
    self_resilient = True

    def __init__(
        self,
        params: ControlParams = ControlParams(),
        num_domains: int = 0,
        mode: str = "global",
    ):
        if mode not in _MODES:
            raise ValueError(
                f"unknown coordination mode {mode!r}; expected one of {_MODES}"
            )
        if num_domains < 0:
            raise ValueError(f"num_domains must be >= 0, got {num_domains}")
        self.params = params
        #: requested domain count (0 = let the topology choose)
        self.num_domains = num_domains
        self.mode = mode
        self.domain_map = None  # a DomainMap once bind() runs
        self.shards = ()
        # Coordinator fail-stop state (chaos controller_down events).
        self.coordinator_down = False
        self.downtime_epochs = 0
        self.failovers = 0
        self.epochs_run = 0
        self.domain_epochs = None
        # Exposed for inspection/tests after each epoch, like the
        # central controller.
        self.last_congested = False
        self.last_throttled = None

    # ------------------------------------------------------------------
    # Domain binding (done by the simulator at run() time)
    # ------------------------------------------------------------------
    def bind(self, domain_map: DomainMap) -> None:
        """Attach a resolved partition and build one shard per domain."""
        if (
            self.num_domains
            and domain_map.num_domains != self.num_domains
        ):
            raise ValueError(
                f"domain map has {domain_map.num_domains} domains; "
                f"controller was configured for {self.num_domains}"
            )
        self.domain_map = domain_map
        self.shards = tuple(
            ShardController(self.params, d)
            for d in range(domain_map.num_domains)
        )
        self.domain_epochs = np.zeros(domain_map.num_domains, dtype=np.int64)

    # ------------------------------------------------------------------
    # Fail-stop interface (the ResilientController contract)
    # ------------------------------------------------------------------
    @property
    def down(self) -> bool:
        """Coordinator availability; shards never fail with it."""
        return self.coordinator_down

    def fail(self) -> None:
        if self.coordinator_down:
            return
        self.coordinator_down = True
        # Losing the coordinator is a failover to independent domains.
        self.failovers += 1

    def restore(self) -> None:
        self.coordinator_down = False

    # ------------------------------------------------------------------
    # Controller interface
    # ------------------------------------------------------------------
    def on_epoch(self, view: EpochView) -> np.ndarray:
        if self.domain_map is None:
            raise RuntimeError(
                "HierarchicalController.on_epoch before bind(); the "
                "simulator binds a DomainMap at run() — standalone use "
                "must call bind(domain_map) first"
            )
        dm = self.domain_map
        n = view.active.shape[0]
        if n != dm.num_nodes:
            raise ValueError(
                f"EpochView covers {n} nodes; domain map covers "
                f"{dm.num_nodes}"
            )
        views = [self._slice(view, dm.members(d)) for d in range(dm.num_domains)]
        summaries = [
            shard.summarize(v) for shard, v in zip(self.shards, views)
        ]
        use_global = self.mode == "global" and not self.coordinator_down
        if self.coordinator_down:
            self.downtime_epochs += 1
        mean_ipf = None
        congested_any = any(s.congested for s in summaries)
        if use_global and congested_any:
            total = sum(s.ipf_sum for s in summaries)
            count = sum(s.active_nodes for s in summaries)
            # Reassembling mean(IPF[active]) from the shard sums: numpy's
            # ndarray.mean() is sum()/size, so with one domain this is
            # bit-identical to the central controller's mean.
            mean_ipf = total / count if count else None
        rates = np.zeros(n)
        throttled = np.zeros(n, dtype=bool)
        for shard, v, summary in zip(self.shards, views, summaries):
            if use_global:
                congested, mean_d = congested_any, mean_ipf
            else:
                congested = summary.congested
                mean_d = (
                    summary.ipf_sum / summary.active_nodes
                    if congested and summary.active_nodes
                    else None
                )
            members = dm.members(shard.domain)
            rates[members] = shard.throttle(v, congested, mean_d)
            throttled[members] = shard.last_throttled
        self.domain_epochs += 1
        self.epochs_run += 1
        self.last_congested = (
            congested_any if use_global
            else any(s.congested for s in summaries)
        )
        self.last_throttled = throttled
        return rates

    @staticmethod
    def _slice(view: EpochView, members: np.ndarray) -> EpochView:
        """A domain-local EpochView (fancy-indexed copies of the
        per-node arrays; scalars pass through)."""
        return EpochView(
            cycle=view.cycle,
            ipf=view.ipf[members],
            starvation_rate=view.starvation_rate[members],
            active=view.active[members],
            utilization=view.utilization,
            epoch_ipc=(
                view.epoch_ipc[members] if view.epoch_ipc is not None else None
            ),
        )

    def describe(self) -> str:
        domains = (
            self.domain_map.num_domains
            if self.domain_map is not None
            else self.num_domains or "auto"
        )
        return (
            f"HierarchicalController({domains} domains, mode={self.mode}, "
            f"{self.params})"
        )
