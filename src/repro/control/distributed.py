"""The distributed "TCP-like" comparison scheme (§6.6).

The paper contrasts its central mechanism with a simple distributed one:

1. a node whose starvation rate exceeds a threshold sets a *congested*
   bit on every flit passing through it;
2. a node that receives a flit with the congested bit set self-throttles
   (backs off), like a TCP sender reacting to an implicit congestion
   notification from anywhere along the path.

The paper found this far less effective "because this mechanism is not
selective in its throttling (i.e., it does not include
application-awareness)"; the `bench_sec66` benchmark reproduces the
comparison.
"""

from __future__ import annotations

import numpy as np

from repro.control.base import Controller, EpochView

__all__ = ["DistributedController"]


class DistributedController(Controller):
    """Congestion-bit marking with multiplicative backoff decay."""

    observes_ejections = True

    def __init__(
        self,
        network,
        starvation_threshold: float = 0.25,
        backoff_rate: float = 0.5,
        decay: float = 0.5,
    ):
        if not 0.0 < backoff_rate < 1.0:
            raise ValueError("backoff rate must be in (0, 1)")
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.network = network
        self.starvation_threshold = starvation_threshold
        self.backoff_rate = backoff_rate
        self.decay = decay
        self._marked = np.zeros(network.num_nodes, dtype=bool)
        self._rates = np.zeros(network.num_nodes)

    def on_ejected(self, ejected) -> None:
        """A delivered flit with the congested bit trips its receiver."""
        if ejected.node.size == 0:
            return
        hit = ejected.node[ejected.cbit.astype(bool)]
        self._marked[hit] = True

    def on_epoch(self, view: EpochView) -> np.ndarray:
        # (i) congested nodes start marking passing flits.  In-place so
        # observers holding the array (e.g. the native backend's pointer
        # table) see the update.
        self.network.congested_nodes[:] = (
            view.starvation_rate > self.starvation_threshold
        )
        # (ii) marked receivers back off; others decay toward full rate.
        self._rates = np.where(
            self._marked, self.backoff_rate, self._rates * self.decay
        )
        self._rates[self._rates < 0.01] = 0.0
        self._marked[:] = False
        return self._rates.copy()

    def describe(self) -> str:
        return (
            f"DistributedController(threshold={self.starvation_threshold}, "
            f"backoff={self.backoff_rate}, decay={self.decay})"
        )
