"""The controller registry: name -> description + construction.

Mirrors :mod:`repro.topology.registry` for the control plane: one table
the CLI (``--controller`` choices, ``--list-controllers``), the README
and the harness recipe docs all consult, so adding a scheme is one
:class:`ControllerEntry` instead of three drifting if-ladders.

The ``recipe`` column is the declarative :class:`~repro.harness.JobSpec`
form (instantiated inside workers by
:func:`repro.harness.jobs.build_controller`); ``—`` marks CLI-only
controllers that need the live network object and therefore cannot ride
through the spec's JSON-scalar contract.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ControllerEntry",
    "CONTROLLERS",
    "CONTROLLER_NAMES",
    "build_cli_controller",
]


@dataclass(frozen=True)
class ControllerEntry:
    """One selectable congestion-control scheme."""

    name: str
    #: one-line description (README table, ``--list-controllers``)
    description: str
    #: declarative JobSpec recipe form ("—" = CLI-only, needs live state)
    recipe: str


_ENTRIES = (
    ControllerEntry(
        "none",
        "no congestion control (baseline BLESS/buffered operation)",
        '("none",)',
    ),
    ControllerEntry(
        "central",
        "the paper's Algorithm 1: one global controller and hub (§5)",
        '("central",)',
    ),
    ControllerEntry(
        "distributed",
        "per-node AIMD on in-network congestion bits (§6.6)",
        "—",
    ),
    ControllerEntry(
        "static",
        "fixed throttle rate on every node (ablation baseline)",
        '("static", rate)',
    ),
    ControllerEntry(
        "hierarchical",
        "per-domain Algorithm-1 shards + global coordinator "
        "(--controller-domains/--controller-mode)",
        '("hierarchical", domains, mode)',
    ),
)

#: Registry table; insertion order is the canonical CLI/choices order.
CONTROLLERS = {entry.name: entry for entry in _ENTRIES}

#: Canonical name tuple for CLI ``choices`` and error messages.
CONTROLLER_NAMES = tuple(entry.name for entry in _ENTRIES)


def build_cli_controller(
    name: str,
    network,
    *,
    epoch: int,
    static_rate: float = 0.5,
    domains: int = 0,
    mode: str = "global",
):
    """Instantiate the controller a CLI invocation names.

    ``network`` is the live network object (the distributed scheme
    instruments it); the rest are the CLI flags that parameterize each
    scheme.
    """
    from repro.control.base import NoController
    from repro.control.central import CentralController, ControlParams
    from repro.control.distributed import DistributedController
    from repro.control.hierarchical import HierarchicalController
    from repro.control.static_throttle import StaticThrottleController

    if name == "central":
        return CentralController(ControlParams(epoch=epoch))
    if name == "distributed":
        return DistributedController(network)
    if name == "static":
        return StaticThrottleController(static_rate)
    if name == "hierarchical":
        return HierarchicalController(
            ControlParams(epoch=epoch), num_domains=domains, mode=mode
        )
    if name == "none":
        return NoController()
    raise ValueError(
        f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
    )
