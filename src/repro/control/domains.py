"""Control-domain partitions for hierarchical congestion control.

The paper's mechanism is centralized: every epoch all *n* nodes report
(IPF, sigma) to one hub and receive one rate update back — 2n control
flits through a single point (§6.6).  That is cheap at the paper's 64
cores and a hot spot at thousands.  A :class:`DomainMap` partitions the
nodes into control domains, each with its own hub (the domain's most
central router), plus one global coordinator (the topology's central
node).  Per-domain shard controllers then run Algorithm 1 locally and
exchange only per-domain *summaries* with the coordinator, so control
traffic scales as 2n intra-domain flits plus 2·(#domains) global flits
instead of 2n flits into one queue.

Partition shapes follow the topology (the registry wires one rule per
layout, see :func:`repro.topology.registry.domain_map`):

- 2D grids (mesh/torus/express) split into a ``tiles_x x tiles_y``
  grid of rectangular clusters;
- 3D grids split into layer bands along z;
- chiplet layouts split along tile boundaries (one domain per chiplet
  by default — the natural hardware domain).

Hub placement is consistent with ``Topology.central_node()`` by
construction: a closed-form grid cluster uses its center coordinate
(``Mesh2D.central_node`` is exactly the whole-grid cluster's center),
and a graph-described cluster uses the member with the minimal
intra-member distance sum (``GraphTopology.central_node`` restricted to
the domain).  A single domain spanning the whole fabric therefore
reproduces the central controller's hub bit-for-bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "DomainMap",
    "grid_cluster_shape",
    "grid2d_domains",
    "grid3d_domains",
    "graph_domain_hubs",
]


class DomainMap:
    """An immutable node -> control-domain assignment.

    Parameters
    ----------
    domain_of:
        ``(num_nodes,)`` integer array; ``domain_of[i]`` is node *i*'s
        domain id.  Ids must cover ``0..num_domains-1`` with no gaps.
    hubs:
        ``(num_domains,)`` node index of each domain's hub (must be a
        member of its own domain).
    coordinator:
        The global coordinator's node (the topology's central node).
    """

    def __init__(self, domain_of, hubs, coordinator: int):
        domain_of = np.ascontiguousarray(domain_of, dtype=np.int64)
        hubs = np.ascontiguousarray(hubs, dtype=np.int64)
        if domain_of.ndim != 1 or domain_of.size == 0:
            raise ValueError("domain_of must be a non-empty 1-D array")
        num_domains = hubs.size
        if num_domains == 0:
            raise ValueError("a DomainMap needs at least one domain")
        if domain_of.min() != 0 or domain_of.max() != num_domains - 1:
            raise ValueError(
                f"domain ids must cover 0..{num_domains - 1} exactly "
                f"(got [{domain_of.min()}, {domain_of.max()}])"
            )
        counts = np.bincount(domain_of, minlength=num_domains)
        if (counts == 0).any():
            empty = np.flatnonzero(counts == 0)
            raise ValueError(f"empty control domain(s): {empty.tolist()}")
        if not (0 <= coordinator < domain_of.size):
            raise ValueError(f"coordinator {coordinator} out of range")
        self.domain_of = domain_of
        self.hubs = hubs
        self.coordinator = int(coordinator)
        self._members: Tuple[np.ndarray, ...] = tuple(
            np.flatnonzero(domain_of == d) for d in range(num_domains)
        )
        if (hubs < 0).any() or (hubs >= domain_of.size).any():
            raise ValueError(f"hub index out of range: {hubs.tolist()}")
        for d, hub in enumerate(hubs):
            if domain_of[hub] != d:
                raise ValueError(
                    f"hub {int(hub)} of domain {d} lies in domain "
                    f"{int(domain_of[hub])}"
                )
        self.domain_of.setflags(write=False)
        self.hubs.setflags(write=False)

    @property
    def num_nodes(self) -> int:
        return int(self.domain_of.size)

    @property
    def num_domains(self) -> int:
        return int(self.hubs.size)

    def members(self, domain: int) -> np.ndarray:
        """Sorted node indices belonging to *domain*."""
        return self._members[domain]

    def describe(self) -> str:
        sizes = np.bincount(self.domain_of, minlength=self.num_domains)
        return (
            f"DomainMap({self.num_domains} domains over "
            f"{self.num_nodes} nodes, sizes "
            f"{int(sizes.min())}..{int(sizes.max())}, "
            f"coordinator {self.coordinator})"
        )

    def __repr__(self) -> str:
        return self.describe()


# ----------------------------------------------------------------------
# Partition rules
# ----------------------------------------------------------------------
def _closest_divisor(n: int, target: int) -> int:
    """The divisor of *n* nearest *target* (ties break low — fewer,
    larger clusters)."""
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    return min(divisors, key=lambda d: (abs(d - target), d))


def grid_cluster_shape(
    width: int, height: int, num_domains: int, multiple: int = 1
) -> Tuple[int, int]:
    """Pick the ``(tiles_x, tiles_y)`` cluster grid for a 2D layout.

    ``num_domains == 0`` chooses automatically: along each axis, the
    divisor closest to the square root of that axis (clusters of
    roughly sqrt-side, e.g. 32x32 -> 4x4 domains of 8x8 nodes).  An
    explicit ``num_domains`` is factored as ``tiles_x * tiles_y`` with
    each factor dividing its axis, preferring the squarest clusters;
    impossible counts raise ``ValueError``.  ``multiple`` constrains
    cluster edges to multiples of it (chiplet layouts: domains must not
    split a tile).
    """
    if multiple < 1 or width % multiple or height % multiple:
        raise ValueError(
            f"cluster multiple {multiple} must divide the "
            f"{width}x{height} grid"
        )
    if num_domains == 0:
        if multiple > 1:
            # Auto on a tiled layout: one domain per hardware tile.
            return width // multiple, height // multiple
        tiles_x = _closest_divisor(width, int(round(width ** 0.5)) or 1)
        tiles_y = _closest_divisor(height, int(round(height ** 0.5)) or 1)
        return tiles_x, tiles_y
    best = None
    for tiles_x in range(1, num_domains + 1):
        if num_domains % tiles_x:
            continue
        tiles_y = num_domains // tiles_x
        if width % tiles_x or height % tiles_y:
            continue
        cw, ch = width // tiles_x, height // tiles_y
        if cw % multiple or ch % multiple:
            continue
        squareness = abs(cw - ch)
        if best is None or squareness < best[0]:
            best = (squareness, tiles_x, tiles_y)
    if best is None:
        constraint = (
            f" with tile-multiple-{multiple} clusters" if multiple > 1 else ""
        )
        raise ValueError(
            f"cannot split a {width}x{height} grid into {num_domains} "
            f"rectangular domains{constraint}; pick a count whose "
            f"factors divide the grid"
        )
    return best[1], best[2]


def grid2d_domains(
    width: int, height: int, num_domains: int, multiple: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-major ``(domain_of, hubs)`` for a 2D grid layout.

    Hubs sit at each cluster's center coordinate — the same
    ``(x0 + cw//2, y0 + ch//2)`` rule as ``Mesh2D.central_node()``, so
    one whole-grid domain places its hub exactly where the central
    controller would.
    """
    tiles_x, tiles_y = grid_cluster_shape(width, height, num_domains, multiple)
    cw, ch = width // tiles_x, height // tiles_y
    nodes = np.arange(width * height, dtype=np.int64)
    x, y = nodes % width, nodes // width
    domain_of = (y // ch) * tiles_x + (x // cw)
    tiles = np.arange(tiles_x * tiles_y, dtype=np.int64)
    tx, ty = tiles % tiles_x, tiles // tiles_x
    hubs = (ty * ch + ch // 2) * width + tx * cw + cw // 2
    return domain_of, hubs


def grid3d_domains(
    width: int, height: int, depth: int, num_domains: int
) -> np.ndarray:
    """``domain_of`` for a 3D grid split into z-layer bands.

    ``num_domains == 0`` puts each layer in its own domain; an explicit
    count must divide ``depth``.  Hubs are graph-derived (see
    :func:`graph_domain_hubs`) since 3D layouts are graph topologies.
    """
    if num_domains == 0:
        num_domains = depth
    if depth % num_domains:
        raise ValueError(
            f"{num_domains} domains must divide the {depth}-layer stack "
            f"(one band of layers each)"
        )
    band = depth // num_domains
    nodes = np.arange(width * height * depth, dtype=np.int64)
    return (nodes // (width * height)) // band


def graph_domain_hubs(topology, domain_of: np.ndarray) -> np.ndarray:
    """Per-domain hubs on a graph topology: the member minimizing the
    distance sum to its co-members (lowest id on ties) — the
    ``GraphTopology.central_node()`` rule restricted to each domain, so
    a whole-graph domain reproduces the global hub exactly."""
    num_domains = int(domain_of.max()) + 1
    hubs = np.zeros(num_domains, dtype=np.int64)
    for d in range(num_domains):
        members = np.flatnonzero(domain_of == d)
        intra = topology.distance(
            members[:, None], members[None, :]
        ).sum(axis=1, dtype=np.int64)
        hubs[d] = members[int(np.argmin(intra))]
    return hubs
