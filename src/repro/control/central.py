"""The paper's application-aware source-throttling mechanism (§5).

Centrally coordinated, periodic (every T cycles), in three decisions:

**When to throttle** — Eq. (1): node *i* is congested when its windowed
starvation rate exceeds ``min(beta_starve + alpha_starve / IPF_i,
gamma_starve)``.  The IPF term allows network-intensive applications a
higher starvation level before alarming, since they naturally starve
more at the same congestion level.  Throttling is active when *any*
node is congested.

**Whom to throttle** — the Throttling Criterion: when throttling is
active, throttle node *i* iff ``IPF_i < mean(IPF)``; lower IPF means
greater network intensity.  Notably the congested nodes are usually
*not* the ones throttled — the heavily injecting ones are.

**How much** — Eq. (2): ``rate_i = min(beta_throt + alpha_throt /
IPF_i, gamma_throt)``, proportional to network intensity and bounded so
intensive applications are never fully starved.

Only data *requests* are throttled; responses are exempt (handled by
the network's injection stage, which drains the response queue outside
the throttle gate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.control.base import Controller, EpochView

__all__ = ["ControlParams", "CentralController"]


@dataclass(frozen=True)
class ControlParams:
    """Algorithm parameters, defaulted to the paper's empirical optimum
    (§6.1, §6.4)."""

    alpha_starve: float = 0.40
    beta_starve: float = 0.0
    gamma_starve: float = 0.70
    alpha_throt: float = 0.90
    beta_throt: float = 0.20
    gamma_throt: float = 0.75
    #: controller period T in cycles (paper: 100k on 10M-cycle runs)
    epoch: int = 100_000
    #: IPF ceiling used when averaging (idle nodes report infinite IPF)
    ipf_cap: float = 1.0e6

    def scaled(self, **overrides) -> "ControlParams":
        """A copy with some fields replaced (for sensitivity sweeps)."""
        return replace(self, **overrides)


class CentralController(Controller):
    """Implements Algorithm 1 on the per-epoch ``EpochView``."""

    def __init__(self, params: ControlParams = ControlParams()):
        self.params = params
        # Exposed for inspection/tests after each epoch.
        self.last_congested = False
        self.last_throttled = None

    def starvation_threshold(self, ipf: np.ndarray) -> np.ndarray:
        """Eq. (1): per-node congestion-detection threshold."""
        p = self.params
        return np.minimum(p.beta_starve + p.alpha_starve / ipf, p.gamma_starve)

    def throttle_rate(self, ipf: np.ndarray) -> np.ndarray:
        """Eq. (2): per-node throttling rate."""
        p = self.params
        return np.minimum(p.beta_throt + p.alpha_throt / ipf, p.gamma_throt)

    def on_epoch(self, view: EpochView) -> np.ndarray:
        p = self.params
        rates = np.zeros(view.active.shape[0])
        active = view.active
        if not active.any():
            self.last_congested = False
            self.last_throttled = np.zeros_like(active)
            return rates
        ipf = np.minimum(view.ipf, p.ipf_cap)
        sigma = view.starvation_rate

        congested = bool(
            np.any(sigma[active] > self.starvation_threshold(ipf[active]))
        )
        self.last_congested = congested

        throttled = np.zeros_like(active)
        if congested:
            mean_ipf = ipf[active].mean()
            throttled = active & (ipf < mean_ipf)
            rates[throttled] = self.throttle_rate(ipf[throttled])
        self.last_throttled = throttled
        return rates

    def describe(self) -> str:
        return f"CentralController({self.params})"
