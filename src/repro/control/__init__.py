"""Congestion-control mechanisms for the NoC (§5, §6.6)."""

from repro.control.base import Controller, EpochView, NoController
from repro.control.central import CentralController, ControlParams
from repro.control.fairness import FairCentralController
from repro.control.static_throttle import StaticThrottleController
from repro.control.distributed import DistributedController
from repro.control.hardware import MechanismHardwareCost, mechanism_hardware_cost

__all__ = [
    "Controller",
    "EpochView",
    "NoController",
    "ControlParams",
    "CentralController",
    "FairCentralController",
    "StaticThrottleController",
    "DistributedController",
    "MechanismHardwareCost",
    "mechanism_hardware_cost",
]
