"""Congestion-control mechanisms for the NoC (§5, §6.6)."""

from repro.control.base import Controller, EpochView, NoController
from repro.control.central import CentralController, ControlParams
from repro.control.domains import DomainMap
from repro.control.fairness import FairCentralController
from repro.control.hierarchical import (
    DomainSummary,
    HierarchicalController,
    ShardController,
)
from repro.control.registry import CONTROLLER_NAMES, CONTROLLERS, ControllerEntry
from repro.control.static_throttle import StaticThrottleController
from repro.control.distributed import DistributedController
from repro.control.hardware import MechanismHardwareCost, mechanism_hardware_cost

__all__ = [
    "Controller",
    "EpochView",
    "NoController",
    "ControlParams",
    "CentralController",
    "FairCentralController",
    "StaticThrottleController",
    "DistributedController",
    "DomainMap",
    "DomainSummary",
    "ShardController",
    "HierarchicalController",
    "ControllerEntry",
    "CONTROLLERS",
    "CONTROLLER_NAMES",
    "MechanismHardwareCost",
    "mechanism_hardware_cost",
]
