"""Static (application-blind) injection throttling.

The paper's §3.1 experiment: throttle every node at one fixed rate and
sweep the rate to trace system throughput against network utilization
(Fig 2(c)), and its §4 experiment: statically throttle one chosen
application by 90% (Fig 5).  Also the building block for the
application-awareness ablation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.control.base import Controller, EpochView

__all__ = ["StaticThrottleController"]


class StaticThrottleController(Controller):
    """Throttle a fixed set of nodes at a fixed rate.

    Parameters
    ----------
    rate:
        Fraction of injection attempts blocked, in [0, 1).
    nodes:
        Node indices to throttle; ``None`` throttles every node.
    """

    def __init__(self, rate: float, nodes: Optional[np.ndarray] = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError("static throttle rate must be in [0, 1)")
        self.rate = rate
        self.nodes = None if nodes is None else np.asarray(nodes, dtype=np.int64)

    def on_epoch(self, view: EpochView) -> np.ndarray:
        rates = np.zeros(view.active.shape[0])
        if self.nodes is None:
            rates[:] = self.rate
        else:
            rates[self.nodes] = self.rate
        return rates

    def describe(self) -> str:
        target = "all" if self.nodes is None else f"{self.nodes.size} nodes"
        return f"StaticThrottleController(rate={self.rate}, nodes={target})"
