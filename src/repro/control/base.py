"""Controller interface.

A controller runs periodically (every epoch of T cycles, §5) and returns
per-node injection throttling rates; the simulator installs them in the
network's Algorithm-3 throttle gate.  Controllers that react to
in-network signals (the distributed scheme of §6.6) additionally observe
every delivered flit via :meth:`Controller.on_ejected`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["EpochView", "Controller", "NoController"]


@dataclass
class EpochView:
    """The per-epoch state a controller may observe.

    Central coordination is cheap on-chip because the topology and size
    are statically known (§2.1); this view is what the paper's 2n control
    packets per epoch carry (each node's IPF and starvation rate).
    """

    cycle: int
    ipf: np.ndarray  # measured instructions-per-flit per node
    starvation_rate: np.ndarray  # windowed sigma per node
    active: np.ndarray  # nodes running an application
    utilization: float  # network utilization over the epoch
    epoch_ipc: Optional[np.ndarray] = None  # per-node IPC over the epoch


class Controller:
    """Base class: no throttling, ever."""

    #: Whether the simulator should feed delivered flits to on_ejected.
    observes_ejections = False

    def on_epoch(self, view: EpochView) -> np.ndarray:
        """Return per-node throttle rates in [0, 1] for the next epoch."""
        return np.zeros(view.active.shape[0])

    def on_ejected(self, ejected) -> None:
        """Observe flits delivered this cycle (distributed schemes only)."""

    def describe(self) -> str:
        return type(self).__name__


class NoController(Controller):
    """Baseline BLESS/buffered operation without congestion control."""
