"""The harness job model.

An experiment point is a *pure function* of a :class:`JobSpec`: the spec
carries everything the simulator consumes — workload assignment,
network/topology/locality selection, controller recipe, cycle budget,
seed — as plain hashable values, never live objects.  That buys three
properties the sweep engine needs:

1. a **stable content hash** (:meth:`JobSpec.content_hash`) independent
   of process, ``PYTHONHASHSEED``, and field declaration order, usable
   as an on-disk cache key;
2. **cheap transport**: a spec pickles in microseconds, so shipping work
   to a :class:`~concurrent.futures.ProcessPoolExecutor` costs nothing
   compared to the simulation behind it;
3. **determinism**: :func:`run_job` derives every RNG stream from the
   spec's seed via :func:`repro.rng.child_rng`, so executing a spec in a
   worker process is bit-identical to executing it inline.

Controllers are described declaratively (``("central",)``,
``("static", 0.9)``, ``("none",)``) and instantiated inside the worker,
because controller objects hold mutable per-run state that must never be
shared across jobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.results import SimulationResult
from repro.traffic.workloads import Workload

__all__ = ["JobSpec", "run_job", "CONTROLLER_KINDS"]

#: Controller recipes :func:`build_controller` understands.
CONTROLLER_KINDS = ("none", "central", "static", "hierarchical")

#: Coordination modes a ``("hierarchical", domains, mode)`` recipe may
#: name (see :class:`repro.control.hierarchical.HierarchicalController`).
_HIERARCHICAL_MODES = ("global", "local")

#: Config values a spec may carry: JSON scalars only, so hashing and the
#: on-disk cache stay canonical.
_SCALARS = (str, int, float, bool, type(None))


def _check_scalar(name: str, value) -> None:
    if not isinstance(value, _SCALARS):
        raise TypeError(
            f"JobSpec config value {name}={value!r} is not a JSON "
            "scalar; specs must be declarative — pass live objects "
            "(FaultConfig, locality samplers, controllers) to "
            "repro.experiments.run_workload directly instead"
        )


@dataclass(frozen=True)
class JobSpec:
    """One simulation point, fully described by hashable values."""

    app_names: Tuple[Optional[str], ...]
    cycles: int
    seed: int = 1
    epoch: int = 1000
    #: controller recipe: ``("none",)``, ``("central",)`` (the paper's
    #: mechanism at this spec's epoch), ``("static", rate)``, or
    #: ``("hierarchical"[, domains[, mode]])`` — domain count (0 = the
    #: topology's natural partition) and coordination mode
    #: ("global"/"local")
    controller: Tuple = ("none",)
    network: str = "bless"
    topology: str = "mesh"
    locality: str = "uniform"
    locality_param: float = 1.0
    category: str = ""
    #: extra :class:`~repro.config.SimulationConfig` keyword arguments,
    #: as a sorted tuple of ``(name, scalar)`` pairs
    config: Tuple[Tuple[str, object], ...] = ()
    #: wall-clock budget for the run in seconds (`None` = unbounded)
    deadline: Optional[float] = None
    #: chaos campaign as canonical :meth:`ChaosConfig.to_json` text
    #: (``None`` = no chaos); a :class:`~repro.chaos.ChaosConfig` passed
    #: here is encoded automatically, keeping the spec JSON-scalar
    chaos: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.controller, tuple) or not self.controller:
            raise TypeError(
                f"controller must be a non-empty tuple, got {self.controller!r}"
            )
        if self.controller[0] not in CONTROLLER_KINDS:
            raise ValueError(
                f"unknown controller kind {self.controller[0]!r}; "
                f"expected one of {CONTROLLER_KINDS}"
            )
        if self.controller[0] == "hierarchical":
            extras = self.controller[1:]
            if len(extras) > 2:
                raise ValueError(
                    f"hierarchical recipe takes at most (domains, mode), "
                    f"got {self.controller!r}"
                )
            if extras and (
                isinstance(extras[0], bool)
                or not isinstance(extras[0], int)
                or extras[0] < 0
            ):
                raise ValueError(
                    f"hierarchical domain count must be an int >= 0 "
                    f"(0 = topology default), got {extras[0]!r}"
                )
            if len(extras) == 2 and extras[1] not in _HIERARCHICAL_MODES:
                raise ValueError(
                    f"hierarchical mode must be one of "
                    f"{_HIERARCHICAL_MODES}, got {extras[1]!r}"
                )
        for name, value in self.config:
            _check_scalar(name, value)
        if self.chaos is not None and not isinstance(self.chaos, str):
            if not hasattr(self.chaos, "to_json"):
                raise TypeError(
                    f"chaos must be canonical JSON text or a ChaosConfig, "
                    f"got {self.chaos!r}"
                )
            object.__setattr__(self, "chaos", self.chaos.to_json())
        # Normalize: sorted config so equal specs hash equally regardless
        # of the order the caller assembled the kwargs in.
        object.__setattr__(self, "config", tuple(sorted(self.config)))
        object.__setattr__(self, "app_names", tuple(self.app_names))
        object.__setattr__(self, "controller", tuple(self.controller))

    #: Spec fields that double as :class:`~repro.config.SimulationConfig`
    #: keywords; ``for_workload`` lifts them out of a loose config dict.
    _LIFTED = (
        "network", "topology", "locality", "locality_param", "deadline",
        "chaos",
    )

    @classmethod
    def for_workload(cls, workload: Workload, cycles: int, **kw) -> "JobSpec":
        """Build a spec from a constructed :class:`Workload`.

        ``config`` may be a loose keyword dict (the ``**kw`` a sweep
        driver collected); keys that are first-class spec fields
        (``network``, ``locality``, ...) are lifted into those fields so
        they are never passed to the simulator twice.
        """
        config = kw.pop("config", {})
        if isinstance(config, dict):
            config = dict(config)
            for name in cls._LIFTED:
                if name in config and name not in kw:
                    kw[name] = config.pop(name)
            config = tuple(sorted(config.items()))
        return cls(
            app_names=workload.app_names,
            category=workload.category,
            cycles=cycles,
            config=config,
            **kw,
        )

    def with_config(self, **overrides) -> "JobSpec":
        """A copy with extra/overridden config scalars merged in.

        The observability switches ride through here — e.g.
        ``spec.with_config(profile=True)`` produces a spec whose runs
        attach :class:`~repro.observability.PerfCounters` to their
        results (and whose content hash differs, so profiled and plain
        results never share a cache entry).
        """
        merged = dict(self.config)
        merged.update(overrides)
        return JobSpec(
            app_names=self.app_names,
            cycles=self.cycles,
            seed=self.seed,
            epoch=self.epoch,
            controller=self.controller,
            network=self.network,
            topology=self.topology,
            locality=self.locality,
            locality_param=self.locality_param,
            category=self.category,
            config=tuple(sorted(merged.items())),
            deadline=self.deadline,
            chaos=self.chaos,
        )

    @property
    def workload(self) -> Workload:
        return Workload(self.app_names, category=self.category)

    @property
    def num_nodes(self) -> int:
        return len(self.app_names)

    def canonical(self) -> str:
        """Deterministic JSON encoding (the hash pre-image)."""
        payload = {
            "app_names": list(self.app_names),
            "category": self.category,
            "cycles": self.cycles,
            "seed": self.seed,
            "epoch": self.epoch,
            "controller": list(self.controller),
            "network": self.network,
            "topology": self.topology,
            "locality": self.locality,
            "locality_param": self.locality_param,
            "config": [list(pair) for pair in self.config],
            "deadline": self.deadline,
            "chaos": self.chaos,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable sha256 of the spec (same in every process and session)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress lines and reports."""
        ctl = self.controller[0]
        extra = f"+{ctl}" if ctl != "none" else ""
        return (
            f"{self.category or 'custom'}/{self.num_nodes}n/"
            f"{self.network}{extra}/s{self.seed}"
        )


def build_controller(spec: JobSpec):
    """Instantiate the controller a spec describes (inside the worker)."""
    from repro.control.base import NoController
    from repro.control.central import CentralController, ControlParams
    from repro.control.static_throttle import StaticThrottleController

    kind = spec.controller[0]
    if kind == "none":
        return NoController()
    if kind == "central":
        return CentralController(ControlParams(epoch=spec.epoch))
    if kind == "static":
        return StaticThrottleController(float(spec.controller[1]))
    if kind == "hierarchical":
        from repro.control.hierarchical import HierarchicalController

        num_domains = (
            int(spec.controller[1]) if len(spec.controller) > 1 else 0
        )
        mode = str(spec.controller[2]) if len(spec.controller) > 2 else "global"
        return HierarchicalController(
            ControlParams(epoch=spec.epoch),
            num_domains=num_domains,
            mode=mode,
        )
    raise ValueError(f"unknown controller kind {kind!r}")


def run_job(spec: JobSpec) -> SimulationResult:
    """Execute one spec to completion (the worker entry point)."""
    from repro.chaos.schedule import ChaosConfig
    from repro.experiments.runner import run_workload

    chaos = None if spec.chaos is None else ChaosConfig.from_json(spec.chaos)
    return run_workload(
        spec.workload,
        spec.cycles,
        controller=build_controller(spec),
        epoch=spec.epoch,
        seed=spec.seed,
        deadline=spec.deadline,
        network=spec.network,
        topology=spec.topology,
        locality=spec.locality,
        locality_param=spec.locality_param,
        chaos=chaos,
        **dict(spec.config),
    )
