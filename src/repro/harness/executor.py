"""Parallel sweep executor with caching and progress telemetry.

:func:`run_jobs` is the one entry point: give it a list of
:class:`~repro.harness.jobs.JobSpec` and it returns a
:class:`HarnessReport` whose ``results`` align 1:1 with the input specs.

Execution strategy:

- every spec is first looked up in the optional
  :class:`~repro.harness.cache.ResultCache`; hits never execute;
- the remaining specs run on a ``ProcessPoolExecutor`` when
  ``jobs > 1`` (worker processes import ``repro`` and call
  :func:`~repro.harness.jobs.run_job`), or inline when ``jobs == 1`` —
  the serial path exists both as a fallback for restricted environments
  and as the reference the determinism tests compare against;
- because a job derives every RNG stream from its spec, parallel
  execution is bit-identical to serial: there is no shared mutable
  state to race on, only an embarrassingly parallel fan-out;
- a :class:`~repro.guardrails.errors.GuardrailError` inside one job
  (livelock, invariant violation, wall-clock timeout) marks that job
  failed (``result is None``) without sinking the sweep; every other
  exception propagates, since it indicates a bug rather than a
  diverging simulation.  Completed points are cached as they finish, so
  a crashed or aborted sweep resumes from where it stopped;
- a **worker process dying mid-job** (OOM kill, segfault, ``os._exit``)
  breaks the whole ``ProcessPoolExecutor`` and poisons every in-flight
  future.  Instead of sinking the sweep, each affected job is re-run
  once in its own fresh single-worker pool: innocent bystanders
  complete normally, and only the job that kills its worker *again* is
  recorded failed;
- each job gets an optional **wall-clock timeout** (``timeout_s=`` or
  ``$REPRO_JOB_TIMEOUT_S``), enforced inside the worker with a timer
  thread, so one wedged simulation cannot stall a sweep forever — the
  timed-out job is recorded failed like a guardrail abort.
"""

from __future__ import annotations

import _thread
import os
import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.guardrails.errors import GuardrailError
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec, run_job
from repro.sim.results import SimulationResult

__all__ = ["run_jobs", "HarnessReport", "JobRecord", "default_jobs",
           "job_timeout_s"]


def default_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable.

    Defaults to 1 (serial) so library users opt in to parallelism; the
    CLI's ``--jobs`` flag overrides it.  ``REPRO_JOBS=0`` means "all
    cores".
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    return resolve_jobs(jobs)


def resolve_jobs(jobs: int) -> int:
    """Normalize a worker-count request (``<= 0`` selects all cores)."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class JobRecord:
    """Telemetry for one job: where its result came from and how long."""

    label: str
    key: str  # spec content hash
    cached: bool
    seconds: float  # execution time (0.0 for cache hits)
    error: Optional[str] = None  # GuardrailError message, if the job failed

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class HarnessReport:
    """Outcome of one :func:`run_jobs` call."""

    results: List[Optional[SimulationResult]]
    records: List[JobRecord]
    workers: int
    wall_seconds: float
    description: str = "sweep"
    cache_stats: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.error is not None)

    @property
    def all_cached(self) -> bool:
        return self.total > 0 and self.cache_hits == self.total

    @property
    def job_seconds(self) -> float:
        """Total per-job execution time (> wall time when parallel)."""
        return sum(r.seconds for r in self.records)

    def summary(self) -> str:
        return (
            f"[{self.description}] {self.total} jobs: "
            f"{self.cache_hits} cache hits, {self.executed} executed, "
            f"{self.failed} failed; wall {self.wall_seconds:.2f}s "
            f"(job time {self.job_seconds:.2f}s, {self.workers} worker"
            f"{'s' if self.workers != 1 else ''})"
        )

    def perf_summary(self) -> dict:
        """Aggregate perf counters across the sweep (observability layer).

        Throughput is computed over *executed* jobs only (cache hits cost
        no simulation time); per-phase seconds are summed from every
        result that carries a :class:`~repro.observability.PerfCounters`
        snapshot, i.e. from jobs whose spec enabled profiling.  The cache
        hit rate folds in the on-disk cache statistics the report was
        built with.
        """
        executed = [
            (rec, res)
            for rec, res in zip(self.records, self.results)
            if not rec.cached and res is not None
        ]
        sim_cycles = sum(res.cycles for _, res in executed)
        sim_flits = sum(res.ejected_flits for _, res in executed)
        exec_seconds = sum(rec.seconds for rec, _ in executed)
        phase_seconds: Dict[str, float] = {}
        for _, res in executed:
            if res.perf is not None:
                for name, secs in res.perf.phase_seconds.items():
                    phase_seconds[name] = phase_seconds.get(name, 0.0) + secs
        total_phase = sum(phase_seconds.values())
        return {
            "jobs": self.total,
            "executed": len(executed),
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.total if self.total else 0.0
            ),
            "sim_cycles": sim_cycles,
            "sim_flits": sim_flits,
            "cycles_per_sec": (
                sim_cycles / exec_seconds if exec_seconds > 0 else 0.0
            ),
            "flits_per_sec": (
                sim_flits / exec_seconds if exec_seconds > 0 else 0.0
            ),
            "wall_seconds": self.wall_seconds,
            "job_seconds": self.job_seconds,
            "phase_seconds": phase_seconds,
            "phase_shares": (
                {n: s / total_phase for n, s in phase_seconds.items()}
                if total_phase > 0
                else {}
            ),
            "cache_stats": dict(self.cache_stats),
        }


def job_timeout_s() -> Optional[float]:
    """Per-job wall-clock budget from ``$REPRO_JOB_TIMEOUT_S`` (seconds).

    Unset, empty, or non-positive means no timeout.
    """
    raw = os.environ.get("REPRO_JOB_TIMEOUT_S", "").strip()
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None


def _interrupt_main_thread() -> None:
    """Raise KeyboardInterrupt in the process's main thread, now.

    A real ``SIGINT`` via ``pthread_kill`` interrupts even a blocking C
    call (a stuck filesystem read, a wedged native extension), which
    ``_thread.interrupt_main``'s interpreter-level flag cannot; the
    flag is the fallback where pthread signals are unavailable.
    """
    try:
        signal.pthread_kill(threading.main_thread().ident, signal.SIGINT)
    except (AttributeError, ProcessLookupError, RuntimeError, OSError):
        _thread.interrupt_main()


def _timed_run(
    spec: JobSpec,
    timeout_s: Optional[float] = None,
) -> Tuple[Optional[SimulationResult], float, Optional[str]]:
    """Worker entry point: run one spec, returning (result, secs, error).

    Guardrail aborts come back as strings — exception instances with
    custom constructors do not all survive pickling, and the parent
    only needs the message for the job record.

    ``timeout_s`` (defaulting to ``$REPRO_JOB_TIMEOUT_S``, read here so
    pool workers honor it too) arms a daemon timer that interrupts the
    worker's main thread when the budget expires; the interrupted job
    is reported as a failure string like any guardrail abort.  A real
    Ctrl-C (no expired timer) still propagates.
    """
    if timeout_s is None:
        timeout_s = job_timeout_s()
    start = time.perf_counter()
    timer: Optional[threading.Timer] = None
    if timeout_s is not None and timeout_s > 0:
        timer = threading.Timer(timeout_s, _interrupt_main_thread)
        timer.daemon = True
        timer.start()
    try:
        result = run_job(spec)
        return result, time.perf_counter() - start, None
    except GuardrailError as error:
        return None, time.perf_counter() - start, f"{type(error).__name__}: {error}"
    except KeyboardInterrupt:
        if timer is None or not timer.finished.is_set():
            raise
        return (
            None,
            time.perf_counter() - start,
            f"JobTimeout: exceeded wall-clock budget of {timeout_s:g}s",
        )
    finally:
        if timer is not None:
            timer.cancel()


class _Progress:
    """Live one-line progress meter on stderr."""

    def __init__(self, enabled: bool, description: str, total: int):
        self.enabled = enabled
        self.description = description
        self.total = total
        self.done = 0
        self.hits = 0
        self.failed = 0
        self.start = time.perf_counter()

    def update(self, record: JobRecord) -> None:
        self.done += 1
        self.hits += int(record.cached)
        self.failed += int(record.error is not None)
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self.start
        line = (
            f"\r[{self.description}] {self.done}/{self.total} jobs  "
            f"{self.hits} cached  {self.done - self.hits} run  "
            f"{self.failed} failed  {elapsed:.1f}s"
        )
        sys.stderr.write(line)
        sys.stderr.flush()

    def finish(self) -> None:
        if self.enabled and self.total:
            sys.stderr.write("\n")
            sys.stderr.flush()


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, str, os.PathLike, None, bool] = None,
    progress: Union[bool, Callable[[JobRecord], None]] = False,
    description: str = "sweep",
    timeout_s: Optional[float] = None,
) -> HarnessReport:
    """Execute *specs*, in parallel and against the cache, in order.

    Parameters
    ----------
    specs:
        The experiment points.  ``results[i]`` in the returned report
        corresponds to ``specs[i]``.
    jobs:
        Worker processes; ``1`` runs inline (serial fallback), ``<= 0``
        uses every core, ``None`` reads ``$REPRO_JOBS`` (default 1).
    cache:
        A :class:`ResultCache`, a directory path to build one in,
        ``None`` to read ``$REPRO_CACHE_DIR`` (no caching when unset),
        or ``False`` to force caching off.
    progress:
        ``True`` draws a live progress line on stderr; a callable is
        invoked with each finished :class:`JobRecord` instead (testing /
        custom UIs).
    description:
        Tag used in the progress line and report summary.
    timeout_s:
        Per-job wall-clock budget in seconds; a job over budget is
        interrupted and recorded failed.  ``None`` reads
        ``$REPRO_JOB_TIMEOUT_S`` (no timeout when unset).
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, JobSpec):
            raise TypeError(f"expected JobSpec, got {type(spec).__name__}")
    result_cache: Optional[ResultCache]
    if isinstance(cache, ResultCache):
        result_cache = cache
    elif isinstance(cache, bool):
        # Only ``False`` is documented; a bare ``True`` names no
        # directory to build a cache in, so both mean "no cache".
        result_cache = None
    elif cache is None:
        env_dir = os.environ.get("REPRO_CACHE_DIR") or None
        result_cache = ResultCache(env_dir) if env_dir else None
    else:
        result_cache = ResultCache(cache)
    jobs = default_jobs() if jobs is None else resolve_jobs(jobs)

    results: List[Optional[SimulationResult]] = [None] * len(specs)
    by_index: Dict[int, JobRecord] = {}
    on_record = progress if callable(progress) else None
    meter = _Progress(progress is True, description, len(specs))
    start = time.perf_counter()

    # ---- cache pass ---------------------------------------------------
    pending: List[int] = []
    for i, spec in enumerate(specs):
        hit = result_cache.get(spec) if result_cache is not None else None
        if hit is not None:
            results[i] = hit
            record = JobRecord(
                label=spec.label(),
                key=spec.content_hash(),
                cached=True,
                seconds=0.0,
            )
            by_index[i] = record
            meter.update(record)
            if on_record:
                on_record(record)
        else:
            pending.append(i)

    # ---- execution pass ----------------------------------------------
    def finish(
        i: int,
        result: Optional[SimulationResult],
        seconds: float,
        error: Optional[str],
    ) -> None:
        results[i] = result
        record = JobRecord(
            label=specs[i].label(),
            key=specs[i].content_hash(),
            cached=False,
            seconds=seconds,
            error=error,
        )
        by_index[i] = record
        if result_cache is not None and result is not None:
            result_cache.put(specs[i], result)
        meter.update(record)
        if on_record:
            on_record(record)

    workers = min(jobs, len(pending)) if pending else jobs
    if workers <= 1:
        for i in pending:
            finish(i, *_timed_run(specs[i], timeout_s))
    else:
        broken: List[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_timed_run, specs[i], timeout_s): i
                for i in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        # A worker died (OOM kill, segfault, os._exit):
                        # this future and every other in-flight one are
                        # poisoned regardless of whose job was at fault.
                        broken.append(futures[future])
                        continue
                    finish(futures[future], *outcome)
        # Re-run each poisoned job once, isolated in its own fresh
        # single-worker pool: bystanders of the crash complete
        # normally, and only a job that kills its worker *again* is
        # abandoned.
        for i in sorted(broken):
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    outcome = pool.submit(
                        _timed_run, specs[i], timeout_s
                    ).result()
            except BrokenProcessPool:
                finish(
                    i, None, 0.0,
                    "WorkerDeath: worker process died twice running "
                    "this job; abandoned",
                )
                continue
            finish(i, *outcome)

    meter.finish()
    return HarnessReport(
        results=results,
        records=[by_index[i] for i in range(len(specs))],
        workers=workers,
        wall_seconds=time.perf_counter() - start,
        description=description,
        cache_stats=result_cache.stats() if result_cache is not None else {},
    )
