"""Content-addressed on-disk result cache.

Layout mirrors git's loose-object store: ``<root>/<key[:2]>/<key>.json``
where the key is

    sha256( JobSpec.canonical() + result-schema version + code version )

so a cache entry is invalidated automatically when the experiment point
changes (different spec), when the serialized result layout changes
(``RESULT_SCHEMA_VERSION`` bump), or when the simulator itself is
declared changed (``CODE_VERSION``, tied to the package version).

Entries are JSON rather than pickle: human-inspectable, diffable, and a
truncated or hand-edited file degrades to a cache *miss* instead of an
arbitrary-code-execution hazard.  Writes go through a temp file +
``os.replace`` so a crash mid-write can never leave a half-entry that a
resumed sweep would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Optional

from repro.harness.jobs import JobSpec
from repro.sim.results import RESULT_SCHEMA_VERSION, SimulationResult

__all__ = ["ResultCache", "CODE_VERSION"]

#: Version of the simulator code baked into every cache key.  Tracks the
#: package version so a release that changes simulation behavior starts
#: from a cold cache instead of replaying stale physics.
CODE_VERSION = "1.0.0"


class ResultCache:
    """Maps :class:`JobSpec` -> stored :class:`SimulationResult`."""

    def __init__(
        self,
        root,
        code_version: str = CODE_VERSION,
        schema_version: int = RESULT_SCHEMA_VERSION,
    ):
        self.root = pathlib.Path(root).expanduser()
        self.code_version = code_version
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(self, spec: JobSpec) -> str:
        """Content hash of (spec, schema version, code version)."""
        preimage = (
            f"{spec.canonical()}|schema={self.schema_version}"
            f"|code={self.code_version}"
        )
        return hashlib.sha256(preimage.encode("utf-8")).hexdigest()

    def path(self, spec: JobSpec) -> pathlib.Path:
        key = self.key(spec)
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: JobSpec) -> Optional[SimulationResult]:
        """The cached result, or ``None`` (counting a miss).

        Any defect in the stored entry — unreadable file, invalid JSON,
        missing fields, schema mismatch — is treated as a miss so the
        sweep re-runs the point rather than crashing or trusting garbage.
        """
        path = self.path(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted or stale entry: drop it and re-run.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: JobSpec, result: SimulationResult) -> pathlib.Path:
        """Store *result* under the spec's key (atomic, crash-safe)."""
        path = self.path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": self.key(spec),
            "spec": json.loads(spec.canonical()),
            "code_version": self.code_version,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # allow_nan=False: entries must be strict RFC-8259 JSON.
                # Python's json would otherwise emit Infinity/NaN (e.g.
                # ipf=inf for inactive nodes), which strict parsers and
                # cross-tool consumers reject; SimulationResult.to_dict
                # encodes non-finite floats as null instead, and this
                # flag guarantees the corruption class cannot silently
                # come back.
                json.dump(payload, handle, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def __contains__(self, spec: JobSpec) -> bool:
        return self.path(spec).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}
