"""repro.harness — parallel experiment orchestration with result caching.

The sweep substrate for every multi-run experiment in the repository:

- :class:`JobSpec` — an experiment point as a pure, hashable value
  (workload, network, controller recipe, cycles, seed) with a stable
  content hash;
- :func:`run_job` — execute one spec deterministically;
- :class:`ResultCache` — content-addressed on-disk store keyed by
  spec hash + result-schema version + code version;
- :func:`run_jobs` — shard specs across a process pool (serial
  fallback at ``jobs=1``), reuse cached points, and report per-job
  telemetry in a :class:`HarnessReport`.

Typical use::

    from repro.harness import JobSpec, ResultCache, run_jobs

    specs = [JobSpec(("mcf",) * 16, cycles=20_000, seed=s)
             for s in range(8)]
    report = run_jobs(specs, jobs=4, cache="~/.cache/repro")
    print(report.summary())
    best = max(report.results, key=lambda r: r.system_throughput)
"""

from repro.harness.cache import CODE_VERSION, ResultCache
from repro.harness.executor import (
    HarnessReport,
    JobRecord,
    default_jobs,
    resolve_jobs,
    run_jobs,
)
from repro.harness.jobs import CONTROLLER_KINDS, JobSpec, run_job

__all__ = [
    "JobSpec",
    "run_job",
    "run_jobs",
    "ResultCache",
    "HarnessReport",
    "JobRecord",
    "default_jobs",
    "resolve_jobs",
    "CODE_VERSION",
    "CONTROLLER_KINDS",
]
