"""Composable phase pipeline for the simulator's cycle loop.

The simulator advances one cycle by running an ordered list of named
*phases* (``behavior``, ``cores``, ``memory``, ``network``, ``ejection``
plus the periodic ``epoch`` control phase).  PR 3 instrumented that loop
by literally duplicating it — a plain copy and a ``PhaseTimer`` copy
that had to be kept in sync by hand.  This module replaces the
duplication with composition:

- phases are registered once, in execution order, on a
  :class:`PhasePipeline`;
- optional instrumentation (the :class:`~repro.observability.PhaseTimer`)
  is applied at *compile* time as a per-phase wrapper, so a run without
  profiling executes the original bound methods with zero added
  branches;
- cross-cutting checks (invariant checker, livelock watchdog) register
  as **post-hooks** on the phase whose outcome they verify instead of
  being special-cased inside the loop — a phase without hooks compiles
  to its bare callable.

:meth:`PhasePipeline.compiled` returns plain tuples of callables; the
simulator's single run loop iterates them.  There is exactly one loop to
maintain, and its disabled-observability cost is the tuple iteration
itself (measured under the PR-3 5%-overhead CI gate).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

__all__ = ["Phase", "PhasePipeline"]

#: A phase body or hook: called once per (applicable) cycle with the
#: current cycle number.
PhaseFn = Callable[[int], None]


class Phase:
    """One named step of the per-cycle pipeline.

    ``every`` is ``None`` for the ordinary per-cycle phases.  A periodic
    phase (the controller epoch) carries its period in cycles and runs
    after the cycle counter advances, when ``cycle % every == 0`` — the
    same boundary semantics the original loop gave the epoch step.
    """

    __slots__ = ("name", "fn", "every", "hooks")

    def __init__(self, name: str, fn: PhaseFn, every: Optional[int] = None):
        self.name = name
        self.fn = fn
        self.every = every
        self.hooks: List[PhaseFn] = []

    def compiled(self, timer=None) -> PhaseFn:
        """The phase as a single callable, hooks and timing applied."""
        fn = self.fn
        if self.hooks:
            fn = _chain(fn, tuple(self.hooks))
        if timer is not None:
            fn = _timed(fn, self.name, timer)
        return fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        period = "" if self.every is None else f", every={self.every}"
        return f"Phase({self.name!r}{period}, hooks={len(self.hooks)})"


def _chain(fn: PhaseFn, hooks: Tuple[PhaseFn, ...]) -> PhaseFn:
    def run(cycle: int) -> None:
        fn(cycle)
        for hook in hooks:
            hook(cycle)

    return run


def _timed(fn: PhaseFn, name: str, timer) -> PhaseFn:
    def run(cycle: int) -> None:
        timer.begin_cycle()
        fn(cycle)
        timer.lap(name)

    return run


class PhasePipeline:
    """An ordered, composable sequence of simulation phases."""

    def __init__(self):
        self._phases: List[Phase] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(
        self, name: str, fn: PhaseFn, every: Optional[int] = None
    ) -> Phase:
        """Register a phase at the end of the pipeline.

        Pass ``every`` to make the phase periodic: it then runs on
        period boundaries after the cycle counter advances instead of
        once per cycle.
        """
        if any(p.name == name for p in self._phases):
            raise ValueError(f"duplicate phase {name!r}")
        if every is not None and every < 1:
            raise ValueError(f"phase period must be >= 1, got {every}")
        phase = Phase(name, fn, every)
        self._phases.append(phase)
        return phase

    def phase(self, name: str) -> Phase:
        for p in self._phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r}")

    def post_hook(self, name: str, hook: PhaseFn) -> None:
        """Run *hook* after phase *name* every cycle the phase runs.

        This is how cross-cutting concerns (invariant checking, the
        livelock watchdog) attach to the loop: they cost nothing when
        not registered, and the phase order contract stays in exactly
        one place.
        """
        self.phase(name).hooks.append(hook)

    def set_period(self, name: str, every: int) -> None:
        """Adjust a periodic phase's period (the controller epoch)."""
        if every < 1:
            raise ValueError(f"phase period must be >= 1, got {every}")
        phase = self.phase(name)
        if phase.every is None:
            raise ValueError(f"phase {phase.name!r} is not periodic")
        phase.every = every

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._phases)

    def compiled(
        self, timer=None
    ) -> Tuple[Tuple[PhaseFn, ...], Tuple[Tuple[int, PhaseFn], ...]]:
        """Compile to ``(cycle_fns, periodic_fns)`` for the run loop.

        ``cycle_fns`` are the per-cycle phases in order, one callable
        each; ``periodic_fns`` are ``(every, fn)`` pairs the loop runs
        after advancing the cycle counter, when ``cycle % every == 0``.
        """
        cycle_fns = tuple(
            p.compiled(timer) for p in self._phases if p.every is None
        )
        periodic = tuple(
            (p.every, p.compiled(timer))
            for p in self._phases
            if p.every is not None
        )
        return cycle_fns, periodic
