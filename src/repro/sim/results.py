"""Simulation results.

``SimulationResult`` is a plain value object: every field is either a
scalar, a numpy array, or one of the small report dataclasses, so a
result can cross process boundaries (pickle) and be stored losslessly
on disk (``to_dict``/``from_dict``).  The content-addressed result
cache in :mod:`repro.harness` relies on both properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chaos.report import ChaosReport
from repro.guardrails.report import GuardrailReport
from repro.metrics.collectors import EpochSeries
from repro.observability.counters import PerfCounters
from repro.power.model import PowerReport

__all__ = ["SimulationResult", "RESULT_SCHEMA_VERSION"]

#: Bump whenever the serialized layout of :meth:`SimulationResult.to_dict`
#: changes shape or meaning; the on-disk result cache keys on it so stale
#: entries are never deserialized into a new schema.
#: 2: non-finite floats encode as ``null`` (strict RFC-8259 JSON) and the
#: optional ``perf`` counters snapshot joined the layout.
#: 3: the optional ``chaos`` campaign report joined the layout.
RESULT_SCHEMA_VERSION = 3

#: sha256 of ``"v{RESULT_SCHEMA_VERSION}:" + ",".join(sorted(fields))``
#: over every serialized field name.  Checked statically by the
#: SCHEMA001 rule (``repro.analysis.schema``): changing the serialized
#: layout without bumping RESULT_SCHEMA_VERSION *and* refreshing this
#: pin fails ``python -m repro.analysis``.
RESULT_SCHEMA_FIELD_HASH = (
    "caeb7451385f27f95e0c92d59441928b5b894fa620d34501e9e0183d605fe9e4"
)

_ARRAY_FIELDS = {
    "ipc": float,
    "active": bool,
    "ipf": float,
    "starvation_rate": float,
    "port_starvation_rate": float,
}

#: What a serialized ``null`` in each float array restores to.  ``ipf``
#: is the only field with a non-finite producer: inactive nodes issue no
#: flits, so their instructions-per-flit is +inf by definition
#: (``repro.sim.simulator._result``).  Any other null reads back as NaN.
_NULL_RESTORE = {"ipf": np.inf}


def _encode_float_list(values: np.ndarray) -> list:
    """Float array -> JSON list with non-finite entries as ``None``.

    ``json.dump`` would otherwise emit ``Infinity``/``NaN``, which are
    not RFC-8259 JSON and break strict parsers (and therefore every
    cross-tool consumer of the result cache).
    """
    finite = np.isfinite(values)
    if finite.all():
        return values.tolist()
    return [float(v) if ok else None for v, ok in zip(values, finite)]


def _decode_float_list(values: list, null_value: float) -> np.ndarray:
    """Restore a list written by :func:`_encode_float_list`."""
    return np.asarray(
        [null_value if v is None else v for v in values], dtype=float
    )


@dataclass
class SimulationResult:
    """Aggregate and per-node outcomes of one simulation run."""

    cycles: int
    num_nodes: int
    ipc: np.ndarray  # per-node instructions per cycle
    active: np.ndarray  # nodes that ran an application
    ipf: np.ndarray  # whole-run measured instructions-per-flit
    starvation_rate: np.ndarray  # per-node fraction of starved cycles
    port_starvation_rate: np.ndarray  # starvation excluding throttle blocks
    avg_net_latency: float  # injection -> ejection, cycles
    max_net_latency: int  # worst-case flit latency (tail bound)
    avg_injection_latency: float  # NI enqueue -> injection, cycles
    avg_hops: float
    deflection_rate: float
    network_utilization: float
    injected_flits: int
    ejected_flits: int
    power: PowerReport
    epochs: EpochSeries
    #: per-flit delivered-latency histogram (the percentile samples);
    #: ``None`` for hand-built results, which report percentile 0
    latency_hist: Optional[np.ndarray] = None
    in_flight_flits: int = 0  # still in the network at run end
    guardrails: object = None  # GuardrailReport (None for hand-built results)
    #: PerfCounters when profiling/tracing was enabled, else None — perf
    #: counters carry wall-clock time, so default runs omit them to keep
    #: results bit-identical across serial/parallel/cached execution
    perf: object = None
    #: ChaosReport when a chaos campaign ran, else None (repro.chaos)
    chaos: object = None

    def latency_percentile(self, p: float) -> int:
        """The *p*-th percentile (0-100) of delivered-flit latency.

        Computed from the stored histogram, so it survives pickling and
        dict round-trips (the simulator used to attach a bound method
        here, which no process pool could ship home).
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.latency_hist is None:
            return 0
        total = int(self.latency_hist.sum())
        if total == 0:
            return 0
        cum = np.cumsum(self.latency_hist)
        # Nearest-rank: first bucket whose cumulative count reaches the
        # target rank.  The rank floor of 1 makes p=0 the minimum
        # observed latency (a bare target of 0 lands on bucket 0 even
        # when it is empty); the index clamp keeps any float rounding at
        # p=100 inside the histogram.
        rank = max(p / 100.0 * total, 1)
        idx = int(np.searchsorted(cum, rank, side="left"))
        return min(idx, len(cum) - 1)

    @property
    def flit_conservation_ok(self) -> bool:
        """No-drop accounting: every injected flit ejected or in flight."""
        return self.injected_flits == self.ejected_flits + self.in_flight_flits

    @property
    def system_throughput(self) -> float:
        """Sum of IPC over all nodes (§3.1)."""
        return float(self.ipc.sum())

    @property
    def throughput_per_node(self) -> float:
        """IPC per active node, the scalability metric of Fig 3(c)/13."""
        n = int(self.active.sum())
        if n == 0:
            return 0.0
        return float(self.ipc[self.active].sum() / n)

    @property
    def mean_starvation(self) -> float:
        if not self.active.any():
            return 0.0
        return float(self.starvation_rate[self.active].mean())

    @property
    def mean_port_starvation(self) -> float:
        """Mean admission starvation (congestion only, no throttle blocks)."""
        if not self.active.any():
            return 0.0
        return float(self.port_starvation_rate[self.active].mean())

    # ------------------------------------------------------------------
    # Lossless serialization (result cache, cross-process transport)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible dict that :meth:`from_dict` restores exactly.

        Floats serialize via ``repr`` under ``json.dumps`` (shortest
        round-trip representation), so a dict -> JSON -> dict cycle is
        bit-identical.  Non-finite entries (inactive nodes' ``ipf`` is
        +inf) encode as ``None`` so the payload is strict RFC-8259 JSON
        — ``json.dumps(..., allow_nan=False)`` never raises — and
        :meth:`from_dict` restores them via ``_NULL_RESTORE``.
        """
        out = {
            "schema": RESULT_SCHEMA_VERSION,
            "cycles": int(self.cycles),
            "num_nodes": int(self.num_nodes),
            "avg_net_latency": float(self.avg_net_latency),
            "max_net_latency": int(self.max_net_latency),
            "avg_injection_latency": float(self.avg_injection_latency),
            "avg_hops": float(self.avg_hops),
            "deflection_rate": float(self.deflection_rate),
            "network_utilization": float(self.network_utilization),
            "injected_flits": int(self.injected_flits),
            "ejected_flits": int(self.ejected_flits),
            "in_flight_flits": int(self.in_flight_flits),
            "power": {
                "dynamic_energy": float(self.power.dynamic_energy),
                "static_energy": float(self.power.static_energy),
                "cycles": int(self.power.cycles),
            },
            "epochs": self.epochs.to_dict(),
            "guardrails": (
                None if self.guardrails is None else self.guardrails.to_dict()
            ),
            "latency_hist": (
                None
                if self.latency_hist is None
                else np.asarray(self.latency_hist, dtype=np.int64).tolist()
            ),
            "perf": None if self.perf is None else self.perf.to_dict(),
            "chaos": None if self.chaos is None else self.chaos.to_dict(),
        }
        for name, kind in sorted(_ARRAY_FIELDS.items()):
            values = np.asarray(getattr(self, name)).astype(kind)
            out[name] = (
                _encode_float_list(values) if kind is float else values.tolist()
            )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result saved by :meth:`to_dict`."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"result schema {schema!r} != {RESULT_SCHEMA_VERSION} "
                "(stale serialization)"
            )
        arrays = {
            name: (
                _decode_float_list(data[name], _NULL_RESTORE.get(name, np.nan))
                if kind is float
                else np.asarray(data[name], dtype=kind)
            )
            for name, kind in sorted(_ARRAY_FIELDS.items())
        }
        hist = data["latency_hist"]
        guard = data["guardrails"]
        perf = data["perf"]
        chaos = data["chaos"]
        return cls(
            cycles=data["cycles"],
            num_nodes=data["num_nodes"],
            avg_net_latency=data["avg_net_latency"],
            max_net_latency=data["max_net_latency"],
            avg_injection_latency=data["avg_injection_latency"],
            avg_hops=data["avg_hops"],
            deflection_rate=data["deflection_rate"],
            network_utilization=data["network_utilization"],
            injected_flits=data["injected_flits"],
            ejected_flits=data["ejected_flits"],
            in_flight_flits=data["in_flight_flits"],
            power=PowerReport(**data["power"]),
            epochs=EpochSeries.from_dict(data["epochs"]),
            guardrails=None if guard is None else GuardrailReport(**guard),
            latency_hist=(
                None if hist is None else np.asarray(hist, dtype=np.int64)
            ),
            perf=None if perf is None else PerfCounters.from_dict(perf),
            chaos=None if chaos is None else ChaosReport.from_dict(chaos),
            **arrays,
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.num_nodes} nodes, {self.cycles} cycles: "
            f"IPC/node={self.throughput_per_node:.3f} "
            f"util={self.network_utilization:.3f} "
            f"latency={self.avg_net_latency:.1f}cy "
            f"starvation={self.mean_starvation:.3f} "
            f"deflect={self.deflection_rate:.3f} "
            f"power={self.power.average_power:.1f}"
        )
