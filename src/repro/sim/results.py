"""Simulation results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.collectors import EpochSeries
from repro.power.model import PowerReport

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Aggregate and per-node outcomes of one simulation run."""

    cycles: int
    num_nodes: int
    ipc: np.ndarray  # per-node instructions per cycle
    active: np.ndarray  # nodes that ran an application
    ipf: np.ndarray  # whole-run measured instructions-per-flit
    starvation_rate: np.ndarray  # per-node fraction of starved cycles
    port_starvation_rate: np.ndarray  # starvation excluding throttle blocks
    avg_net_latency: float  # injection -> ejection, cycles
    max_net_latency: int  # worst-case flit latency (tail bound)
    avg_injection_latency: float  # NI enqueue -> injection, cycles
    avg_hops: float
    deflection_rate: float
    network_utilization: float
    injected_flits: int
    ejected_flits: int
    power: PowerReport
    epochs: EpochSeries
    latency_percentile: object = None  # callable p -> cycles
    in_flight_flits: int = 0  # still in the network at run end
    guardrails: object = None  # GuardrailReport (None for hand-built results)

    @property
    def flit_conservation_ok(self) -> bool:
        """No-drop accounting: every injected flit ejected or in flight."""
        return self.injected_flits == self.ejected_flits + self.in_flight_flits

    @property
    def system_throughput(self) -> float:
        """Sum of IPC over all nodes (§3.1)."""
        return float(self.ipc.sum())

    @property
    def throughput_per_node(self) -> float:
        """IPC per active node, the scalability metric of Fig 3(c)/13."""
        n = int(self.active.sum())
        if n == 0:
            return 0.0
        return float(self.ipc[self.active].sum() / n)

    @property
    def mean_starvation(self) -> float:
        if not self.active.any():
            return 0.0
        return float(self.starvation_rate[self.active].mean())

    @property
    def mean_port_starvation(self) -> float:
        """Mean admission starvation (congestion only, no throttle blocks)."""
        if not self.active.any():
            return 0.0
        return float(self.port_starvation_rate[self.active].mean())

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.num_nodes} nodes, {self.cycles} cycles: "
            f"IPC/node={self.throughput_per_node:.3f} "
            f"util={self.network_utilization:.3f} "
            f"latency={self.avg_net_latency:.1f}cy "
            f"starvation={self.mean_starvation:.3f} "
            f"deflect={self.deflection_rate:.3f} "
            f"power={self.power.average_power:.1f}"
        )
