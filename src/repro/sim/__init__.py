"""Top-level simulation drivers."""

from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator

__all__ = ["Simulator", "SimulationResult"]
