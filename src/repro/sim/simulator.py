"""The closed-loop system simulator.

Wires cores, memory system, network and congestion controller together
and advances them cycle by cycle.  The model is closed-loop in the
paper's sense (§6.1): "the backpressure of the NoC and its effect on
presented load are accurately captured" — cores stall when the network
does not deliver, which feeds back into injected load.

Per-cycle order of operations (the phase-pipeline contract, see
:mod:`repro.sim.pipeline` and DESIGN.md §S21):

1. ``behavior``: application phase processes advance,
2. ``cores``: cores retire instructions and enqueue new miss requests,
3. ``memory``: the memory system enqueues data replies that finished L2
   service,
4. ``network``: the network moves/ejects/injects flits (guardrail
   post-hooks — invariant checker, livelock watchdog — run here),
5. ``ejection``: delivered request flits enter L2 service; delivered
   reply flits complete core misses,
6. ``epoch`` (periodic): on epoch boundaries the congestion controller
   observes the network (IPF + starvation, the paper's 2n control
   packets) and installs new throttling rates.

There is exactly one run loop; profiling composes per-phase timing
wrappers at compile time instead of duplicating the loop.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.chaos import ChaosEngine, DynamicFaultModel
from repro.config import SimulationConfig
from repro.control.base import EpochView
from repro.cpu.core import CoreArray
from repro.cpu.memory import MemorySystem
from repro.guardrails.faults import FaultModel
from repro.guardrails.invariants import InvariantChecker
from repro.guardrails.report import GuardrailReport
from repro.guardrails.watchdog import ProgressWatchdog
from repro.guardrails.errors import SimulationTimeout
from repro.metrics.collectors import EpochSeries
from repro.network import build_network
from repro.network.base import EjectedFlits
from repro.network.flit import FLIT_CONTROL, FLIT_REPLY, FLIT_REQUEST
from repro.observability import FlitTracer, PerfCounters, PhaseTimer
from repro.power.model import PowerModel
from repro.rng import child_rng
from repro.sim.pipeline import PhasePipeline
from repro.sim.results import SimulationResult
from repro.topology.registry import build_topology
from repro.traffic.applications import ApplicationBehaviorArray
from repro.traffic.locality import (
    ExponentialLocality,
    PowerLawLocality,
    UniformStriping,
)

__all__ = ["Simulator", "PHASE_WRITES"]

#: Phase-isolation contract, checked statically by the PHASE001 rule
#: (``repro.analysis.phasecontract``): each pipeline phase method (and
#: guardrail hook) may only write the simulator attributes listed here,
#: including writes made through other ``self`` methods it calls.  An
#: undeclared write — or a stale entry for a write that no longer
#: happens — fails ``python -m repro.analysis``.
PHASE_WRITES = {
    "_chaos_phase": (),
    "_behavior_phase": (),
    "_network_phase": ("_ejected",),
    "_cores_phase_native": (),
    "_memory_phase_native": (),
    "_network_phase_native": ("_ejected",),
    "_invariants_hook": (),
    "_watchdog_hook": (),
    "_ejection_phase": (),
    "_ejection_phase_native": (),
    "_epoch_phase": (
        "_epoch_start_hops",
        "_epoch_start_insns",
        "control_flits_sent",
    ),
}


def _build_topology(config: SimulationConfig):
    # Delegates to the registry (repro.topology.registry); the config
    # already ran the matching geometry validation in __post_init__.
    return build_topology(config)


def _build_locality(config: SimulationConfig, topology):
    if not isinstance(config.locality, str):
        return config.locality
    if config.locality == "uniform":
        return UniformStriping(topology)
    if config.locality == "exponential":
        return ExponentialLocality(topology, mean_distance=config.locality_param)
    if config.locality == "powerlaw":
        return PowerLawLocality(topology, alpha=config.locality_param)
    raise ValueError(f"unknown locality model {config.locality!r}")


class Simulator:
    """Builds and runs the full system described by a config."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.topology = _build_topology(config)
        self.locality = _build_locality(config, self.topology)
        self._rng_dest = child_rng(config.seed, "destinations")
        self._rng_phase = child_rng(config.seed, "phases")
        self._rng_arb = child_rng(config.seed, "arbitration")

        self.behavior = ApplicationBehaviorArray(
            config.workload.specs(),
            flits_per_miss=config.request_flits + config.reply_flits,
            phase_sigma=config.phase_sigma,
            phase_length=config.phase_length,
            seed_rng=child_rng(config.seed, "phase-init"),
        )
        chaos_on = config.chaos is not None and config.chaos.any_events
        if chaos_on:
            # Chaos needs a mutable fault model even when the run starts
            # fault-free; it layers mid-run transitions over any static
            # fault set.
            self.fault_model = DynamicFaultModel(self.topology, config.faults)
        else:
            self.fault_model = (
                FaultModel(self.topology, config.faults)
                if config.faults is not None and config.faults.any_faults
                else None
            )
        self.network = build_network(
            config, self.topology, rng=self._rng_arb,
            fault_model=self.fault_model,
        )
        # Observability (repro.observability): both layers default off,
        # in which case the run loop stays uninstrumented and the only
        # residual cost is a handful of is-None branches.
        self.phase_timer = PhaseTimer() if config.profile else None
        self.tracer: Optional[FlitTracer] = None
        if config.trace:
            salt = int(child_rng(config.seed, "trace").integers(0, 2**63))
            self.tracer = FlitTracer(
                capacity=config.trace_capacity,
                sample=config.trace_sample,
                salt=salt,
            )
            self.network.tracer = self.tracer
        self._wall_seconds = 0.0
        self.checker = (
            InvariantChecker(self.network) if config.check_invariants else None
        )
        self.watchdog = (
            ProgressWatchdog(config.watchdog_window, config.max_flit_age)
            if config.watchdog_window or config.max_flit_age
            else None
        )
        self.cores = CoreArray(
            self.behavior,
            self.locality,
            self.network,
            rng=self._rng_dest,
            issue_width=config.issue_width,
            window_size=config.window_size,
            mshr_limit=config.mshr_limit,
            request_flits=config.request_flits,
            reply_flits=config.reply_flits,
        )
        self.memory = MemorySystem(
            self.network,
            l2_latency=config.l2_latency,
            reply_flits=config.reply_flits,
        )
        self.controller = config.controller
        self.epochs = EpochSeries()
        self.cycle = 0
        self._epoch_start_hops = 0
        self._epoch_start_insns = 0.0
        # The central coordinator's location (for control traffic): the
        # topology's center, where average distance to all nodes is
        # minimal (the grid center on a mesh).
        self.hub = self.topology.central_node()
        if self.fault_model is not None:
            # A fail-stopped hub moves to the nearest live router.
            self.hub = int(self.fault_model.remap[self.hub])
        self.control_flits_sent = 0
        # Hierarchical control plane (repro.control.hierarchical): a
        # DomainMap plus per-domain hubs, resolved at run() time because
        # the CLI installs its controller after construction.  None for
        # single-hub controllers — the classic 2n-flits-to-one-point
        # control traffic path.
        self.domains = None
        self.domain_hubs = None
        self._domain_hub_home = None
        self.domain_control_flits = None
        # Chaos campaign engine (mid-run fault/recovery events); built
        # last so it can observe the fully wired system.
        self.chaos = ChaosEngine(self, config.chaos) if chaos_on else None
        # Per-cycle scratch: the network phase's delivered flits, consumed
        # by the guardrail hooks and the ejection phase.
        self._ejected = EjectedFlits.empty()
        self._observe = False
        # Compiled hot-path backend (repro.native): opt-in via the
        # config; unsupported configurations raise NativeUnsupported
        # rather than silently running something slightly different.
        self._accel = None
        if config.backend == "native":
            from repro.native import NativeAccel

            self._accel = NativeAccel(self)
        self.pipeline = self._build_pipeline()

    # ------------------------------------------------------------------
    # The phase pipeline (the per-cycle order-of-operations contract)
    # ------------------------------------------------------------------
    def _build_pipeline(self) -> PhasePipeline:
        """Assemble the cycle loop's ordered phases and hooks.

        The phase *order* is the module-docstring contract; guardrails
        attach as post-hooks on the ``network`` phase (they verify its
        outcome), so disabled guardrails leave the compiled loop
        untouched.  Observability wraps phases at compile time in
        :meth:`run` — nothing here branches on it.
        """
        pipe = PhasePipeline()
        if self.chaos is not None:
            # Chaos runs first: fault transitions land on the cycle
            # boundary, before any phase observes the topology.
            pipe.append("chaos", self._chaos_phase)
        pipe.append("behavior", self._behavior_phase)
        if self._accel is not None:
            # Native backend: same phase order, compiled phase bodies.
            # Chaos and the invariant checker are gated off by the
            # accel's construction checks, so neither appears here.
            pipe.append("cores", self._cores_phase_native)
            pipe.append("memory", self._memory_phase_native)
            pipe.append("network", self._network_phase_native)
            if self.watchdog is not None:
                pipe.post_hook("network", self._watchdog_hook)
            pipe.append("ejection", self._ejection_phase_native)
            pipe.append("epoch", self._epoch_phase, every=self.config.epoch)
            return pipe
        pipe.append("cores", self.cores.step)
        pipe.append("memory", self.memory.step)
        pipe.append("network", self._network_phase)
        if self.checker is not None:
            pipe.post_hook("network", self._invariants_hook)
        if self.watchdog is not None:
            pipe.post_hook("network", self._watchdog_hook)
        pipe.append("ejection", self._ejection_phase)
        pipe.append("epoch", self._epoch_phase, every=self.config.epoch)
        return pipe

    def _chaos_phase(self, cycle: int) -> None:
        self.chaos.tick(cycle)

    def _behavior_phase(self, cycle: int) -> None:
        self.behavior.tick(self._rng_phase)

    def _network_phase(self, cycle: int) -> None:
        self._ejected = self.network.step(cycle)

    def _cores_phase_native(self, cycle: int) -> None:
        self._accel.cores_phase(cycle)

    def _memory_phase_native(self, cycle: int) -> None:
        self._accel.memory_phase(cycle)

    def _network_phase_native(self, cycle: int) -> None:
        self._ejected = self._accel.network_phase(cycle)

    def _ejection_phase_native(self, cycle: int) -> None:
        """Native ejection: L2 + core delivery happen in C; only the
        (optional) controller observation stays in Python."""
        self._accel.ejection_phase(cycle)
        if self._observe and self._ejected.node.size:
            self.controller.on_ejected(self._ejected)

    def _invariants_hook(self, cycle: int) -> None:
        assert self.checker is not None  # only registered when enabled
        self.checker.after_step(cycle, self._ejected)

    def _watchdog_hook(self, cycle: int) -> None:
        assert self.watchdog is not None  # only registered when enabled
        self.watchdog.after_step(cycle, self.network)

    def _ejection_phase(self, cycle: int) -> None:
        """Deliver this cycle's ejected flits to their consumers."""
        ejected = self._ejected
        if ejected.node.size:
            kind = ejected.kind
            req = kind == FLIT_REQUEST
            if req.any():
                self.memory.on_requests(
                    ejected.node[req], ejected.src[req], ejected.seq[req]
                )
            rep = kind == FLIT_REPLY
            if rep.any():
                self.cores.on_reply_flits(ejected.node[rep], ejected.seq[rep])
            if self._observe:
                self.controller.on_ejected(ejected)

    def _epoch_phase(self, cycle: int) -> None:
        if self._accel is not None:
            # Scalar stats are flushed lazily on the native backend;
            # epoch logic reads them, so sync before running it.
            self._accel.flush()
        self._run_epoch()

    # ------------------------------------------------------------------
    def run(
        self, cycles: int, deadline: Optional[float] = None
    ) -> SimulationResult:
        """Advance *cycles* cycles and return the run's results.

        ``deadline`` is an optional wall-clock budget in seconds; a run
        that exceeds it raises
        :class:`~repro.guardrails.errors.SimulationTimeout` (checked
        every 256 cycles) so a diverging run cannot stall a whole sweep.
        After an abort, :meth:`result` still returns a well-formed
        partial result for the cycles that did complete.
        """
        if isinstance(cycles, bool) or not isinstance(cycles, (int, np.integer)):
            raise ValueError(
                f"cycles must be an integer >= 1, got {cycles!r} "
                f"({type(cycles).__name__})"
            )
        if cycles < 1:
            raise ValueError(
                f"must simulate at least one cycle (got cycles={cycles})"
            )
        epoch = self.config.epoch
        if isinstance(epoch, bool) or not isinstance(epoch, (int, np.integer)):
            raise ValueError(
                f"epoch must be an integer >= 1, got {epoch!r} "
                f"({type(epoch).__name__})"
            )
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1 (got epoch={epoch})")
        # Wall-clock reads below are deliberate: they enforce the run's
        # real-time budget and measure host cost; nothing they produce
        # feeds simulated state.
        start_time = (
            time.monotonic() if deadline is not None else 0.0  # repro: noqa[DET001]
        )
        end = self.cycle + cycles
        if self.chaos is not None:
            # May swap self.controller for a fail-stop wrapper, so it
            # must precede the observes_ejections capture below.
            self.chaos.prepare()
        self._bind_control_domains()
        self._observe = self.controller.observes_ejections
        self.pipeline.set_period("epoch", epoch)
        cycle_fns, periodic = self.pipeline.compiled(self.phase_timer)
        wall_start = time.perf_counter()  # repro: noqa[DET001]
        try:
            cycle = self.cycle
            while cycle < end:
                if deadline is not None and cycle % 256 == 0:
                    elapsed = (
                        time.monotonic() - start_time  # repro: noqa[DET001]
                    )
                    if elapsed > deadline:
                        raise SimulationTimeout(cycle, elapsed, deadline)
                for fn in cycle_fns:
                    fn(cycle)
                cycle = self.cycle = cycle + 1
                for every, fn in periodic:
                    if cycle % every == 0:
                        fn(cycle)
        finally:
            self._wall_seconds += (
                time.perf_counter() - wall_start  # repro: noqa[DET001]
            )
        return self.result()

    # ------------------------------------------------------------------
    def _bind_control_domains(self) -> None:
        """Resolve the controller's control-domain partition, if any.

        Runs at the top of :meth:`run` — after the CLI/harness installed
        its final controller and after a chaos campaign wrapped it — so
        a domain-seeking controller (``wants_domains``) gets a
        :class:`~repro.control.domains.DomainMap` derived from the
        topology registry, and the simulator mirrors its hubs for the
        control-traffic model.  Idempotent across resumed runs.
        """
        controller = self.controller
        # A ResilientController wrapper delegates epochs to its primary.
        primary = getattr(controller, "primary", controller)
        if not getattr(primary, "wants_domains", False):
            self.domains = None
            self.domain_hubs = None
            self._domain_hub_home = None
            self.domain_control_flits = None
            return
        if primary.domain_map is None:
            from repro.topology.registry import domain_map

            primary.bind(
                domain_map(self.config, self.topology, primary.num_domains)
            )
        if self.domains is not primary.domain_map:
            self.domains = primary.domain_map
            self._domain_hub_home = self.domains.hubs.copy()
            self.domain_control_flits = np.zeros(
                self.domains.num_domains, dtype=np.int64
            )
        self.domain_hubs = self._domain_hub_home.copy()
        if self.fault_model is not None:
            # Fail-stopped hubs move to their nearest live routers.
            self.domain_hubs = self.fault_model.remap[
                self._domain_hub_home
            ].astype(np.int64)

    # ------------------------------------------------------------------
    def _run_epoch(self) -> None:
        """One controller period: measure, decide, install rates."""
        hops = self.network.stats.flit_hops
        insns = float(self.cores.retired.sum())
        epoch_cycles = self.config.epoch
        util = (hops - self._epoch_start_hops) / (
            epoch_cycles * self.topology.num_links
        )
        view = EpochView(
            cycle=self.cycle,
            ipf=self.cores.measured_ipf(),
            starvation_rate=self.network.starvation.rate(),
            active=self.cores.active,
            utilization=util,
            epoch_ipc=self.cores.epoch_insns / epoch_cycles,
        )
        rates = self.controller.on_epoch(view)
        self.network.set_throttle_rates(rates)
        if self.config.model_control_traffic and (
            self.domains is not None
            or not getattr(self.controller, "down", False)
        ):
            # A fail-stopped *central* coordinator exchanges no control
            # packets until it (or its standby) comes back.  With
            # control domains, only the hub<->coordinator summary
            # exchange pauses — intra-domain reporting continues
            # (handled inside the injection path).
            self._inject_control_traffic()
        self.epochs.append(
            self.cycle,
            utilization=util,
            throughput=(insns - self._epoch_start_insns)
            / (epoch_cycles * max(int(self.cores.active.sum()), 1)),
            starvation=float(view.starvation_rate[view.active].mean())
            if view.active.any()
            else 0.0,
            mean_throttle=float(np.asarray(rates).mean()),
            throttled_nodes=float((np.asarray(rates) > 0).sum()),
        )
        self.cores.reset_epoch()
        self._epoch_start_hops = hops
        self._epoch_start_insns = insns

    def _inject_control_traffic(self) -> None:
        """Model the mechanism's 2n control packets per epoch (§6.6).

        Each node reports (IPF, sigma) to the hub with one flit, and the
        hub distributes one rate-update flit per node.  Enqueued
        best-effort through the response path (control traffic is never
        throttled); queue overflow defers a report to the next epoch,
        which only delays — never breaks — coordination.
        """
        if self.domains is not None:
            self._inject_domain_control_traffic()
            return
        net = self.network
        stats = net.stats
        nodes = np.flatnonzero(self.cores.active)
        nodes = nodes[nodes != self.hub]
        sent = 0
        if nodes.size:
            hub_dest = np.full(nodes.size, self.hub, dtype=np.int64)
            ok = net.response_queue.push(
                nodes, hub_dest, FLIT_CONTROL, 1, stamp=self.cycle
            )
            sent += int(ok.sum())
            # Hub -> node updates: a burst into the hub's queue bounded
            # by its remaining space.  All entries target the same queue,
            # so "stop at the first overflow" is exactly "accept the
            # first free-space-many" — one vectorized push instead of
            # ~n single-entry pushes per epoch.
            sent += net.response_queue.push_burst(
                self.hub, nodes, FLIT_CONTROL, 1, stamp=self.cycle
            )
        self.control_flits_sent += sent
        stats.control_flits_attempted += 2 * nodes.size
        stats.control_flits_sent += sent
        stats.control_flits_dropped += 2 * nodes.size - sent

    def _inject_domain_control_traffic(self) -> None:
        """Hierarchical control traffic: 2 flits per node *within its
        domain* plus 2 flits per remote domain hub to/from the global
        coordinator — 2n intra-domain + 2·(#domains) global instead of
        2n through one queue.

        A fail-stopped coordinator suspends only the summary exchange;
        the domains keep reporting to their own hubs (they coordinate
        locally while degraded).
        """
        net = self.network
        stats = net.stats
        dm = self.domains
        hubs = self.domain_hubs
        active = np.flatnonzero(self.cores.active)
        active_domain = dm.domain_of[active]
        attempted = 0
        total_sent = 0
        for d in range(dm.num_domains):
            hub = int(hubs[d])
            members = active[active_domain == d]
            members = members[members != hub]
            attempted += 2 * members.size
            if members.size == 0:
                continue
            hub_dest = np.full(members.size, hub, dtype=np.int64)
            sent = int(net.response_queue.push(
                members, hub_dest, FLIT_CONTROL, 1, stamp=self.cycle
            ).sum())
            sent += net.response_queue.push_burst(
                hub, members, FLIT_CONTROL, 1, stamp=self.cycle
            )
            self.domain_control_flits[d] += sent
            total_sent += sent
        if not getattr(self.controller, "down", False):
            # Hub -> coordinator domain summaries and coordinator -> hub
            # reconciliation broadcasts.  Hubs can collide after fault
            # remapping; np.unique keeps push()'s unique-node contract
            # (and drops the coordinator's self-send, so one whole-mesh
            # domain exchanges nothing here — exactly the central path).
            coordinator = self.hub
            remote = np.unique(hubs[hubs != coordinator])
            attempted += 2 * remote.size
            if remote.size:
                co_dest = np.full(remote.size, coordinator, dtype=np.int64)
                sent = int(net.response_queue.push(
                    remote, co_dest, FLIT_CONTROL, 1, stamp=self.cycle
                ).sum())
                sent += net.response_queue.push_burst(
                    coordinator, remote, FLIT_CONTROL, 1, stamp=self.cycle
                )
                total_sent += sent
        self.control_flits_sent += total_sent
        stats.control_flits_attempted += attempted
        stats.control_flits_sent += total_sent
        stats.control_flits_dropped += attempted - total_sent

    # ------------------------------------------------------------------
    def result(self) -> SimulationResult:
        """The run's results so far — callable even after an abort.

        A :class:`~repro.guardrails.errors.SimulationTimeout` (or any
        guardrail abort) fires on a cycle boundary, before any phase of
        the aborted cycle runs, so the state summarized here is always a
        consistent whole number of cycles and epochs.
        """
        if self._accel is not None:
            self._accel.flush()
        stats = self.network.stats
        cores = self.cores
        flits = cores.misses_issued * (
            self.config.request_flits + self.config.reply_flits
        )
        ipf = cores.retired / np.maximum(flits, 1)
        ipf[flits == 0] = np.inf
        inj_lat = 0.0
        inj_count = getattr(self.network, "injection_latency_count", 0)
        if inj_count:
            inj_lat = self.network.injection_latency_sum / inj_count
        power = PowerModel(self.config.power).report(
            stats, self.topology.num_nodes, buffered=self.config.network == "buffered"
        )
        guardrails = GuardrailReport(
            invariant_checks=self.checker.checks_run if self.checker else 0,
            watchdog_window=self.config.watchdog_window,
            max_flit_age=self.config.max_flit_age,
            failed_links=self.fault_model.num_failed_links if self.fault_model else 0,
            failed_routers=(
                self.fault_model.num_failed_routers if self.fault_model else 0
            ),
            remapped_nodes=(
                int((~self.fault_model.alive_routers).sum())
                if self.fault_model
                else 0
            ),
            transient_fault_rate=(
                self.fault_model.config.transient_fault_rate
                if self.fault_model
                else 0.0
            ),
        )
        # Perf counters only exist when an observability layer ran: they
        # carry wall-clock times, which would break the bit-identical
        # serial/parallel/cache guarantees of default runs.
        chaos = self.chaos.report(self.cycle) if self.chaos else None
        perf = None
        if self.phase_timer is not None or self.tracer is not None:
            perf = PerfCounters(
                wall_seconds=self._wall_seconds,
                cycles=self.cycle,
                injected_flits=stats.injected_flits,
                ejected_flits=stats.ejected_flits,
                phase_seconds=(
                    dict(self.phase_timer.seconds)
                    if self.phase_timer is not None
                    else {}
                ),
                trace_events=self.tracer.recorded if self.tracer else 0,
                trace_dropped=self.tracer.dropped if self.tracer else 0,
                chaos_events=len(chaos.applied_events) if chaos else 0,
                control_flits_sent=stats.control_flits_sent,
                control_flits_dropped=stats.control_flits_dropped,
                control_domains=(
                    self.domains.num_domains if self.domains is not None else 0
                ),
                control_epochs=len(self.epochs),
                per_domain_control_flits=(
                    [int(x) for x in self.domain_control_flits]
                    if self.domain_control_flits is not None
                    else []
                ),
            )
        return SimulationResult(
            cycles=self.cycle,
            num_nodes=self.topology.num_nodes,
            ipc=cores.ipc(self.cycle),
            active=cores.active.copy(),
            ipf=ipf,
            starvation_rate=stats.starvation_rate(),
            port_starvation_rate=stats.port_starvation_rate(),
            avg_net_latency=stats.avg_latency,
            max_net_latency=stats.latency_max,
            avg_injection_latency=inj_lat,
            avg_hops=stats.avg_hops,
            deflection_rate=stats.deflection_rate,
            network_utilization=stats.utilization(self.topology.num_links),
            injected_flits=stats.injected_flits,
            ejected_flits=stats.ejected_flits,
            power=power,
            epochs=self.epochs,
            latency_hist=stats.latency_hist.copy(),
            in_flight_flits=self.network.in_flight_flits(),
            guardrails=guardrails,
            chaos=chaos,
            perf=perf,
        )
