"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "paper_vs_measured"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def paper_vs_measured(title: str, claims: Sequence[Sequence]) -> str:
    """Render a paper-claim vs measured-value table.

    Each claim row is ``(quantity, paper_value, measured_value, holds)``.
    """
    body = format_table(
        ["quantity", "paper", "measured", "holds"],
        [(q, p, m, "yes" if ok else "NO") for q, p, m, ok in claims],
    )
    bar = "=" * max(len(title), 20)
    return f"\n{bar}\n{title}\n{bar}\n{body}\n"
