"""Multi-run sweep drivers for the paper's figures."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.control.static_throttle import StaticThrottleController
from repro.experiments.runner import (
    compare_controllers,
    default_mechanism,
    run_workload,
)
from repro.rng import child_rng
from repro.sim.results import SimulationResult
from repro.traffic.workloads import (
    Workload,
    make_checkerboard_workload,
    make_workload_batch,
)

__all__ = [
    "static_throttle_sweep",
    "scaling_sweep",
    "locality_sweep",
    "pairwise_ipf_grid",
    "workload_batch_comparison",
]


def static_throttle_sweep(
    workload: Workload,
    rates: Sequence[float],
    cycles: int,
    **kw,
) -> List[Tuple[float, SimulationResult]]:
    """Fig 2(c): throttle all nodes at each rate, record the outcome."""
    results = []
    for rate in rates:
        controller = StaticThrottleController(rate) if rate > 0 else None
        results.append((rate, run_workload(workload, cycles, controller, **kw)))
    return results


def scaling_sweep(
    sizes: Sequence[int],
    cycles_for,
    category: str = "H",
    networks: Sequence[str] = ("bless", "bless-throttling", "buffered"),
    locality: str = "exponential",
    locality_param: float = 1.0,
    epoch: int = 1200,
    seed: int = 2,
    topology: str = "mesh",
) -> Dict[str, List[Tuple[int, SimulationResult]]]:
    """Figs 3 and 13-16: one workload per size, each network variant.

    ``cycles_for(n)`` maps a node count to a cycle budget, letting large
    networks run shorter.
    """
    out: Dict[str, List[Tuple[int, SimulationResult]]] = {n: [] for n in networks}
    for size in sizes:
        rng = child_rng(seed, f"scaling-{size}")
        workload = make_workload_batch(1, size, rng, categories=[category])[0]
        for name in networks:
            controller = default_mechanism(epoch) if name == "bless-throttling" else None
            net = "buffered" if name == "buffered" else "bless"
            res = run_workload(
                workload,
                cycles_for(size),
                controller,
                epoch=epoch,
                seed=seed,
                network=net,
                locality=locality,
                locality_param=locality_param,
                topology=topology,
            )
            out[name].append((size, res))
    return out


def locality_sweep(
    mean_distances: Sequence[float],
    num_nodes: int,
    cycles: int,
    category: str = "H",
    seed: int = 3,
    **kw,
) -> List[Tuple[float, SimulationResult]]:
    """Fig 4: per-node throughput vs average hop distance (1/lambda)."""
    rng = child_rng(seed, "locality-sweep")
    workload = make_workload_batch(1, num_nodes, rng, categories=[category])[0]
    results = []
    for mean in mean_distances:
        res = run_workload(
            workload,
            cycles,
            seed=seed,
            locality="exponential",
            locality_param=mean,
            **kw,
        )
        results.append((mean, res))
    return results


def pairwise_ipf_grid(
    apps: Sequence[str],
    cycles: int,
    width: int = 4,
    epoch: int = 1000,
    seed: int = 4,
) -> List[dict]:
    """Figs 11/12: checkerboard pairs of applications.

    For every (app1, app2) pair, runs baseline and mechanism and records
    throughput improvement plus baseline utilization.
    """
    rows = []
    for app1 in apps:
        for app2 in apps:
            workload = make_checkerboard_workload(app1, app2, width)
            base, ctl = compare_controllers(workload, cycles, epoch=epoch, seed=seed)
            improvement = 0.0
            if base.system_throughput > 0:
                improvement = ctl.system_throughput / base.system_throughput - 1.0
            rows.append(
                {
                    "app1": app1,
                    "app2": app2,
                    "improvement": improvement,
                    "baseline_utilization": base.network_utilization,
                }
            )
    return rows


def workload_batch_comparison(
    count: int,
    num_nodes: int,
    cycles: int,
    epoch: int = 1000,
    seed: int = 5,
    categories=None,
    **kw,
) -> List[dict]:
    """Figs 7-10: baseline vs mechanism across a workload batch."""
    rng = child_rng(seed, f"batch-{num_nodes}")
    kwargs = {} if categories is None else {"categories": categories}
    workloads = make_workload_batch(count, num_nodes, rng, **kwargs)
    rows = []
    for i, workload in enumerate(workloads):
        base, ctl = compare_controllers(
            workload, cycles, epoch=epoch, seed=seed + i, **kw
        )
        improvement = 0.0
        if base.system_throughput > 0:
            improvement = ctl.system_throughput / base.system_throughput - 1.0
        rows.append(
            {
                "workload": workload,
                "category": workload.category,
                "baseline": base,
                "mechanism": ctl,
                "improvement": improvement,
            }
        )
    return rows
