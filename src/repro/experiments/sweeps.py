"""Multi-run sweep drivers for the paper's figures.

Every driver here is a thin *spec generator* over
:func:`repro.harness.run_jobs`: it enumerates the experiment points as
declarative :class:`~repro.harness.JobSpec` values, hands the whole
batch to the harness, and reshapes the results into the figure-specific
structure the benchmarks consume.  All drivers therefore share the
harness's ``jobs`` / ``cache`` / ``progress`` keywords: a sweep runs on
``N`` worker processes with ``jobs=N`` and skips every point already in
the content-addressed cache — re-running a crashed or extended sweep
only executes the new points, and the parallel results are bit-identical
to serial because every job derives its RNG streams from its own spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import HarnessReport, JobSpec, run_jobs
from repro.rng import child_rng
from repro.sim.results import SimulationResult
from repro.traffic.workloads import (
    Workload,
    make_checkerboard_workload,
    make_workload_batch,
)

__all__ = [
    "static_throttle_sweep",
    "scaling_sweep",
    "locality_sweep",
    "pairwise_ipf_grid",
    "workload_batch_comparison",
]

#: Per-driver keywords routed to the harness, not to SimulationConfig.
_HARNESS_KW = ("jobs", "cache", "progress")


def _split_harness_kw(kw: dict) -> dict:
    """Pop the harness-routing keywords out of a driver's ``**kw``."""
    return {name: kw.pop(name) for name in _HARNESS_KW if name in kw}


def _sweep(specs, harness_kw: dict, description: str) -> HarnessReport:
    return run_jobs(specs, description=description, **harness_kw)


def static_throttle_sweep(
    workload: Workload,
    rates: Sequence[float],
    cycles: int,
    epoch: int = 1000,
    seed: int = 1,
    **kw,
) -> List[Tuple[float, SimulationResult]]:
    """Fig 2(c): throttle all nodes at each rate, record the outcome."""
    harness_kw = _split_harness_kw(kw)
    specs = [
        JobSpec.for_workload(
            workload,
            cycles,
            epoch=epoch,
            seed=seed,
            controller=("static", rate) if rate > 0 else ("none",),
            config=kw,
        )
        for rate in rates
    ]
    report = _sweep(specs, harness_kw, "static-throttle")
    return list(zip(rates, report.results))


def scaling_sweep(
    sizes: Sequence[int],
    cycles_for,
    category: str = "H",
    networks: Sequence[str] = ("bless", "bless-throttling", "buffered"),
    locality: str = "exponential",
    locality_param: float = 1.0,
    epoch: int = 1200,
    seed: int = 2,
    topology: str = "mesh",
    jobs: Optional[int] = None,
    cache=None,
    progress=False,
) -> Dict[str, List[Tuple[int, SimulationResult]]]:
    """Figs 3 and 13-16: one workload per size, each network variant.

    ``cycles_for(n)`` maps a node count to a cycle budget, letting large
    networks run shorter.  The (size x network) grid is embarrassingly
    parallel — all points go to the harness as one batch.
    """
    specs = []
    index: List[Tuple[str, int]] = []
    for size in sizes:
        rng = child_rng(seed, f"scaling-{size}")
        workload = make_workload_batch(1, size, rng, categories=[category])[0]
        for name in networks:
            specs.append(
                JobSpec.for_workload(
                    workload,
                    cycles_for(size),
                    epoch=epoch,
                    seed=seed,
                    controller=(
                        ("central",) if name == "bless-throttling" else ("none",)
                    ),
                    network="bless" if name == "bless-throttling" else name,
                    locality=locality,
                    locality_param=locality_param,
                    topology=topology,
                )
            )
            index.append((name, size))
    report = _sweep(
        specs, {"jobs": jobs, "cache": cache, "progress": progress}, "scaling"
    )
    out: Dict[str, List[Tuple[int, SimulationResult]]] = {n: [] for n in networks}
    for (name, size), res in zip(index, report.results):
        out[name].append((size, res))
    return out


def locality_sweep(
    mean_distances: Sequence[float],
    num_nodes: int,
    cycles: int,
    category: str = "H",
    seed: int = 3,
    epoch: int = 1000,
    **kw,
) -> List[Tuple[float, SimulationResult]]:
    """Fig 4: per-node throughput vs average hop distance (1/lambda)."""
    harness_kw = _split_harness_kw(kw)
    rng = child_rng(seed, "locality-sweep")
    workload = make_workload_batch(1, num_nodes, rng, categories=[category])[0]
    specs = [
        JobSpec.for_workload(
            workload,
            cycles,
            seed=seed,
            epoch=epoch,
            locality="exponential",
            locality_param=mean,
            config=kw,
        )
        for mean in mean_distances
    ]
    report = _sweep(specs, harness_kw, "locality")
    return list(zip(mean_distances, report.results))


def _comparison_specs(
    workload: Workload, cycles: int, epoch: int, seed: int, config: dict
) -> List[JobSpec]:
    """The (baseline, mechanism) spec pair of one comparison point."""
    common = dict(epoch=epoch, seed=seed, config=config)
    return [
        JobSpec.for_workload(workload, cycles, controller=("none",), **common),
        JobSpec.for_workload(workload, cycles, controller=("central",), **common),
    ]


def pairwise_ipf_grid(
    apps: Sequence[str],
    cycles: int,
    width: int = 4,
    epoch: int = 1000,
    seed: int = 4,
    **kw,
) -> List[dict]:
    """Figs 11/12: checkerboard pairs of applications.

    For every (app1, app2) pair, runs baseline and mechanism and records
    throughput improvement plus baseline utilization.
    """
    harness_kw = _split_harness_kw(kw)
    pairs = [(a, b) for a in apps for b in apps]
    specs = []
    for app1, app2 in pairs:
        workload = make_checkerboard_workload(app1, app2, width)
        specs.extend(_comparison_specs(workload, cycles, epoch, seed, kw))
    report = _sweep(specs, harness_kw, "pairwise-ipf")
    rows = []
    for i, (app1, app2) in enumerate(pairs):
        base, ctl = report.results[2 * i], report.results[2 * i + 1]
        improvement = 0.0
        if base.system_throughput > 0:
            improvement = ctl.system_throughput / base.system_throughput - 1.0
        rows.append(
            {
                "app1": app1,
                "app2": app2,
                "improvement": improvement,
                "baseline_utilization": base.network_utilization,
            }
        )
    return rows


def workload_batch_comparison(
    count: int,
    num_nodes: int,
    cycles: int,
    epoch: int = 1000,
    seed: int = 5,
    categories=None,
    **kw,
) -> List[dict]:
    """Figs 7-10: baseline vs mechanism across a workload batch."""
    harness_kw = _split_harness_kw(kw)
    rng = child_rng(seed, f"batch-{num_nodes}")
    kwargs = {} if categories is None else {"categories": categories}
    workloads = make_workload_batch(count, num_nodes, rng, **kwargs)
    specs = []
    for i, workload in enumerate(workloads):
        specs.extend(_comparison_specs(workload, cycles, epoch, seed + i, kw))
    report = _sweep(specs, harness_kw, "workload-batch")
    rows = []
    for i, workload in enumerate(workloads):
        base, ctl = report.results[2 * i], report.results[2 * i + 1]
        improvement = 0.0
        if base.system_throughput > 0:
            improvement = ctl.system_throughput / base.system_throughput - 1.0
        rows.append(
            {
                "workload": workload,
                "category": workload.category,
                "baseline": base,
                "mechanism": ctl,
                "improvement": improvement,
            }
        )
    return rows
