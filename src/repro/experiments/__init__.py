"""Experiment drivers used by the benchmark suite and examples.

Each paper experiment (DESIGN.md §3) is a thin composition of these
drivers; the benchmarks call them with scaled-down cycle budgets and
print paper-vs-measured tables.
"""

from repro.experiments.runner import (
    alone_ipc,
    bench_scale,
    compare_controllers,
    default_mechanism,
    run_workload,
    run_workload_safe,
    scaled_cycles,
    workload_alone_ipc,
)
from repro.experiments.sweeps import (
    locality_sweep,
    pairwise_ipf_grid,
    scaling_sweep,
    static_throttle_sweep,
    workload_batch_comparison,
)
from repro.experiments.tables import format_table, paper_vs_measured

__all__ = [
    "run_workload",
    "run_workload_safe",
    "compare_controllers",
    "default_mechanism",
    "alone_ipc",
    "workload_alone_ipc",
    "bench_scale",
    "scaled_cycles",
    "static_throttle_sweep",
    "scaling_sweep",
    "locality_sweep",
    "pairwise_ipf_grid",
    "workload_batch_comparison",
    "format_table",
    "paper_vs_measured",
]
