"""Single-run drivers and the alone-IPC cache for weighted speedup."""

from __future__ import annotations

import os
import time
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import SimulationConfig
from repro.control.base import Controller, NoController
from repro.control.central import CentralController, ControlParams
from repro.guardrails.errors import GuardrailError
from repro.rng import child_rng
from repro.sim.simulator import Simulator
from repro.sim.results import SimulationResult
from repro.traffic.workloads import Workload

__all__ = [
    "bench_scale",
    "scaled_cycles",
    "run_workload",
    "run_workload_safe",
    "compare_controllers",
    "alone_ipc",
]


def bench_scale() -> float:
    """Global cycle-budget multiplier, set via ``REPRO_BENCH_SCALE``.

    The benchmark suite defaults to runs long enough for stable trends
    but far shorter than the paper's 10M cycles; set
    ``REPRO_BENCH_SCALE=4`` (for example) for higher-fidelity runs.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_cycles(base: int) -> int:
    """Apply the bench scale to a cycle budget."""
    return max(int(base * bench_scale()), 1000)


def run_workload(
    workload: Workload,
    cycles: int,
    controller: Optional[Controller] = None,
    epoch: int = 1000,
    seed: int = 1,
    deadline: Optional[float] = None,
    **config_kw,
) -> SimulationResult:
    """Run one workload to completion and return its results.

    ``deadline`` is a per-run wall-clock budget in seconds (see
    :meth:`~repro.sim.Simulator.run`); all other keyword arguments go to
    :class:`~repro.config.SimulationConfig`.
    """
    cfg = SimulationConfig(
        workload,
        seed=seed,
        epoch=epoch,
        controller=controller if controller is not None else NoController(),
        **config_kw,
    )
    return Simulator(cfg).run(cycles, deadline=deadline)


def run_workload_safe(
    workload: Workload,
    cycles: int,
    controller: Optional[Controller] = None,
    *,
    retries: int = 1,
    backoff: float = 0.2,
    timeout_s: Optional[float] = None,
    epoch: int = 1000,
    seed: int = 1,
    warn: bool = True,
    _runner=None,
    _sleep=None,
    **config_kw,
) -> Optional[SimulationResult]:
    """:func:`run_workload` that degrades instead of aborting a sweep.

    A guardrail abort (invariant violation, watchdog trip, wall-clock
    timeout) is retried up to ``retries`` times with exponential backoff
    and a fresh seed each attempt (the simulator is deterministic, so
    retrying the *same* seed would fail identically).  Each backoff is
    jittered by a factor in ``[0.5, 1.5)`` drawn from a seeded
    :func:`~repro.rng.child_rng` substream, so a fleet of workers
    retrying the same transient condition (an overloaded filesystem, a
    shared license server) fans out instead of stampeding in lockstep —
    while staying reproducible per seed.  When every attempt fails the
    function emits a :class:`RuntimeWarning` and returns ``None`` so the
    caller records a partial sweep result rather than crashing the whole
    benchmark harness.

    ``_runner`` and ``_sleep`` are injection points for tests; they must
    accept the signatures of :func:`run_workload` and
    :func:`time.sleep` respectively.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    runner = run_workload if _runner is None else _runner
    sleep = time.sleep if _sleep is None else _sleep
    jitter_rng = child_rng(seed, "retry-backoff")
    last_error: Optional[GuardrailError] = None
    for attempt in range(retries + 1):
        try:
            return runner(
                workload,
                cycles,
                controller,
                epoch=epoch,
                seed=seed + attempt,
                deadline=timeout_s,
                **config_kw,
            )
        except GuardrailError as error:
            last_error = error
            if attempt < retries and backoff > 0:
                jitter = 0.5 + jitter_rng.random()
                sleep(backoff * (2**attempt) * jitter)
    if warn:
        warnings.warn(
            f"workload {workload.category or 'custom'} abandoned after "
            f"{retries + 1} attempt(s); last failure: {last_error}",
            RuntimeWarning,
            stacklevel=2,
        )
    return None


def default_mechanism(epoch: int) -> CentralController:
    """The paper's mechanism with its period scaled to the run length."""
    return CentralController(ControlParams(epoch=epoch))


def compare_controllers(
    workload: Workload,
    cycles: int,
    epoch: int = 1000,
    seed: int = 1,
    **config_kw,
) -> Tuple[SimulationResult, SimulationResult]:
    """Baseline BLESS vs BLESS + the paper's mechanism on one workload."""
    base = run_workload(workload, cycles, epoch=epoch, seed=seed, **config_kw)
    ctl = run_workload(
        workload,
        cycles,
        controller=default_mechanism(epoch),
        epoch=epoch,
        seed=seed,
        **config_kw,
    )
    return base, ctl


_ALONE_CACHE: Dict[tuple, float] = {}


def alone_ipc(
    app_name: str,
    num_nodes: int,
    cycles: int = 2500,
    seed: int = 11,
    **config_kw,
) -> float:
    """IPC of *app_name* running alone in the network (for WS, §6.2).

    The application is placed at node 0 with every other node idle, so
    it sees an uncontended network.  Results are cached per
    configuration because alone-IPC is a property of the application
    and network, not of the workload mix.
    """
    key = (app_name, num_nodes, cycles, seed, tuple(sorted(config_kw.items())))
    if key not in _ALONE_CACHE:
        apps = [app_name] + [None] * (num_nodes - 1)
        workload = Workload(tuple(apps), category="ALONE")
        res = run_workload(workload, cycles, seed=seed, **config_kw)
        _ALONE_CACHE[key] = float(res.ipc[0])
    return _ALONE_CACHE[key]


def workload_alone_ipc(workload: Workload, cycles: int = 2500, **kw) -> np.ndarray:
    """Per-node alone-IPC vector for a workload."""
    out = np.zeros(workload.num_nodes)
    for i, name in enumerate(workload.app_names):
        if name is not None:
            out[i] = alone_ipc(name, workload.num_nodes, cycles=cycles, **kw)
    return out
