"""Event-energy NoC power model (Fig 16, §6.3).

The paper uses the BLESS router power model (Orion-derived) reporting
absolute watts; we reproduce its *structure* with relative event
energies, since the reported results are percentage reductions:

- every link traversal costs link energy plus router-datapath energy
  (arbitration + crossbar); the buffered router's datapath is costlier
  (VC allocation and switch allocation stages),
- buffered routers additionally pay a buffer write + read per flit per
  hop and a static (leakage + clock) power term for the buffers
  themselves — the 20-40% router power the paper says buffers consume,
- deflections show up implicitly: a deflected flit traverses extra
  links/routers, which is exactly how congestion burns power in a
  bufferless NoC and how throttling recovers it.

Coefficients are normalized so one BLESS link traversal costs 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerCoefficients", "PowerReport", "PowerModel"]


@dataclass(frozen=True)
class PowerCoefficients:
    """Relative event energies and static powers."""

    link_traversal: float = 1.0
    router_bless: float = 0.7
    router_buffered: float = 0.9
    buffer_write: float = 0.35
    buffer_read: float = 0.25
    injection: float = 0.2
    #: static power per node per cycle; buffers dominate the buffered
    #: router's leakage/clock budget, giving the bufferless design its
    #: 20-40% power advantage at low-to-moderate load (§2.2)
    static_bless: float = 0.40
    static_buffered: float = 0.75


@dataclass(frozen=True)
class PowerReport:
    """Energy totals for one simulation run."""

    dynamic_energy: float
    static_energy: float
    cycles: int

    @property
    def total_energy(self) -> float:
        return self.dynamic_energy + self.static_energy

    @property
    def average_power(self) -> float:
        """Energy per cycle (arbitrary units)."""
        if self.cycles == 0:
            return 0.0
        return self.total_energy / self.cycles

    def reduction_vs(self, other: "PowerReport") -> float:
        """Fractional power reduction of *self* relative to *other*."""
        if other.average_power == 0:
            return 0.0
        return 1.0 - self.average_power / other.average_power


class PowerModel:
    """Turns network statistics into a :class:`PowerReport`."""

    def __init__(self, coefficients: PowerCoefficients = PowerCoefficients()):
        self.coefficients = coefficients

    def report(self, stats, num_nodes: int, buffered: bool) -> PowerReport:
        """Account a run's events.

        Parameters
        ----------
        stats:
            A :class:`~repro.network.base.NetworkStats`.
        buffered:
            Selects the router datapath energy and static power.
        """
        c = self.coefficients
        router = c.router_buffered if buffered else c.router_bless
        dynamic = (
            stats.flit_hops * (c.link_traversal + router)
            + stats.injected_flits * c.injection
            + stats.buffer_writes * c.buffer_write
            + stats.buffer_reads * c.buffer_read
        )
        static_per_node = c.static_buffered if buffered else c.static_bless
        static = static_per_node * num_nodes * stats.cycles
        return PowerReport(dynamic, static, stats.cycles)
