"""NoC power accounting."""

from repro.power.model import PowerCoefficients, PowerModel, PowerReport

__all__ = ["PowerCoefficients", "PowerModel", "PowerReport"]
