"""Runtime verification of the paper's hard network invariants (§2.2).

The BLESS argument rests on properties the simulator must uphold every
cycle — flits are never dropped, each node ejects at most
``eject_width`` flits per cycle, flits only occupy links that exist,
and ages impose a total order on in-flight flits.  The checker verifies
them after every network step, entirely with vectorized numpy
reductions so that checked runs stay within a small constant factor of
unchecked ones.

Checked invariants:

``conservation``
    injected == ejected + in-flight, every cycle (no flit is ever
    dropped or duplicated; a double-granted output port would overwrite
    a flit and trip this check).
``eject_width``
    no node ejects more flits in one cycle than its ejection width.
``ghost_link``
    no flit occupies a link that does not exist (mesh edge) or that has
    permanently failed (fault injection).
``future_birth``
    no in-flight flit claims an injection cycle later than now.
``age_order``
    the ``(birth, source)`` arbitration keys of in-flight flits are
    unique — the total order required for livelock freedom.
``dest_valid``
    every in-flight flit is addressed to a live, in-range router.
``queue_bounds``
    NI packet queues and (buffered network) input buffers respect their
    capacity, head-pointer, and credit bookkeeping bounds.
``control_conservation``
    every modeled control flit is accounted: attempted == sent +
    dropped (a hub-queue overflow is a *counted* drop, never a silent
    loss).
"""

from __future__ import annotations

import numpy as np

from repro.guardrails.errors import InvariantViolation
from repro.network.base import EjectedFlits
from repro.network.flit import meta_dest, meta_src, priority_key
from repro.network.queues import FlitQueueArray

__all__ = ["InvariantChecker"]


class InvariantChecker:
    """Per-cycle invariant verification for one network instance."""

    def __init__(self, network):
        self.network = network
        self.eject_width = int(getattr(network, "eject_width", 1))
        self.checks_run = 0
        n = network.num_nodes
        self._num_nodes = n
        self._num_ports = int(network.topology.num_ports)
        # Arrival slots a flit may legally occupy: one per healthy link.
        self._allowed_slots = network.link_up.ravel()
        self._alive = getattr(network.fault_model, "alive_routers", None)

    # ------------------------------------------------------------------
    def after_step(self, cycle: int, ejected: EjectedFlits) -> None:
        """Verify all invariants; raises :class:`InvariantViolation`."""
        net = self.network
        # Structural bounds first: a corrupt occupancy count would make
        # the semantic checks below mis-report the root cause.
        self._check_ring(cycle, net)
        self._check_queue(cycle, net.request_queue, "request")
        self._check_queue(cycle, net.response_queue, "response")
        buffers = getattr(net, "buffers", None)
        if buffers is not None:
            self._check_buffers(cycle, net, buffers)
        self._check_conservation(cycle, net)
        self._check_control(cycle, net)
        self._check_eject_width(cycle, ejected)
        self._check_flights(cycle, net)
        self.checks_run += 1

    # ------------------------------------------------------------------
    def _fail(self, invariant, cycle, message, nodes=None, **snapshot):
        stats = self.network.stats
        snapshot.setdefault("injected_flits", stats.injected_flits)
        snapshot.setdefault("ejected_flits", stats.ejected_flits)
        raise InvariantViolation(invariant, cycle, message, nodes, snapshot)

    def _check_conservation(self, cycle, net) -> None:
        in_flight = net.in_flight_flits()
        injected, ejected = net.stats.injected_flits, net.stats.ejected_flits
        if injected != ejected + in_flight:
            self._fail(
                "conservation",
                cycle,
                f"injected={injected} != ejected={ejected} + "
                f"in_flight={in_flight} (delta "
                f"{injected - ejected - in_flight:+d} flits)",
                in_flight=in_flight,
            )
        if ejected > injected:
            self._fail(
                "conservation", cycle,
                f"ejected={ejected} exceeds injected={injected}",
            )

    def _check_control(self, cycle, net) -> None:
        """Control-flit conservation: attempted == sent + dropped."""
        stats = net.stats
        attempted = stats.control_flits_attempted
        sent = stats.control_flits_sent
        dropped = stats.control_flits_dropped
        if sent < 0 or dropped < 0 or sent + dropped != attempted:
            self._fail(
                "control_conservation",
                cycle,
                f"control flits attempted={attempted} != sent={sent} + "
                f"dropped={dropped} (delta "
                f"{attempted - sent - dropped:+d})",
                control_attempted=attempted,
                control_sent=sent,
                control_dropped=dropped,
            )

    def _check_eject_width(self, cycle, ejected: EjectedFlits) -> None:
        if ejected.node.size == 0:
            return
        counts = np.bincount(ejected.node, minlength=self._num_nodes)
        if counts.max(initial=0) > self.eject_width:
            bad = np.flatnonzero(counts > self.eject_width)
            self._fail(
                "eject_width",
                cycle,
                f"node(s) ejected {int(counts.max())} flits in one cycle "
                f"(width {self.eject_width})",
                nodes=bad,
                per_node_ejections={int(b): int(counts[b]) for b in bad[:8]},
            )

    def _check_ring(self, cycle, net) -> None:
        """Flits on the wire only occupy healthy arrival slots."""
        occupied = net._ring_birth >= 0
        ghost = occupied & ~self._allowed_slots[None, :]
        if ghost.any():
            slots = np.flatnonzero(ghost.any(axis=0))
            p = self._num_ports
            nodes = slots // p
            self._fail(
                "ghost_link",
                cycle,
                f"{int(ghost.sum())} flit(s) on nonexistent or failed "
                f"link(s) (node, port): "
                f"{[(int(s // p), int(s % p)) for s in slots[:8]]}",
                nodes=np.unique(nodes),
            )

    def _check_flights(self, cycle, net) -> None:
        meta, birth = net.in_flight_view()
        if birth.size == 0:
            return
        if int(birth.max()) > cycle:
            self._fail(
                "future_birth",
                cycle,
                f"in-flight flit with birth {int(birth.max())} > cycle {cycle}",
                max_birth=int(birth.max()),
            )
        src = meta_src(meta)
        dest = meta_dest(meta)
        if birth.size > 1:
            # Sort + adjacent-compare beats np.unique here: this runs
            # every cycle and the call overhead dominates at small sizes.
            keys = np.sort(priority_key(birth, src))
            duplicates = int((keys[1:] == keys[:-1]).sum())
            if duplicates:
                self._fail(
                    "age_order",
                    cycle,
                    f"{duplicates} duplicate (birth, src) arbitration "
                    f"key(s); Oldest-First total order broken",
                    in_flight=int(birth.size),
                )
        bad_range = (dest < 0) | (dest >= self._num_nodes) | (src >= self._num_nodes)
        if bad_range.any():
            self._fail(
                "dest_valid",
                cycle,
                f"{int(bad_range.sum())} in-flight flit(s) with out-of-range "
                f"src/dest",
            )
        if self._alive is not None and not self._alive[dest].all():
            dead = np.unique(dest[~self._alive[dest]])
            self._fail(
                "dest_valid",
                cycle,
                "in-flight flit(s) addressed to fail-stopped router(s) "
                "(destination re-striping bypassed)",
                nodes=dead,
            )

    def _check_queue(self, cycle, queue: FlitQueueArray, name: str) -> None:
        if (queue.count < 0).any() or (queue.count > queue.capacity).any():
            bad = np.flatnonzero((queue.count < 0) | (queue.count > queue.capacity))
            self._fail(
                "queue_bounds",
                cycle,
                f"{name} queue count outside [0, {queue.capacity}]",
                nodes=bad,
                counts={int(b): int(queue.count[b]) for b in bad[:8]},
            )
        if (queue.head < 0).any() or (queue.head >= queue.capacity).any():
            self._fail(
                "queue_bounds", cycle,
                f"{name} queue head pointer outside [0, {queue.capacity})",
            )

    def _check_buffers(self, cycle, net, buffers) -> None:
        cap = buffers.capacity
        if (buffers.count < 0).any() or (buffers.count > cap).any():
            bad = np.flatnonzero(((buffers.count < 0) | (buffers.count > cap)).any(axis=1))
            self._fail(
                "queue_bounds",
                cycle,
                f"input buffer occupancy outside [0, {cap}]",
                nodes=bad,
            )
        reserved = net.reserved
        if (reserved < 0).any():
            self._fail(
                "queue_bounds", cycle,
                "negative link credit reservation",
                nodes=np.flatnonzero((reserved < 0).any(axis=1)),
            )
        committed = buffers.count[:, :self._num_ports] + reserved
        if (committed > cap).any():
            self._fail(
                "queue_bounds",
                cycle,
                f"buffer occupancy + in-flight reservations exceed capacity {cap}",
                nodes=np.flatnonzero((committed > cap).any(axis=1)),
            )
