"""Simulation guardrails: invariant checking, watchdog, fault injection.

Opt-in runtime enforcement of the network invariants the paper's claims
rest on, a livelock/deadlock watchdog that fails fast with diagnostics,
and a seeded link/router fault model that the deflection router degrades
gracefully around.  See DESIGN.md, "Guardrails & fault injection".
"""

from repro.guardrails.errors import (
    GuardrailError,
    InvariantViolation,
    LivelockError,
    SimulationTimeout,
)
from repro.guardrails.faults import FaultConfig, FaultModel
from repro.guardrails.invariants import InvariantChecker
from repro.guardrails.report import GuardrailReport
from repro.guardrails.watchdog import ProgressWatchdog

__all__ = [
    "GuardrailError",
    "InvariantViolation",
    "LivelockError",
    "SimulationTimeout",
    "FaultConfig",
    "FaultModel",
    "InvariantChecker",
    "GuardrailReport",
    "ProgressWatchdog",
]
