"""Livelock/deadlock detection with fail-fast diagnostics.

A diverging run (a controller bug, an adversarial fault set, a broken
arbitration change) previously burned its entire cycle budget before
anyone noticed that nothing was being delivered.  The watchdog monitors
two progress signals after every network step:

- **ejection progress**: if flits are in flight but none has ejected
  for ``window`` consecutive cycles, the network is live- or
  deadlocked;
- **age bound**: if any in-flight flit is older than ``max_age``
  cycles, forward progress for that flit has stalled even though other
  traffic still moves (per-flit starvation, which aggregate ejection
  counters hide).

Both trips raise :class:`~repro.guardrails.errors.LivelockError`
carrying a diagnostics snapshot (in-flight population, oldest flit age,
cycles since the last ejection) so a failed run is immediately
attributable instead of silently slow.
"""

from __future__ import annotations

import numpy as np

from repro.guardrails.errors import LivelockError

__all__ = ["ProgressWatchdog"]


class ProgressWatchdog:
    """Monitors one network for loss of forward progress.

    Parameters
    ----------
    window:
        Cycles without any ejection (while flits are in flight) before
        declaring livelock.  Must comfortably exceed the network
        diameter times the hop latency; 0 disables the check.
    max_age:
        Maximum tolerated age (cycles since injection) of any in-flight
        flit; 0 disables the check.
    """

    def __init__(self, window: int = 0, max_age: int = 0):
        if window < 0 or max_age < 0:
            raise ValueError("watchdog window and max_age must be >= 0")
        self.window = int(window)
        self.max_age = int(max_age)
        self._last_progress_cycle = None
        self._last_ejected = -1

    # ------------------------------------------------------------------
    def after_step(self, cycle: int, network) -> None:
        """Update progress tracking; raises :class:`LivelockError`."""
        ejected = network.stats.ejected_flits
        in_flight = network.in_flight_flits()
        if ejected > self._last_ejected or in_flight == 0:
            self._last_ejected = ejected
            self._last_progress_cycle = cycle
            stalled_for = 0
        else:
            stalled_for = cycle - self._last_progress_cycle
        if self.window and in_flight > 0 and stalled_for >= self.window:
            raise LivelockError(
                cycle,
                f"no ejection for {stalled_for} cycles with {in_flight} "
                f"flit(s) in flight (window {self.window})",
                self._diagnostics(cycle, network, in_flight, stalled_for),
            )
        if self.max_age and in_flight > 0:
            _, birth = network.in_flight_view()
            oldest = int(cycle - birth.min()) if birth.size else 0
            if oldest > self.max_age:
                raise LivelockError(
                    cycle,
                    f"in-flight flit aged {oldest} cycles exceeds the "
                    f"{self.max_age}-cycle age bound",
                    self._diagnostics(cycle, network, in_flight, stalled_for),
                )

    # ------------------------------------------------------------------
    def _diagnostics(self, cycle, network, in_flight, stalled_for) -> dict:
        snapshot = {
            "in_flight": int(in_flight),
            "cycles_since_ejection": int(stalled_for),
            "injected_flits": int(network.stats.injected_flits),
            "ejected_flits": int(network.stats.ejected_flits),
            "queued_request_packets": int(network.request_queue.count.sum()),
            "queued_response_packets": int(network.response_queue.count.sum()),
        }
        _, birth = network.in_flight_view()
        if birth.size:
            snapshot["oldest_flit_age"] = int(cycle - birth.min())
            snapshot["median_flit_age"] = int(cycle - np.median(birth))
        return snapshot
