"""Run-level guardrail summary attached to simulation results."""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["GuardrailReport"]


@dataclass(frozen=True)
class GuardrailReport:
    """What the guardrails did during one run (all checks passed)."""

    invariant_checks: int = 0  # cycles verified by the invariant checker
    watchdog_window: int = 0  # 0 = watchdog disabled
    max_flit_age: int = 0  # 0 = age bound disabled
    failed_links: int = 0  # permanent link faults injected
    failed_routers: int = 0  # fail-stopped routers
    remapped_nodes: int = 0  # destinations re-striped around dead routers
    transient_fault_rate: float = 0.0

    @property
    def active(self) -> bool:
        return bool(
            self.invariant_checks
            or self.watchdog_window
            or self.max_flit_age
            or self.failed_links
            or self.failed_routers
            or self.transient_fault_rate
        )

    def to_dict(self) -> dict:
        """Plain-dict form; ``GuardrailReport(**d)`` restores it."""
        return asdict(self)

    def summary(self) -> str:
        parts = []
        if self.invariant_checks:
            parts.append(f"{self.invariant_checks} cycles invariant-checked")
        if self.watchdog_window:
            parts.append(f"watchdog window {self.watchdog_window}")
        if self.max_flit_age:
            parts.append(f"max flit age {self.max_flit_age}")
        if self.failed_links or self.failed_routers:
            parts.append(
                f"faults: {self.failed_links} link(s), "
                f"{self.failed_routers} router(s)"
            )
        if self.transient_fault_rate:
            parts.append(f"transient faults {self.transient_fault_rate:.3f}/link/cycle")
        return "; ".join(parts) if parts else "guardrails off"
