"""Link/router fault injection for the NoC models.

Deflection routing is naturally fault-tolerant: a faulty link is just
one more unavailable output port, and the deflection stage already
routes around unavailable ports every cycle.  The fault model makes
that concrete:

- **Permanent link faults** remove an undirected link from the topology
  for the whole run.  Faults are symmetric (both directions of a link
  fail together), which preserves the BLESS no-drop guarantee: every
  router still has exactly as many healthy output links as healthy
  input links, so the port-allocation stage can always place every
  arriving flit.
- **Permanent router faults** (fail-stop) take a router and all of its
  links out of service.  Traffic destined to a failed router is
  re-striped to the nearest live node at enqueue time (the shared-L2
  interleaving remaps around dead slices), so no flit is ever addressed
  to a node that cannot eject it.
- **Transient link faults** take a link out of *preferred* allocation
  for single cycles (seeded, i.i.d. per link per cycle).  A bufferless
  router cannot hold a flit back, so when a router would otherwise have
  no output at all, the deflection fallback may still cross a
  transiently degraded link — losslessness is a hard invariant; the
  fault degrades routing quality (more deflections), never delivery.
  The buffered network *can* hold flits, so there a transient fault
  simply blocks the send and the flit waits in its input buffer.

Permanent fault sets are validated for connectivity over the surviving
routers; disconnected draws are resampled (each attempt from a fresh
seed substream) so every generated fault set leaves a usable network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultConfig", "FaultModel"]


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of the faults to inject into a run.

    Rates are fractions: ``link_fault_rate`` of the undirected links and
    ``router_fault_rate`` of the routers fail permanently before the run
    starts; ``transient_fault_rate`` is the per-link, per-cycle
    probability of a one-cycle fault.  ``seed`` makes the fault set
    reproducible; ``max_resample`` bounds the search for a connected
    permanent-fault set.
    """

    link_fault_rate: float = 0.0
    transient_fault_rate: float = 0.0
    router_fault_rate: float = 0.0
    seed: int = 0
    max_resample: int = 64

    def __post_init__(self):
        for name in ("link_fault_rate", "transient_fault_rate", "router_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate!r}")
        if self.max_resample < 1:
            raise ValueError("max_resample must be at least 1")

    @property
    def any_faults(self) -> bool:
        return (
            self.link_fault_rate > 0
            or self.transient_fault_rate > 0
            or self.router_fault_rate > 0
        )


class FaultModel:
    """Concrete sampled fault set for one topology.

    Attributes
    ----------
    alive_routers:
        ``(N,)`` bool; False marks fail-stopped routers.
    link_up:
        ``(N, 4)`` bool; True where a healthy link exists.  Always a
        symmetric subset of ``topology.link_exists``.
    remap:
        ``(N,)`` int; identity for live nodes, nearest-live-node for
        failed ones.  Applied to destinations at enqueue time.
    """

    def __init__(self, topology, config: FaultConfig):
        self.topology = topology
        self.config = config
        self._seed = int(config.seed)
        n = topology.num_nodes
        self._canonical = self._canonical_link_ids(topology)
        rng_root = np.random.default_rng([self._seed, n])
        for attempt in range(config.max_resample):
            rng = np.random.default_rng(rng_root.integers(0, 2**63, size=4))
            dead_routers = self._sample_routers(rng)
            failed_links = self._sample_links(rng)
            if self._try_apply(dead_routers, failed_links):
                return
        raise ValueError(
            f"could not sample a connected fault set after "
            f"{config.max_resample} attempts (link_fault_rate="
            f"{config.link_fault_rate}, router_fault_rate="
            f"{config.router_fault_rate}); lower the fault rates"
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_failed_links(cls, topology, links, seed=0, transient_fault_rate=0.0):
        """A fault model with an explicit list of ``(node, port)`` faults.

        Each named directed link fails together with its reverse
        direction.  Used by tests and benchmarks that need a
        deterministic fault placement.
        """
        fm = cls.__new__(cls)
        fm.topology = topology
        fm.config = FaultConfig(
            transient_fault_rate=transient_fault_rate, seed=seed
        )
        fm._seed = int(seed)
        fm._canonical = cls._canonical_link_ids(topology)
        failed = np.zeros(
            (topology.num_nodes, topology.num_ports), dtype=bool
        )
        for node, port in links:
            if not topology.link_exists[node, port]:
                raise ValueError(f"no link at node {node} port {port}")
            failed[node, port] = True
            neighbor = int(topology.neighbor[node, port])
            failed[neighbor, int(topology.reverse_port[node, port])] = True
        dead = np.zeros(topology.num_nodes, dtype=bool)
        if not fm._try_apply(dead, failed):
            raise ValueError("explicit fault set disconnects the network")
        return fm

    @staticmethod
    def _canonical_link_ids(topology) -> np.ndarray:
        """Flat ``(N*P,)`` map from each directed link to its undirected
        representative (the smaller of the two directed flat indices)."""
        n, p = topology.num_nodes, topology.num_ports
        flat = np.arange(n * p, dtype=np.int64)
        neighbor = topology.neighbor.astype(np.int64).ravel()
        partner = np.where(
            neighbor >= 0,
            neighbor * p + topology.reverse_port.astype(np.int64).ravel(),
            flat,
        )
        return np.minimum(flat, partner)

    def _sample_routers(self, rng) -> np.ndarray:
        n = self.topology.num_nodes
        dead = np.zeros(n, dtype=bool)
        k = int(round(self.config.router_fault_rate * n))
        if k:
            dead[rng.choice(n, size=min(k, n - 1), replace=False)] = True
        return dead

    def _sample_links(self, rng) -> np.ndarray:
        exists = self.topology.link_exists
        failed = np.zeros_like(exists)
        flat = exists.ravel()
        undirected = np.flatnonzero(flat & (self._canonical == np.arange(flat.size)))
        k = int(round(self.config.link_fault_rate * undirected.size))
        if k:
            chosen = rng.choice(undirected, size=min(k, undirected.size), replace=False)
            mask = np.isin(self._canonical, chosen).reshape(failed.shape)
            failed |= mask & exists
        return failed

    def _try_apply(self, dead_routers, failed_links) -> bool:
        """Install the fault set if it leaves live routers connected."""
        topology = self.topology
        link_up = topology.link_exists & ~failed_links
        # A dead router takes all of its links (both directions) down.
        link_up[dead_routers] = False
        neighbor = topology.neighbor.astype(np.int64)
        dead_neighbor = np.zeros_like(link_up)
        has_link = topology.link_exists
        dead_neighbor[has_link] = dead_routers[neighbor[has_link]]
        link_up &= ~dead_neighbor
        alive = ~dead_routers
        if not alive.any():
            return False
        if not self._connected(alive, link_up, neighbor):
            return False
        self.alive_routers = alive
        self.link_up = link_up
        self.num_failed_routers = int(dead_routers.sum())
        self.num_failed_links = int(
            ((topology.link_exists & ~link_up).sum()) // 2
        )
        self.remap = self._build_remap(alive)
        # Effective per-cycle transient rate.  An instance attribute (not
        # a config read) so dynamic extensions (repro.chaos noise windows)
        # can raise/lower it mid-run without mutating the frozen config.
        self.transient_fault_rate = self.config.transient_fault_rate
        self._distance = None
        return True

    @staticmethod
    def _connected(alive, link_up, neighbor) -> bool:
        """BFS over healthy links: every live router must be reachable."""
        start = int(np.flatnonzero(alive)[0])
        visited = np.zeros(alive.size, dtype=bool)
        visited[start] = True
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            hops = neighbor[frontier]
            ok = link_up[frontier]
            nxt = np.unique(hops[ok])
            nxt = nxt[~visited[nxt]]
            visited[nxt] = True
            frontier = nxt
        return bool(visited[alive].all())

    def _build_remap(self, alive) -> np.ndarray:
        """Nearest-live-node table for destination re-striping."""
        n = self.topology.num_nodes
        remap = np.arange(n, dtype=np.int64)
        dead_ids = np.flatnonzero(~alive)
        if dead_ids.size:
            alive_ids = np.flatnonzero(alive)
            for d in dead_ids:
                dist = self.topology.distance(
                    np.full(alive_ids.size, d, dtype=np.int64), alive_ids
                )
                remap[d] = alive_ids[int(np.argmin(dist))]
        return remap

    # ------------------------------------------------------------------
    # Fault-aware routing support
    # ------------------------------------------------------------------
    @property
    def healthy_distance(self) -> np.ndarray:
        """``(N, N)`` hop distances over the surviving links.

        Oldest-First livelock freedom requires that the globally oldest
        flit can always take a port that brings it strictly closer to
        its destination.  With permanent faults, plain XY "closer" can
        be a dead link, so the router consults distances on the *healthy*
        graph instead.  Entries touching dead routers hold a large
        sentinel; computed lazily and cached (all-pairs BFS, vectorized
        over sources)."""
        if self._distance is None:
            self._distance = self._all_pairs_distance()
        return self._distance

    def _all_pairs_distance(self, link_up=None) -> np.ndarray:
        if link_up is None:
            link_up = self.link_up
        n = self.topology.num_nodes
        neighbor = self.topology.neighbor.astype(np.int64)
        dist = np.full((n, n), np.iinfo(np.int32).max, dtype=np.int32)
        reached = np.eye(n, dtype=bool)
        dist[reached] = 0
        frontier = reached.copy()
        hops = 0
        while frontier.any():
            hops += 1
            nxt = np.zeros((n, n), dtype=bool)
            for port in range(self.topology.num_ports):
                ok = link_up[:, port]
                if ok.any():
                    nxt[:, neighbor[ok, port]] |= frontier[:, ok]
            frontier = nxt & ~reached
            dist[frontier] = hops
            reached |= frontier
        return dist

    # ------------------------------------------------------------------
    # Per-cycle queries
    # ------------------------------------------------------------------
    def transient_down(self, cycle: int):
        """Symmetric mask of links transiently faulted this cycle.

        Returns ``None`` when transient faults are disabled.  The draw is
        a pure function of ``(seed, cycle)`` so runs are reproducible and
        both directions of a link always fail together.
        """
        rate = self.transient_fault_rate
        if rate == 0.0:
            return None
        n, p = self.topology.num_nodes, self.topology.num_ports
        rng = np.random.default_rng([self._seed, 0x7A57, int(cycle)])
        u = rng.random(n * p)
        down = (u[self._canonical] < rate).reshape(n, p)
        return down & self.link_up

    def summary(self) -> str:
        parts = [
            f"{self.num_failed_links} failed link(s)",
            f"{self.num_failed_routers} failed router(s)",
        ]
        if self.config.transient_fault_rate:
            parts.append(
                f"transient rate {self.config.transient_fault_rate:.3f}/link/cycle"
            )
        return ", ".join(parts)
