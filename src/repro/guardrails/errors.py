"""Structured failures raised by the simulation guardrails.

All guardrail failures derive from :class:`GuardrailError` so callers
(the experiment runner, the CLI) can distinguish "this run diverged and
was stopped deliberately" from an ordinary programming error and degrade
gracefully — retry with a fresh seed, record a partial sweep result —
instead of aborting a whole benchmark harness.
"""

from __future__ import annotations

__all__ = [
    "GuardrailError",
    "InvariantViolation",
    "LivelockError",
    "SimulationTimeout",
]


class GuardrailError(RuntimeError):
    """Base class for deliberate guardrail-triggered aborts."""


class InvariantViolation(GuardrailError):
    """A hard network invariant failed at a specific cycle.

    Parameters
    ----------
    invariant:
        Short machine-readable name of the violated invariant
        (``"conservation"``, ``"eject_width"``, ``"ghost_link"``, ...).
    cycle:
        Simulated cycle at which the violation was detected.
    message:
        Human-readable description of what went wrong.
    nodes:
        Node ids implicated in the violation, when attributable.
    snapshot:
        Small cycle-stamped dict of network state captured at detection
        time, for post-mortem debugging (counter values, offending
        array slices — never full network state).
    """

    def __init__(self, invariant, cycle, message, nodes=None, snapshot=None):
        self.invariant = invariant
        self.cycle = cycle
        self.nodes = list(nodes) if nodes is not None else []
        self.snapshot = dict(snapshot) if snapshot is not None else {}
        where = f" at node(s) {self.nodes[:8]}" if self.nodes else ""
        super().__init__(
            f"invariant {invariant!r} violated at cycle {cycle}{where}: {message}"
        )


class LivelockError(GuardrailError):
    """The progress watchdog detected livelock/deadlock or an over-age flit.

    Carries the same post-mortem payload as :class:`InvariantViolation`:
    the trip cycle plus a diagnostics snapshot (in-flight count, oldest
    flit age, cycles since last ejection).
    """

    def __init__(self, cycle, message, snapshot=None):
        self.cycle = cycle
        self.snapshot = dict(snapshot) if snapshot is not None else {}
        super().__init__(f"watchdog tripped at cycle {cycle}: {message}")


class SimulationTimeout(GuardrailError):
    """A run exceeded its wall-clock budget (see ``Simulator.run``)."""

    def __init__(self, cycle, elapsed, budget):
        self.cycle = cycle
        self.elapsed = elapsed
        self.budget = budget
        super().__init__(
            f"simulation exceeded its {budget:.1f}s wall-clock budget "
            f"after {elapsed:.1f}s at cycle {cycle}"
        )
