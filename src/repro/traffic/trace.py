"""Record/replay of application miss behavior.

The paper replays captured instruction traces; this layer provides the
equivalent substitution point.  A :class:`GapTrace` stores per-node
sequences of miss gaps (instructions between consecutive L1 misses);
:class:`TracedBehaviorArray` replays them (looping) through the same
interface as the synthetic :class:`~repro.traffic.applications.ApplicationBehaviorArray`,
so users with real miss traces can drive the simulator with them.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence

import numpy as np

__all__ = ["GapTrace", "TracedBehaviorArray"]


class GapTrace:
    """Per-node miss-gap sequences with npz persistence."""

    def __init__(self, gaps: Sequence[np.ndarray]):
        if not gaps:
            raise ValueError("a trace needs at least one node")
        self.gaps: List[np.ndarray] = [
            np.asarray(g, dtype=np.float64) for g in gaps
        ]
        for i, g in enumerate(self.gaps):
            if g.size and g.min() < 1.0:
                raise ValueError(f"node {i}: miss gaps must be >= 1 instruction")

    @property
    def num_nodes(self) -> int:
        return len(self.gaps)

    def save(self, path) -> None:
        """Persist to an ``.npz`` file."""
        arrays = {f"node_{i}": g for i, g in enumerate(self.gaps)}
        np.savez_compressed(Path(path), num_nodes=np.int64(self.num_nodes), **arrays)

    @classmethod
    def load(cls, path) -> "GapTrace":
        with np.load(Path(path)) as data:
            n = int(data["num_nodes"])
            return cls([data[f"node_{i}"] for i in range(n)])

    @classmethod
    def record(
        cls, behavior, cycles_of_misses: int, rng: np.random.Generator
    ) -> "GapTrace":
        """Sample a replayable trace from a synthetic behavior model."""
        nodes = np.flatnonzero(behavior.active)
        gaps = [np.zeros(0)] * behavior.num_nodes
        for node in nodes:
            node_arr = np.full(cycles_of_misses, node, dtype=np.int64)
            gaps[node] = behavior.sample_gap(node_arr, rng)
        return cls(gaps)


class TracedBehaviorArray:
    """Replays a :class:`GapTrace` through the behavior interface."""

    def __init__(self, trace: GapTrace, flits_per_miss: int = 3):
        self.trace = trace
        self.num_nodes = trace.num_nodes
        self.flits_per_miss = flits_per_miss
        self.active = np.array([g.size > 0 for g in trace.gaps], dtype=bool)
        self._pos = np.zeros(self.num_nodes, dtype=np.int64)
        self.mean_ipf = np.array(
            [g.mean() / flits_per_miss if g.size else 1.0 for g in trace.gaps]
        )

    def mean_gap_insns(self) -> np.ndarray:
        return self.mean_ipf * self.flits_per_miss

    def tick(self, rng: np.random.Generator) -> None:
        """Traces carry their own phase behavior; nothing to advance."""

    def sample_gap(
        self, nodes: np.ndarray, rng: np.random.Generator, initial: bool = False
    ) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.empty(nodes.size, dtype=np.float64)
        for i, node in enumerate(nodes):
            seq = self.trace.gaps[node]
            out[i] = seq[self._pos[node] % seq.size]
            self._pos[node] += 1
        return out

    def current_intensity(self) -> np.ndarray:
        demand = np.zeros(self.num_nodes)
        demand[self.active] = (
            self.flits_per_miss * 3.0 / np.maximum(self.mean_gap_insns()[self.active], 1.0)
        )
        return demand
