"""Application models, workload construction, and data-locality mapping."""

from repro.traffic.applications import (
    APPLICATION_CATALOG,
    ApplicationBehaviorArray,
    ApplicationSpec,
    intensity_class,
)
from repro.traffic.workloads import (
    WORKLOAD_CATEGORIES,
    Workload,
    make_category_workload,
    make_checkerboard_workload,
    make_homogeneous_workload,
    make_workload_batch,
)
from repro.traffic.hotspot import HotspotLocality
from repro.traffic.locality import (
    ExponentialLocality,
    PowerLawLocality,
    UniformStriping,
)
from repro.traffic.trace import GapTrace, TracedBehaviorArray

__all__ = [
    "ApplicationSpec",
    "APPLICATION_CATALOG",
    "ApplicationBehaviorArray",
    "intensity_class",
    "Workload",
    "WORKLOAD_CATEGORIES",
    "make_category_workload",
    "make_homogeneous_workload",
    "make_checkerboard_workload",
    "make_workload_batch",
    "UniformStriping",
    "HotspotLocality",
    "ExponentialLocality",
    "PowerLawLocality",
    "GapTrace",
    "TracedBehaviorArray",
]
