"""Hot-spot traffic (§7, "Traffic Engineering").

The paper observes that multi-threaded applications have "heavily
local/regional communication patterns, which can create 'hot-spots' of
high utilization in the network", and that source throttling gives only
small gains there (routing around the hot-spot would do better).

:class:`HotspotLocality` reproduces that pattern: a fraction of every
node's requests is directed at a small set of hot nodes (e.g. a shared
lock/home node, a memory controller, or an accelerator), the remainder
follows an exponential locality model.  The hot set can be re-drawn
periodically to model the paper's *dynamic* hot-spots driven by
application phases.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.rng import child_rng
from repro.traffic.locality import ExponentialLocality

__all__ = ["HotspotLocality"]


class HotspotLocality:
    """Mix of hot-node traffic and exponential background locality.

    Parameters
    ----------
    topology:
        The mesh/torus the destinations live on.
    hot_nodes:
        Node ids receiving the concentrated traffic; drawn uniformly at
        random (``num_hot`` of them) when omitted.
    hot_fraction:
        Probability that a request targets a hot node.
    background_mean_distance:
        Mean hop distance of the non-hot-spot traffic.
    """

    def __init__(
        self,
        topology,
        hot_nodes: Optional[Sequence[int]] = None,
        num_hot: int = 2,
        hot_fraction: float = 0.3,
        background_mean_distance: float = 1.0,
        seed_rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot fraction must be in (0, 1]")
        self.topology = topology
        self.hot_fraction = hot_fraction
        self._background = ExponentialLocality(
            topology, mean_distance=background_mean_distance
        )
        rng = seed_rng if seed_rng is not None else child_rng(0, "hotspot")
        if hot_nodes is not None:
            hot = np.asarray(hot_nodes, dtype=np.int64)
            if hot.size == 0:
                raise ValueError("need at least one hot node")
            if np.any((hot < 0) | (hot >= topology.num_nodes)):
                raise ValueError("hot node id out of range")
            self.hot_nodes = hot
        else:
            self.hot_nodes = rng.choice(
                topology.num_nodes, size=min(num_hot, topology.num_nodes),
                replace=False,
            ).astype(np.int64)

    def move_hotspots(self, rng: np.random.Generator) -> None:
        """Re-draw the hot set (dynamic hot-spots, §7)."""
        self.hot_nodes = rng.choice(
            self.topology.num_nodes, size=self.hot_nodes.size, replace=False
        ).astype(np.int64)

    def sample(self, src: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dest = self._background.sample(src, rng)
        to_hot = rng.random(src.size) < self.hot_fraction
        if to_hot.any():
            picks = self.hot_nodes[
                rng.integers(0, self.hot_nodes.size, size=int(to_hot.sum()))
            ]
            dest[to_hot] = picks
            # a hot node's own hot-directed traffic goes to another hot
            # node, or stays background if it is the only one
            self_hit = to_hot & (dest == src)
            if self_hit.any() and self.hot_nodes.size > 1:
                idx = np.flatnonzero(self_hit)
                for i in idx:
                    others = self.hot_nodes[self.hot_nodes != src[i]]
                    dest[i] = others[rng.integers(0, others.size)]
            elif self_hit.any():
                dest[self_hit] = self._background.sample(src[self_hit], rng)
        return dest

    def __repr__(self) -> str:
        return (
            f"HotspotLocality(hot={self.hot_nodes.tolist()}, "
            f"fraction={self.hot_fraction})"
        )
