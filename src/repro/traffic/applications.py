"""Application models calibrated to the paper's Table 1.

The paper drives its simulator with PinPoints instruction traces of SPEC
CPU2006 plus desktop/workstation/server applications.  Those traces are
not available, but the only application property the paper's analysis
and mechanism depend on is **Instructions-per-Flit** — "IPF is only
dependent on the L1 cache miss rate, and is thus independent of the
congestion in the network" (§4) — and Table 1 publishes the per-
application mean and variance of IPF.

Each application is therefore modeled as a stochastic IPF process
matched to its Table 1 moments: per-miss IPF samples are lognormal with
the published mean/variance, modulated by a slowly varying phase
multiplier that reproduces the temporal burstiness of Fig 6.  The miss
*gap* (instructions between consecutive L1 misses) is
``IPF x flits-per-miss``, since every miss contributes one request flit
plus the reply packet's flits to the application's traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.rng import child_rng

__all__ = [
    "ApplicationSpec",
    "APPLICATION_CATALOG",
    "ApplicationBehaviorArray",
    "intensity_class",
]


@dataclass(frozen=True)
class ApplicationSpec:
    """One application's network-intensity profile (a Table 1 row)."""

    name: str
    mean_ipf: float
    ipf_variance: float

    @property
    def intensity(self) -> str:
        return intensity_class(self.mean_ipf)


def intensity_class(mean_ipf: float) -> str:
    """Paper's intensity levels (§6.1): H < 2 IPF, M = 2-100, L > 100."""
    if mean_ipf < 2.0:
        return "H"
    if mean_ipf <= 100.0:
        return "M"
    return "L"


def _catalog(rows: Sequence[Tuple[str, float, float]]) -> Dict[str, ApplicationSpec]:
    return {name: ApplicationSpec(name, mean, var) for name, mean, var in rows}


#: Table 1 of the paper: mean IPF and variance per evaluated application.
APPLICATION_CATALOG: Dict[str, ApplicationSpec] = _catalog(
    [
        ("matlab", 0.4, 0.4),
        ("health", 0.9, 0.1),
        ("mcf", 1.0, 0.3),
        ("art.ref.train", 1.3, 1.3),
        ("lbm", 1.6, 0.3),
        ("soplex", 1.7, 0.9),
        ("libquantum", 2.1, 0.6),
        ("GemsFDTD", 2.2, 1.4),
        ("leslie3d", 3.1, 1.3),
        ("milc", 3.8, 1.1),
        ("mcf2", 5.5, 17.4),
        ("tpcc", 6.0, 7.1),
        ("xalancbmk", 6.2, 6.1),
        ("vpr", 6.4, 0.3),
        ("astar", 8.0, 0.8),
        ("hmmer", 9.6, 1.1),
        ("sphinx3", 11.8, 95.2),
        ("cactus", 14.6, 4.0),
        ("gromacs", 19.4, 12.2),
        ("bzip2", 65.5, 238.1),
        ("xml_trace", 108.9, 339.1),
        ("gobmk", 140.8, 1092.8),
        ("sjeng", 141.8, 51.5),
        ("wrf", 151.6, 357.1),
        ("crafty", 157.2, 119.0),
        ("gcc", 285.8, 81.5),
        ("h264ref", 310.0, 1937.4),
        ("namd", 684.3, 942.2),
        ("omnetpp", 804.4, 3702.0),
        ("dealII", 2804.8, 4267.8),
        ("calculix", 3106.5, 4100.6),
        ("tonto", 3823.5, 4863.9),
        ("perlbench", 9803.8, 8856.1),
        ("povray", 20708.5, 1501.8),
    ]
)


def _lognormal_params(mean: np.ndarray, var: np.ndarray):
    """Lognormal (mu, sigma) matching the given mean and variance."""
    sigma2 = np.log1p(var / np.maximum(mean, 1e-12) ** 2)
    mu = np.log(np.maximum(mean, 1e-12)) - sigma2 / 2.0
    return mu, np.sqrt(sigma2)


class ApplicationBehaviorArray:
    """Vectorized IPF processes for one application per node.

    Parameters
    ----------
    apps:
        One :class:`ApplicationSpec` (or ``None`` for an idle node) per
        node.
    flits_per_miss:
        Flits each miss contributes to the application's traffic
        (request + reply flits; Table 2's defaults give 1 + 2 = 3).
    phase_sigma:
        Strength of the slow phase modulation (Fig 6).  ``0`` disables
        phases, making per-miss IPF exactly lognormal(mean, variance).
    phase_length:
        Mean phase duration in cycles (geometric).
    """

    def __init__(
        self,
        apps: Sequence[Optional[ApplicationSpec]],
        flits_per_miss: int = 3,
        phase_sigma: float = 0.4,
        phase_length: int = 20_000,
        seed_rng: Optional[np.random.Generator] = None,
    ):
        self.apps = tuple(apps)
        self.num_nodes = len(apps)
        self.flits_per_miss = flits_per_miss
        self.phase_sigma = phase_sigma
        self.phase_length = max(int(phase_length), 1)
        self.active = np.array([a is not None for a in apps], dtype=bool)

        mean = np.array([a.mean_ipf if a else 1.0 for a in apps])
        var = np.array([a.ipf_variance if a else 0.0 for a in apps])
        self.mean_ipf = mean
        self._mu, self._sigma = _lognormal_params(mean, var)

        self._phase_mult = np.ones(self.num_nodes)
        # Default-seed fallback deliberately mirroring the simulator's
        # "phase-init" stream for standalone construction.
        rng = seed_rng if seed_rng is not None else child_rng(0, "phase-init")  # repro: noqa[RNG001]
        self._phase_timer = rng.geometric(
            1.0 / self.phase_length, size=self.num_nodes
        ).astype(np.int64)

    def mean_gap_insns(self) -> np.ndarray:
        """Expected instructions between misses per node."""
        return self.mean_ipf * self.flits_per_miss

    def tick(self, rng: np.random.Generator) -> None:
        """Advance phase timers one cycle; resample expired phases."""
        if self.phase_sigma <= 0.0:
            return
        self._phase_timer -= 1
        expired = np.flatnonzero(self._phase_timer <= 0)
        if expired.size == 0:
            return
        # Mean-one lognormal multiplier so phases add burstiness without
        # shifting the Table 1 mean IPF.
        s = self.phase_sigma
        self._phase_mult[expired] = rng.lognormal(-s * s / 2.0, s, expired.size)
        self._phase_timer[expired] = rng.geometric(
            1.0 / self.phase_length, size=expired.size
        )

    def sample_gap(
        self, nodes: np.ndarray, rng: np.random.Generator, initial: bool = False
    ) -> np.ndarray:
        """Instructions until the next L1 miss for each node in *nodes*."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0)
        ipf = rng.lognormal(self._mu[nodes], self._sigma[nodes])
        gap = np.maximum(ipf * self._phase_mult[nodes] * self.flits_per_miss, 1.0)
        if initial:
            # Random starting offset so nodes do not miss in lock-step.
            gap = gap * rng.random(nodes.size)
        return gap

    def current_intensity(self) -> np.ndarray:
        """Instantaneous expected flits/cycle demand per node (for Fig 6)."""
        gap = self.mean_gap_insns() * self._phase_mult
        demand = np.zeros(self.num_nodes)
        demand[self.active] = (
            self.flits_per_miss * 3.0 / np.maximum(gap[self.active], 1.0)
        )
        return demand
