"""Data-locality models: where an L1 miss is serviced (§3.2, Table 2).

Three destination mappers:

- :class:`UniformStriping` — the paper's small-network default
  ("per-block interleaving, XOR mapping"), statistically uniform over
  all remote shared-cache slices.
- :class:`ExponentialLocality` — the paper's scalability model:
  request distance is exponentially distributed with mean ``1/lambda``
  hops, "so most cache misses are serviced by nodes within a few hops,
  and some small fraction of requests go further" (95% within 3 hops and
  99% within 5 for lambda=1).
- :class:`PowerLawLocality` — the paper's alternative heavy-tailed model
  ("we also performed experiments with a power-law distribution of
  traffic distance, which behaved similarly").

All samplers are vectorized: given an array of miss sources they return
an array of destinations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UniformStriping", "ExponentialLocality", "PowerLawLocality"]


class UniformStriping:
    """Miss destinations uniform over all nodes except the source."""

    def __init__(self, topology):
        self.topology = topology

    def sample(self, src: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        n = self.topology.num_nodes
        offset = rng.integers(1, n, size=src.size)
        return ((src + offset) % n).astype(np.int64)

    def mean_distance(self) -> float:
        """Expected hop distance of a request (exact, by enumeration)."""
        topo = self.topology
        n = topo.num_nodes
        src = np.repeat(np.arange(n), n)
        dest = np.tile(np.arange(n), n)
        dist = topo.distance(src, dest)
        return float(dist[src != dest].mean())

    def __repr__(self) -> str:
        return "UniformStriping()"


class _DistanceLocality:
    """Shared machinery: sample a hop distance, then a node at it.

    2D grids use the axis-split sampler (split the distance across x/y,
    pick random signs, fold at edges).  Graph topologies have no
    coordinate system, so they precompute per-source distance buckets
    from the BFS table and draw a uniform node at the sampled distance —
    the same target distance distribution, topology-agnostic.
    """

    def __init__(self, topology):
        self.topology = topology
        self._max_dist = topology.max_distance()
        self._grid2d = bool(getattr(topology, "grid2d", False))
        if not self._grid2d:
            dist = np.asarray(topology.distance_table())
            n = topology.num_nodes
            # Row r of ``_order`` lists all nodes sorted by distance from
            # r (stable, so same-distance nodes stay in id order);
            # ``_bucket_start/_bucket_count`` index the run of nodes at
            # each exact distance.
            self._order = np.argsort(dist, axis=1, kind="stable").astype(np.int32)
            counts = np.zeros((n, self._max_dist + 1), dtype=np.int64)
            rows = np.repeat(np.arange(n), n)
            np.add.at(counts, (rows, dist.ravel().astype(np.int64)), 1)
            self._bucket_count = counts
            self._bucket_start = np.zeros_like(counts)
            np.cumsum(counts[:, :-1], axis=1, out=self._bucket_start[:, 1:])
            self._ecc = dist.max(axis=1).astype(np.int64)

    def _sample_distance(self, size: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def sample(self, src: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        topo = self.topology
        if not self._grid2d:
            # Clip per-source: every distance 1..ecc(src) is populated on
            # a connected graph, so the bucket is never empty.
            d = np.clip(self._sample_distance(src.size, rng), 1, self._ecc[src])
            start = self._bucket_start[src, d]
            count = self._bucket_count[src, d]
            pick = start + rng.integers(0, count)
            return self._order[src, pick].astype(np.int64)
        d = np.clip(self._sample_distance(src.size, rng), 1, self._max_dist)
        # Split the distance across the two axes and pick random signs.
        a = rng.integers(0, d + 1)
        b = d - a
        sx = rng.integers(0, 2, size=src.size) * 2 - 1
        sy = rng.integers(0, 2, size=src.size) * 2 - 1
        x = topo.coord_x[src] + sx * a
        y = topo.coord_y[src] + sy * b
        if topo.wraps:
            x = x % topo.width
            y = y % topo.height
        else:
            x = _fold(x, topo.width - 1)
            y = _fold(y, topo.height - 1)
        dest = (y * topo.width + x).astype(np.int64)
        # Edge folding can land back on the source; nudge one hop over.
        same = dest == src
        if same.any():
            x_s = topo.coord_x[dest[same]]
            nudge = np.where(x_s < topo.width - 1, 1, -1)
            dest[same] = dest[same] + nudge
        return dest


def _fold(coord: np.ndarray, limit: int) -> np.ndarray:
    """Reflect out-of-range coordinates back into ``[0, limit]``.

    Mirrors traffic at the mesh edge, preserving the target distance
    distribution as closely as the finite mesh allows.
    """
    coord = np.abs(coord)
    for _ in range(2):
        over = coord > limit
        if not over.any():
            break
        coord = np.where(over, 2 * limit - coord, coord)
        coord = np.abs(coord)
    return np.clip(coord, 0, limit)


class ExponentialLocality(_DistanceLocality):
    """Exponential request-distance distribution with mean ``1/lambda``.

    ``mean_distance`` is the paper's ``1/lambda``; the default of 1.0 hop
    reproduces the paper's locality assumption (95% of requests within
    3 hops, 99% within 5).
    """

    def __init__(self, topology, mean_distance: float = 1.0):
        super().__init__(topology)
        if mean_distance <= 0:
            raise ValueError("mean distance must be positive")
        self.mean_distance = mean_distance

    def _sample_distance(self, size: int, rng: np.random.Generator) -> np.ndarray:
        d = np.rint(rng.exponential(self.mean_distance, size=size))
        return np.maximum(d, 1).astype(np.int64)

    def __repr__(self) -> str:
        return f"ExponentialLocality(mean_distance={self.mean_distance})"


class PowerLawLocality(_DistanceLocality):
    """Pareto (power-law) request-distance distribution.

    Heavier tail than the exponential model at the same typical
    distance; the paper reports similar conclusions under it (§3.2).
    """

    def __init__(self, topology, alpha: float = 2.5):
        super().__init__(topology)
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a finite mean")
        self.alpha = alpha

    def _sample_distance(self, size: int, rng: np.random.Generator) -> np.ndarray:
        d = np.floor(rng.pareto(self.alpha, size=size) + 1.0)
        return d.astype(np.int64)

    def __repr__(self) -> str:
        return f"PowerLawLocality(alpha={self.alpha})"
