"""Multiprogrammed workload construction (§6.1).

The paper evaluates 875 workloads (700 on 16 cores, 175 on 64 cores) of
independent applications, one per core, drawn from seven categories.
Each category names the intensity levels its applications are drawn
from: {H, M, L, HML, HM, HL, ML}.  "For a given workload category, the
application at each node is chosen randomly from all applications in the
given intensity levels."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.applications import (
    APPLICATION_CATALOG,
    ApplicationSpec,
    intensity_class,
)

__all__ = [
    "Workload",
    "WORKLOAD_CATEGORIES",
    "make_category_workload",
    "make_homogeneous_workload",
    "make_checkerboard_workload",
    "make_workload_batch",
]

#: The paper's seven workload categories (§6.1).
WORKLOAD_CATEGORIES: Tuple[str, ...] = ("H", "M", "L", "HML", "HM", "HL", "ML")


@dataclass(frozen=True)
class Workload:
    """An assignment of one application (or ``None``) per node."""

    app_names: Tuple[Optional[str], ...]
    category: str = ""

    @property
    def num_nodes(self) -> int:
        return len(self.app_names)

    def specs(self) -> List[Optional[ApplicationSpec]]:
        """Resolve names against the application catalog."""
        return [
            APPLICATION_CATALOG[name] if name is not None else None
            for name in self.app_names
        ]

    def intensity_counts(self) -> Dict[str, int]:
        """How many nodes run applications of each intensity class."""
        counts = {"H": 0, "M": 0, "L": 0}
        for spec in self.specs():
            if spec is not None:
                counts[spec.intensity] += 1
        return counts


def _apps_in_levels(levels: str) -> List[str]:
    names = [
        name
        for name, spec in sorted(APPLICATION_CATALOG.items())
        if intensity_class(spec.mean_ipf) in set(levels)
    ]
    if not names:
        raise ValueError(f"no applications with intensity in {levels!r}")
    return sorted(names)


def make_category_workload(
    category: str, num_nodes: int, rng: np.random.Generator
) -> Workload:
    """Random workload of *num_nodes* applications from *category*.

    The category string lists the allowed intensity levels, e.g. ``"HL"``
    draws each node's application uniformly from all high- and
    low-intensity applications.
    """
    if category not in WORKLOAD_CATEGORIES:
        raise ValueError(
            f"unknown category {category!r}; expected one of {WORKLOAD_CATEGORIES}"
        )
    pool = _apps_in_levels(category)
    picks = rng.choice(len(pool), size=num_nodes)
    return Workload(tuple(pool[i] for i in picks), category=category)


def make_homogeneous_workload(app_name: str, num_nodes: int) -> Workload:
    """Every node runs the same application."""
    if app_name not in APPLICATION_CATALOG:
        raise ValueError(f"unknown application {app_name!r}")
    spec = APPLICATION_CATALOG[app_name]
    return Workload((app_name,) * num_nodes, category=spec.intensity)


def make_checkerboard_workload(
    app_a: str, app_b: str, width: int, height: int = 0
) -> Workload:
    """Alternate two applications in a checkerboard layout (§4, Fig 5/11)."""
    if height == 0:
        height = width
    for name in (app_a, app_b):
        if name not in APPLICATION_CATALOG:
            raise ValueError(f"unknown application {name!r}")
    names = [
        app_a if (x + y) % 2 == 0 else app_b
        for y in range(height)
        for x in range(width)
    ]
    return Workload(tuple(names), category="PAIR")


def make_workload_batch(
    count: int,
    num_nodes: int,
    rng: np.random.Generator,
    categories: Sequence[str] = WORKLOAD_CATEGORIES,
) -> List[Workload]:
    """A balanced batch of random workloads cycling through *categories*.

    This mirrors the paper's construction of its 875-workload set: equal
    representation per category, independent random draws within each.
    """
    workloads = []
    for i in range(count):
        category = categories[i % len(categories)]
        workloads.append(make_category_workload(category, num_nodes, rng))
    return workloads
