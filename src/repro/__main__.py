"""Command-line front end: run one NoC simulation and print its summary.

Examples::

    python -m repro --category H --nodes 16 --cycles 20000
    python -m repro --category HM --nodes 64 --controller central
    python -m repro --app mcf --nodes 256 --network buffered \
        --locality exponential --locality-param 1.0
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    CentralController,
    ControlParams,
    DistributedController,
    NoController,
    SimulationConfig,
    Simulator,
    StaticThrottleController,
    WORKLOAD_CATEGORIES,
    make_category_workload,
    make_homogeneous_workload,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cycle-level bufferless/buffered NoC simulation "
        "(SIGCOMM 2012 congestion-control reproduction)",
    )
    workload = parser.add_mutually_exclusive_group()
    workload.add_argument(
        "--category", choices=WORKLOAD_CATEGORIES, default=None,
        help="random workload category (default: H)",
    )
    workload.add_argument(
        "--app", help="homogeneous workload of one Table-1 application"
    )
    parser.add_argument("--nodes", type=int, default=16,
                        help="node count (square mesh; default 16)")
    parser.add_argument("--cycles", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--epoch", type=int, default=2_000,
                        help="controller/measurement period T")
    parser.add_argument("--network", choices=("bless", "buffered"),
                        default="bless")
    parser.add_argument("--topology", choices=("mesh", "torus"),
                        default="mesh")
    parser.add_argument(
        "--controller",
        choices=("none", "central", "distributed", "static"),
        default="none",
    )
    parser.add_argument("--static-rate", type=float, default=0.5,
                        help="rate for --controller static")
    parser.add_argument("--locality", choices=("uniform", "exponential",
                                               "powerlaw"), default="uniform")
    parser.add_argument("--locality-param", type=float, default=1.0)
    return parser


def _build_controller(args, network):
    if args.controller == "central":
        return CentralController(ControlParams(epoch=args.epoch))
    if args.controller == "distributed":
        return DistributedController(network)
    if args.controller == "static":
        return StaticThrottleController(args.static_rate)
    return NoController()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.app:
        workload = make_homogeneous_workload(args.app, args.nodes)
    else:
        rng = np.random.default_rng(args.seed)
        workload = make_category_workload(args.category or "H", args.nodes, rng)

    config = SimulationConfig(
        workload,
        seed=args.seed,
        epoch=args.epoch,
        network=args.network,
        topology=args.topology,
        locality=args.locality,
        locality_param=args.locality_param,
    )
    simulator = Simulator(config)
    # The distributed controller needs the network it instruments.
    simulator.controller = _build_controller(args, simulator.network)

    result = simulator.run(args.cycles)
    print(f"workload: {workload.category or 'custom'} "
          f"({', '.join(str(a) for a in workload.app_names[:8])}"
          f"{', ...' if workload.num_nodes > 8 else ''})")
    print(f"network:  {args.network} {args.topology} "
          f"{config.width}x{config.height}, controller={args.controller}")
    print(result.summary())
    print(f"system throughput: {result.system_throughput:.2f} insns/cycle   "
          f"weighted by node: {result.throughput_per_node:.3f} IPC/node")
    print(f"admission starvation: {result.mean_port_starvation:.3f}   "
          f"worst-case flit latency: {result.max_net_latency} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
