"""Command-line front end: run one NoC simulation and print its summary.

Examples::

    python -m repro --category H --nodes 16 --cycles 20000
    python -m repro --category HM --nodes 64 --controller central
    python -m repro --app mcf --nodes 256 --network buffered \
        --locality exponential --locality-param 1.0

The ``sweep`` subcommand runs a multi-point scaling sweep through
:mod:`repro.harness` — parallel workers and a content-addressed result
cache, so re-running only executes changed points::

    python -m repro sweep --sizes 16,64,256 --jobs 4 \
        --cache-dir ~/.cache/repro-sweeps

The ``profile`` subcommand runs the observability smoke benchmark — a
per-phase wall-clock breakdown plus throughput counters — and writes
the machine-readable baseline (``BENCH_pr3.json``)::

    python -m repro profile --nodes 64 --cycles 20000 --out BENCH_pr3.json
    python -m repro profile --overhead-check 5    # CI gate

Single runs take ``--profile`` (per-phase timing on the result) and
``--trace`` (sampled per-flit event tracing)::

    python -m repro --category H --nodes 16 --profile --trace
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    SimulationConfig,
    Simulator,
    WORKLOAD_CATEGORIES,
    make_category_workload,
    make_homogeneous_workload,
)
from repro.control.registry import (
    CONTROLLER_NAMES,
    CONTROLLERS,
    build_cli_controller,
)
from repro.guardrails import FaultConfig, GuardrailError
from repro.topology.registry import TOPOLOGIES, TOPOLOGY_NAMES

__all__ = ["main", "build_parser", "build_sweep_parser",
           "build_profile_parser", "build_chaos_parser", "chaos_main",
           "profile_main", "sweep_main", "CLI_NON_CONFIG_DESTS"]

#: CLI dests that deliberately are NOT SimulationConfig fields: they
#: select or construct config values (workload, geometry, run bounds,
#: fault shorthands) rather than pass through 1:1.  Checked against the
#: parser and the config dataclass by the CFG001 rule
#: (``repro.analysis.configdrift``); any other unmatched dest means a
#: config field got renamed out from under its flag.
CLI_NON_CONFIG_DESTS = frozenset({
    "category",          # workload construction (category -> Workload)
    "app",               # workload construction (app name -> Workload)
    "nodes",             # geometry shorthand -> width/height
    "cycles",            # run bound, not config state
    "static_rate",       # folded into the controller instance
    "watchdog",          # shorthand -> watchdog_window
    "timeout",           # run bound (wall-clock deadline)
    "link_faults",       # folded into FaultConfig -> faults
    "router_faults",     # folded into FaultConfig -> faults
    "transient_faults",  # folded into FaultConfig -> faults
    "fault_seed",        # folded into FaultConfig -> faults
    "chaos_script",      # campaign JSON file -> ChaosConfig -> chaos
    "controller_domains",  # folded into the hierarchical controller
    "controller_mode",     # folded into the hierarchical controller
    "list_controllers",  # registry listing, exits before any run
    "list_topologies",   # registry listing, exits before any run
})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cycle-level bufferless/buffered NoC simulation "
        "(SIGCOMM 2012 congestion-control reproduction)",
    )
    workload = parser.add_mutually_exclusive_group()
    workload.add_argument(
        "--category", choices=WORKLOAD_CATEGORIES, default=None,
        help="random workload category (default: H)",
    )
    workload.add_argument(
        "--app", help="homogeneous workload of one Table-1 application"
    )
    parser.add_argument("--nodes", type=int, default=16,
                        help="node count (square mesh; default 16)")
    parser.add_argument("--cycles", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--epoch", type=int, default=2_000,
                        help="controller/measurement period T")
    parser.add_argument("--network", choices=("bless", "buffered", "hybrid"),
                        default="bless")
    parser.add_argument(
        "--backend", choices=("numpy", "native"), default="numpy",
        help="hot-path backend: pure-numpy reference or compiled C kernels "
             "(bit-identical; requires a C compiler on first use)",
    )
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES,
                        default="mesh")
    parser.add_argument(
        "--depth", type=int, default=0,
        help="3D topologies: z dimension (0 = infer a cube)",
    )
    parser.add_argument(
        "--chiplet-tile", type=int, default=4, metavar="EDGE",
        help="chiplet topology: cluster edge length (default 4)",
    )
    parser.add_argument(
        "--express-stride", type=int, default=4, metavar="HOPS",
        help="express topology: skip-link span (default 4)",
    )
    parser.add_argument(
        "--controller",
        choices=CONTROLLER_NAMES,
        default="none",
    )
    parser.add_argument("--static-rate", type=float, default=0.5,
                        help="rate for --controller static")
    parser.add_argument(
        "--controller-domains", type=int, default=0, metavar="N",
        help="hierarchical controller: control-domain count "
             "(0 = the topology's natural partition)",
    )
    parser.add_argument(
        "--controller-mode", choices=("global", "local"), default="global",
        help="hierarchical controller: throttle against the global mean "
             "IPF or each domain's local mean",
    )
    parser.add_argument(
        "--list-controllers", action="store_true",
        help="print the controller registry table and exit",
    )
    parser.add_argument(
        "--list-topologies", action="store_true",
        help="print the topology registry table and exit",
    )
    parser.add_argument("--locality", choices=("uniform", "exponential",
                                               "powerlaw"), default="uniform")
    parser.add_argument("--locality-param", type=float, default=1.0)
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--profile", action="store_true",
        help="time each simulated phase and print the breakdown",
    )
    obs.add_argument(
        "--trace", action="store_true",
        help="record sampled per-flit inject/hop/deflect/eject events",
    )
    obs.add_argument(
        "--trace-sample", type=float, default=1 / 16, metavar="FRACTION",
        help="fraction of packets traced (default 1/16)",
    )
    obs.add_argument(
        "--trace-capacity", type=int, default=65_536, metavar="EVENTS",
        help="trace ring-buffer size; oldest events overwritten "
             "(default 65536)",
    )
    guard = parser.add_argument_group("guardrails")
    guard.add_argument(
        "--check-invariants", action="store_true",
        help="verify the no-drop/eject-width/age-order invariants every cycle",
    )
    guard.add_argument(
        "--watchdog", type=int, default=0, metavar="WINDOW",
        help="fail fast after WINDOW cycles without ejection progress "
             "(0 = off)",
    )
    guard.add_argument(
        "--max-flit-age", type=int, default=0, metavar="CYCLES",
        help="fail fast when an in-flight flit exceeds this age (0 = off)",
    )
    guard.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the run",
    )
    faults = parser.add_argument_group("fault injection")
    faults.add_argument(
        "--link-faults", type=float, default=0.0, metavar="RATE",
        help="fraction of links failed permanently before the run",
    )
    faults.add_argument(
        "--router-faults", type=float, default=0.0, metavar="RATE",
        help="fraction of routers fail-stopped before the run",
    )
    faults.add_argument(
        "--transient-faults", type=float, default=0.0, metavar="RATE",
        help="per-link per-cycle probability of a one-cycle fault",
    )
    faults.add_argument("--fault-seed", type=int, default=0)
    faults.add_argument(
        "--chaos-script", default=None, metavar="PATH",
        help="JSON chaos campaign (ChaosConfig) applied mid-run; see "
             "examples/chaos_demo.json and 'python -m repro chaos'",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Scaling sweep through repro.harness: every "
        "(size x network) point as one cached, parallelizable job.",
    )
    parser.add_argument(
        "--sizes", default="16,64",
        help="comma-separated node counts (square meshes; default 16,64)",
    )
    parser.add_argument(
        "--networks", default="bless,bless-throttling,buffered",
        help="comma-separated variants from "
        "{bless, bless-throttling, buffered, hybrid}",
    )
    parser.add_argument("--cycles", type=int, default=8_000,
                        help="cycle budget per point (default 8000)")
    parser.add_argument("--category", default="H",
                        help="workload category (default H)")
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--epoch", type=int, default=1_200)
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES,
                        default="mesh")
    parser.add_argument("--locality", choices=("uniform", "exponential",
                                               "powerlaw"),
                        default="exponential")
    parser.add_argument("--locality-param", type=float, default=1.0)
    harness = parser.add_argument_group("harness")
    harness.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all cores)",
    )
    harness.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache; reruns skip cached points",
    )
    harness.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line on stderr",
    )
    return parser


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run one chaos campaign and report per-event recovery, "
        "availability, and flit-loss accounting.  Exits nonzero if any "
        "in-network flit was lost (the CI chaos smoke gate).",
    )
    parser.add_argument(
        "--script", default="examples/chaos_demo.json", metavar="PATH",
        help="JSON chaos campaign (default examples/chaos_demo.json)",
    )
    parser.add_argument("--nodes", type=int, default=16,
                        help="node count (square mesh; default 16)")
    parser.add_argument("--cycles", type=int, default=5_000)
    parser.add_argument("--category", choices=WORKLOAD_CATEGORIES,
                        default="H")
    parser.add_argument("--network", choices=("bless", "buffered", "hybrid"),
                        default="bless")
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES,
                        default="mesh")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--epoch", type=int, default=2_000)
    parser.add_argument(
        "--controller", choices=CONTROLLER_NAMES,
        default="none",
    )
    parser.add_argument("--static-rate", type=float, default=0.5)
    parser.add_argument(
        "--no-invariants", action="store_true",
        help="skip the per-cycle losslessness invariant checks "
             "(they are ON by default here, unlike plain runs)",
    )
    parser.add_argument(
        "--watchdog", type=int, default=2_000, metavar="WINDOW",
        help="progress-watchdog window in cycles, ON by default here "
             "so a wedged campaign trips instead of hanging (0 = off)",
    )
    return parser


def chaos_main(argv=None) -> int:
    from repro.chaos import ChaosConfig

    args = build_chaos_parser().parse_args(argv)
    try:
        with open(args.script, "r", encoding="utf-8") as handle:
            chaos = ChaosConfig.from_json(handle.read())
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"cannot load chaos script {args.script!r}: {exc}",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    workload = make_category_workload(args.category, args.nodes, rng)
    config = SimulationConfig(
        workload,
        seed=args.seed,
        epoch=args.epoch,
        network=args.network,
        topology=args.topology,
        chaos=chaos,
        check_invariants=not args.no_invariants,
        watchdog_window=args.watchdog,
    )
    simulator = Simulator(config)
    simulator.controller = _build_controller(args, simulator.network)
    try:
        result = simulator.run(args.cycles)
    except GuardrailError as error:
        print(f"guardrail abort: {error}", file=sys.stderr)
        return 2
    report = result.chaos
    print(f"chaos campaign: {args.script} on {args.category}/"
          f"{args.nodes}n/{args.network}, seed {args.seed}, "
          f"{args.cycles} cycles")
    for ev in report.events:
        target = ""
        if ev.kind.startswith("link"):
            target = f" ({ev.node}:{ev.port})"
        elif ev.kind.startswith("router"):
            target = f" ({ev.node})"
        if ev.skipped:
            status = f"skipped: {ev.reason}"
        elif ev.applied_cycle < 0:
            status = "never applied (beyond horizon?)"
        else:
            status = f"applied @{ev.applied_cycle}"
            if ev.reason:
                status += f" ({ev.reason})"
            if ev.recovery_cycles >= 0:
                status += f", recovered in {ev.recovery_cycles}cy"
        print(f"  @{ev.cycle:>6} {ev.kind:<16}{target:<9} {status}")
    print(f"report: {report.summary()}")
    print(f"flits: {result.injected_flits} injected, "
          f"{result.ejected_flits} ejected, "
          f"{result.in_flight_flits} in flight, "
          f"{report.orphaned_flits} orphaned pre-injection packet(s)")
    print(result.summary())
    if not result.flit_conservation_ok:
        lost = (result.injected_flits - result.ejected_flits
                - result.in_flight_flits)
        print(f"FLIT LOSS: {lost} in-network flit(s) unaccounted for",
              file=sys.stderr)
        return 1
    print("flit conservation OK (zero in-network loss)")
    return 0


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Observability smoke benchmark: per-phase wall-clock "
        "breakdown, throughput counters, and the BENCH_pr3.json baseline.",
    )
    parser.add_argument("--nodes", type=int, default=64,
                        help="node count (square mesh; default 64)")
    parser.add_argument("--cycles", type=int, default=20_000)
    parser.add_argument("--category", choices=WORKLOAD_CATEGORIES,
                        default="H")
    parser.add_argument("--network", choices=("bless", "buffered", "hybrid"),
                        default="bless")
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES,
                        default="mesh")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--epoch", type=int, default=2_000)
    parser.add_argument(
        "--trace", action="store_true",
        help="also enable flit tracing and report its event counts",
    )
    parser.add_argument("--trace-sample", type=float, default=1 / 16,
                        metavar="FRACTION")
    parser.add_argument(
        "--out", default="BENCH_pr3.json", metavar="PATH",
        help="benchmark JSON output path (default BENCH_pr3.json; "
             "'-' skips the file)",
    )
    parser.add_argument(
        "--overhead-check", type=float, default=None, metavar="PCT",
        help="also time the observability-disabled path against a plain "
             "run and exit 1 if the overhead exceeds PCT percent",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, metavar="N",
        help="timing repetitions per side of the overhead check "
             "(best-of; default 2)",
    )
    return parser


def profile_main(argv=None) -> int:
    from repro.observability.profile import run_profile, write_bench_json

    args = build_profile_parser().parse_args(argv)
    payload = run_profile(
        nodes=args.nodes,
        cycles=args.cycles,
        category=args.category,
        network=args.network,
        topology=args.topology,
        seed=args.seed,
        epoch=args.epoch,
        trace=args.trace,
        trace_sample=args.trace_sample,
        overhead_check=args.overhead_check,
        repeats=args.repeats,
    )
    cfg = payload["config"]
    print(f"profile: {cfg['nodes']} nodes, {cfg['cycles']} cycles, "
          f"{cfg['category']}/{cfg['network']}/{cfg['topology']}, "
          f"seed {cfg['seed']}")
    print(f"  {payload['cycles_per_sec']:,.0f} cycles/s   "
          f"{payload['flits_per_sec']:,.0f} flits/s   "
          f"wall {payload['wall_seconds']:.3f}s")
    print()
    print("phase         seconds    share")
    for name, secs in sorted(
        payload["phase_seconds"].items(), key=lambda kv: -kv[1]
    ):
        share = payload["phase_shares"].get(name, 0.0)
        print(f"{name:<12} {secs:>8.4f}   {share:>5.1%}")
    if payload["trace"] is not None:
        tr = payload["trace"]
        counts = ", ".join(
            f"{n} {c}" for n, c in tr["event_counts"].items()
        )
        print(f"\ntrace: {tr['recorded']} events recorded "
              f"({tr['dropped']} dropped, sample={tr['sample']:g}): {counts}")
    if args.out != "-":
        path = write_bench_json(args.out, payload)
        print(f"\nwrote {path}")
    if payload["overhead_pct"] is not None:
        print(f"\noverhead check: plain "
              f"{payload['baseline_cycles_per_sec']:,.0f} cycles/s, "
              f"observability disabled "
              f"{payload['tracing_disabled_cycles_per_sec']:,.0f} cycles/s "
              f"-> {payload['overhead_pct']:+.2f}% "
              f"(limit {payload['overhead_limit_pct']:g}%)")
        if not payload["overhead_ok"]:
            print("overhead check FAILED", file=sys.stderr)
            return 1
        print("overhead check OK")
    return 0


def sweep_main(argv=None) -> int:
    from repro.experiments.sweeps import scaling_sweep
    from repro.harness import ResultCache, default_jobs, resolve_jobs

    args = build_sweep_parser().parse_args(argv)
    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s)
    except ValueError:
        print(f"invalid --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    networks = tuple(n for n in args.networks.split(",") if n)
    known = {"bless", "bless-throttling", "buffered", "hybrid"}
    if not sizes or not networks or set(networks) - known:
        print(f"invalid --sizes/--networks ({args.sizes!r}, "
              f"{args.networks!r})", file=sys.stderr)
        return 2
    jobs = default_jobs() if args.jobs is None else resolve_jobs(args.jobs)
    import os
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache = ResultCache(cache_dir) if cache_dir else None

    import time
    start = time.perf_counter()
    data = scaling_sweep(
        sizes,
        lambda n: args.cycles,
        category=args.category,
        networks=networks,
        locality=args.locality,
        locality_param=args.locality_param,
        epoch=args.epoch,
        seed=args.seed,
        topology=args.topology,
        jobs=jobs,
        cache=cache,
        progress=not args.no_progress,
    )
    wall = time.perf_counter() - start

    from repro.experiments.tables import format_table
    for name in networks:
        rows = [
            (size, res.throughput_per_node, res.avg_net_latency,
             res.network_utilization, res.mean_starvation)
            for size, res in data[name]
            if res is not None
        ]
        print(f"\n{name} ({args.category}, {args.locality}, "
              f"epoch {args.epoch}):")
        print(format_table(
            ["cores", "IPC/node", "latency", "util", "starvation"], rows
        ))
    total = len(sizes) * len(networks)
    hits = cache.hits if cache is not None else 0
    print(f"\nharness: {total} jobs, {hits} cache hits, "
          f"{total - hits} executed, wall {wall:.2f}s, workers {jobs}")
    if cache is not None:
        print(f"cache: {cache_dir} ({len(cache)} entries)")
    return 0


def _list_controllers() -> None:
    width = max(len(name) for name in CONTROLLERS)
    rwidth = max(len(e.recipe) for e in CONTROLLERS.values())
    print(f"{'controller':<{width}}  {'recipe':<{rwidth}}  description")
    for entry in CONTROLLERS.values():
        print(f"{entry.name:<{width}}  {entry.recipe:<{rwidth}}  "
              f"{entry.description}")


def _list_topologies() -> None:
    width = max(len("topology"), *(len(name) for name in TOPOLOGIES))
    print(f"{'topology':<{width}}  description")
    for entry in TOPOLOGIES.values():
        print(f"{entry.name:<{width}}  {entry.description}")


def _build_controller(args, network):
    # The chaos parser's namespace lacks the hierarchical flags; fall
    # back to their defaults there.
    return build_cli_controller(
        args.controller,
        network,
        epoch=args.epoch,
        static_rate=args.static_rate,
        domains=getattr(args, "controller_domains", 0),
        mode=getattr(args, "controller_mode", "global"),
    )


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    # ``run`` is an explicit alias for the default single-run command.
    if argv and argv[0] == "run":
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    if args.list_controllers or args.list_topologies:
        if args.list_controllers:
            _list_controllers()
        if args.list_topologies:
            if args.list_controllers:
                print()
            _list_topologies()
        return 0
    if args.app:
        workload = make_homogeneous_workload(args.app, args.nodes)
    else:
        rng = np.random.default_rng(args.seed)
        workload = make_category_workload(args.category or "H", args.nodes, rng)

    faults = None
    if args.link_faults or args.router_faults or args.transient_faults:
        faults = FaultConfig(
            link_fault_rate=args.link_faults,
            router_fault_rate=args.router_faults,
            transient_fault_rate=args.transient_faults,
            seed=args.fault_seed,
        )
    chaos = None
    if args.chaos_script:
        from repro.chaos import ChaosConfig
        try:
            with open(args.chaos_script, "r", encoding="utf-8") as handle:
                chaos = ChaosConfig.from_json(handle.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"cannot load chaos script {args.chaos_script!r}: {exc}",
                  file=sys.stderr)
            return 2
    config = SimulationConfig(
        workload,
        seed=args.seed,
        epoch=args.epoch,
        network=args.network,
        backend=args.backend,
        topology=args.topology,
        depth=args.depth,
        chiplet_tile=args.chiplet_tile,
        express_stride=args.express_stride,
        locality=args.locality,
        locality_param=args.locality_param,
        profile=args.profile,
        trace=args.trace,
        trace_sample=args.trace_sample,
        trace_capacity=args.trace_capacity,
        check_invariants=args.check_invariants,
        watchdog_window=args.watchdog,
        max_flit_age=args.max_flit_age,
        faults=faults,
        chaos=chaos,
    )
    simulator = Simulator(config)
    # The distributed controller needs the network it instruments.
    simulator.controller = _build_controller(args, simulator.network)

    try:
        result = simulator.run(args.cycles, deadline=args.timeout)
    except GuardrailError as error:
        print(f"guardrail abort: {error}", file=sys.stderr)
        snapshot = getattr(error, "snapshot", None)
        if snapshot:
            for key, value in snapshot.items():
                print(f"  {key}: {value}", file=sys.stderr)
        return 2
    print(f"workload: {workload.category or 'custom'} "
          f"({', '.join(str(a) for a in workload.app_names[:8])}"
          f"{', ...' if workload.num_nodes > 8 else ''})")
    geometry = f"{config.width}x{config.height}"
    if config.depth > 1:
        geometry += f"x{config.depth}"
    print(f"network:  {args.network} {args.topology} "
          f"{geometry}, controller={args.controller}")
    print(result.summary())
    if result.guardrails is not None and result.guardrails.active:
        print(f"guardrails: {result.guardrails.summary()}")
    if result.chaos is not None:
        print(f"chaos: {result.chaos.summary()}")
    print(f"system throughput: {result.system_throughput:.2f} insns/cycle   "
          f"weighted by node: {result.throughput_per_node:.3f} IPC/node")
    print(f"admission starvation: {result.mean_port_starvation:.3f}   "
          f"worst-case flit latency: {result.max_net_latency} cycles")
    if result.perf is not None and args.profile:
        print(f"\nprofile: {result.perf.table()}")
    if simulator.tracer is not None:
        print(f"\n{simulator.tracer.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
