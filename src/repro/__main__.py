"""Command-line front end: run one NoC simulation and print its summary.

Examples::

    python -m repro --category H --nodes 16 --cycles 20000
    python -m repro --category HM --nodes 64 --controller central
    python -m repro --app mcf --nodes 256 --network buffered \
        --locality exponential --locality-param 1.0
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    CentralController,
    ControlParams,
    DistributedController,
    NoController,
    SimulationConfig,
    Simulator,
    StaticThrottleController,
    WORKLOAD_CATEGORIES,
    make_category_workload,
    make_homogeneous_workload,
)
from repro.guardrails import FaultConfig, GuardrailError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cycle-level bufferless/buffered NoC simulation "
        "(SIGCOMM 2012 congestion-control reproduction)",
    )
    workload = parser.add_mutually_exclusive_group()
    workload.add_argument(
        "--category", choices=WORKLOAD_CATEGORIES, default=None,
        help="random workload category (default: H)",
    )
    workload.add_argument(
        "--app", help="homogeneous workload of one Table-1 application"
    )
    parser.add_argument("--nodes", type=int, default=16,
                        help="node count (square mesh; default 16)")
    parser.add_argument("--cycles", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--epoch", type=int, default=2_000,
                        help="controller/measurement period T")
    parser.add_argument("--network", choices=("bless", "buffered"),
                        default="bless")
    parser.add_argument("--topology", choices=("mesh", "torus"),
                        default="mesh")
    parser.add_argument(
        "--controller",
        choices=("none", "central", "distributed", "static"),
        default="none",
    )
    parser.add_argument("--static-rate", type=float, default=0.5,
                        help="rate for --controller static")
    parser.add_argument("--locality", choices=("uniform", "exponential",
                                               "powerlaw"), default="uniform")
    parser.add_argument("--locality-param", type=float, default=1.0)
    guard = parser.add_argument_group("guardrails")
    guard.add_argument(
        "--check-invariants", action="store_true",
        help="verify the no-drop/eject-width/age-order invariants every cycle",
    )
    guard.add_argument(
        "--watchdog", type=int, default=0, metavar="WINDOW",
        help="fail fast after WINDOW cycles without ejection progress "
             "(0 = off)",
    )
    guard.add_argument(
        "--max-flit-age", type=int, default=0, metavar="CYCLES",
        help="fail fast when an in-flight flit exceeds this age (0 = off)",
    )
    guard.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the run",
    )
    faults = parser.add_argument_group("fault injection")
    faults.add_argument(
        "--link-faults", type=float, default=0.0, metavar="RATE",
        help="fraction of links failed permanently before the run",
    )
    faults.add_argument(
        "--router-faults", type=float, default=0.0, metavar="RATE",
        help="fraction of routers fail-stopped before the run",
    )
    faults.add_argument(
        "--transient-faults", type=float, default=0.0, metavar="RATE",
        help="per-link per-cycle probability of a one-cycle fault",
    )
    faults.add_argument("--fault-seed", type=int, default=0)
    return parser


def _build_controller(args, network):
    if args.controller == "central":
        return CentralController(ControlParams(epoch=args.epoch))
    if args.controller == "distributed":
        return DistributedController(network)
    if args.controller == "static":
        return StaticThrottleController(args.static_rate)
    return NoController()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.app:
        workload = make_homogeneous_workload(args.app, args.nodes)
    else:
        rng = np.random.default_rng(args.seed)
        workload = make_category_workload(args.category or "H", args.nodes, rng)

    faults = None
    if args.link_faults or args.router_faults or args.transient_faults:
        faults = FaultConfig(
            link_fault_rate=args.link_faults,
            router_fault_rate=args.router_faults,
            transient_fault_rate=args.transient_faults,
            seed=args.fault_seed,
        )
    config = SimulationConfig(
        workload,
        seed=args.seed,
        epoch=args.epoch,
        network=args.network,
        topology=args.topology,
        locality=args.locality,
        locality_param=args.locality_param,
        check_invariants=args.check_invariants,
        watchdog_window=args.watchdog,
        max_flit_age=args.max_flit_age,
        faults=faults,
    )
    simulator = Simulator(config)
    # The distributed controller needs the network it instruments.
    simulator.controller = _build_controller(args, simulator.network)

    try:
        result = simulator.run(args.cycles, deadline=args.timeout)
    except GuardrailError as error:
        print(f"guardrail abort: {error}", file=sys.stderr)
        snapshot = getattr(error, "snapshot", None)
        if snapshot:
            for key, value in snapshot.items():
                print(f"  {key}: {value}", file=sys.stderr)
        return 2
    print(f"workload: {workload.category or 'custom'} "
          f"({', '.join(str(a) for a in workload.app_names[:8])}"
          f"{', ...' if workload.num_nodes > 8 else ''})")
    print(f"network:  {args.network} {args.topology} "
          f"{config.width}x{config.height}, controller={args.controller}")
    print(result.summary())
    if result.guardrails is not None and result.guardrails.active:
        print(f"guardrails: {result.guardrails.summary()}")
    print(f"system throughput: {result.system_throughput:.2f} insns/cycle   "
          f"weighted by node: {result.throughput_per_node:.3f} IPC/node")
    print(f"admission starvation: {result.mean_port_starvation:.3f}   "
          f"worst-case flit latency: {result.max_net_latency} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
