"""Closed-loop core model.

Abstracts the paper's out-of-order cores (Table 2: 3-wide issue, at most
one memory instruction per cycle, 128-entry instruction window) to their
network-visible behavior:

- a core retires up to ``issue_width`` instructions per cycle while it
  is not stalled;
- after every miss gap (IPF x flits-per-miss retired instructions,
  sampled from the node's application model) the core takes an L1 miss
  and injects a request packet addressed by the data-locality model;
- the core *stalls* when

  * the **instruction window** is full: execution can run at most
    ``window_size`` instructions past the issue point of the *oldest*
    incomplete miss — in-order retirement means one straggling reply
    (e.g. a deflected flit) blocks the window even when newer replies
    have arrived, the latency-tail sensitivity ("stall time
    criticality") that makes congestion expensive at the application
    level; or
  * all **MSHRs** are busy (``mshr_limit`` outstanding misses); or
  * the NI request queue is full (backpressure).

The stall rules are the self-throttling property of §3.1: "a thread
running on a core can only inject a relatively small number of requests
into the network before stalling to wait for replies".  They close the
loop between network service and presented load, which is what prevents
congestion collapse and what the congestion-control mechanism exploits.
"""

from __future__ import annotations

import numpy as np

from repro.network.flit import SEQ_RING

__all__ = ["CoreArray"]


class CoreArray:
    """Vectorized model of one core per node.

    Parameters
    ----------
    behavior:
        An application-behavior array (``repro.traffic.applications``)
        providing per-node miss-gap samples and the active-node mask.
    locality:
        Destination sampler mapping miss sources to shared-cache slices.
    network:
        The NoC model receiving request packets.
    """

    def __init__(
        self,
        behavior,
        locality,
        network,
        rng: np.random.Generator,
        issue_width: int = 3,
        window_size: int = 128,
        mshr_limit: int = 16,
        request_flits: int = 1,
        reply_flits: int = 2,
    ):
        if mshr_limit < 1:
            raise ValueError("mshr_limit must be positive")
        if mshr_limit > SEQ_RING // 2:
            raise ValueError(f"mshr_limit must be <= {SEQ_RING // 2}")
        self.behavior = behavior
        self.locality = locality
        self.network = network
        self.rng = rng
        self.issue_width = issue_width
        self.window_size = window_size
        self.mshr_limit = mshr_limit
        self.request_flits = request_flits
        self.reply_flits = reply_flits
        self.num_nodes = behavior.num_nodes
        self.active = behavior.active.copy()

        n = self.num_nodes
        self.retired = np.zeros(n, dtype=np.float64)
        self.misses_issued = np.zeros(n, dtype=np.int64)
        # Per-miss bookkeeping, indexed by miss number mod SEQ_RING.
        self._issue_pos = np.zeros((n, SEQ_RING), dtype=np.float64)
        self._recv = np.zeros((n, SEQ_RING), dtype=np.int16)
        self._complete = np.zeros((n, SEQ_RING), dtype=bool)
        self._issued = np.zeros(n, dtype=np.int64)  # misses issued
        self._completed = np.zeros(n, dtype=np.int64)  # packets finished
        self._head = np.zeros(n, dtype=np.int64)  # oldest incomplete miss
        self._head_dirty = False
        self._node_ids = np.arange(n, dtype=np.int64)

        gaps = np.full(n, np.inf)
        act = np.flatnonzero(self.active)
        gaps[act] = behavior.sample_gap(act, rng, initial=True)
        self._insns_until_miss = gaps

        # Epoch counters read and reset by the congestion controller.
        self.epoch_insns = np.zeros(n, dtype=np.float64)
        self.epoch_flits = np.zeros(n, dtype=np.int64)
        self.stall_cycles = np.zeros(n, dtype=np.int64)
        self.window_stall_cycles = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> np.ndarray:
        """Misses issued but not yet fully answered (MSHRs in use)."""
        return self._issued - self._completed

    def step(self, cycle: int) -> None:
        """Advance every core by one cycle."""
        # Advance past completed packets at the window head (bounded
        # sweep; anything left continues next cycle).
        if self._head_dirty:
            for _ in range(4):
                can = (self._head < self._issued) & self._complete[
                    self._node_ids, self._head % SEQ_RING
                ]
                if not can.any():
                    self._head_dirty = False
                    break
                self._head += can

        outstanding = self.outstanding
        has_inflight = self._head < self._issued
        head_pos = self._issue_pos[self._node_ids, self._head % SEQ_RING]
        # Instructions the window still admits past the oldest miss.
        window_room = np.where(
            has_inflight, head_pos + self.window_size - self.retired, np.inf
        )
        mshr_full = outstanding >= self.mshr_limit
        backpressure = self.network.request_backpressure()
        stalled = mshr_full | backpressure | (window_room <= 0)
        run = self.active & ~stalled
        self.stall_cycles += self.active & stalled
        self.window_stall_cycles += self.active & (window_room <= 0)

        adv = np.where(
            run,
            np.minimum(
                self.issue_width,
                np.minimum(np.maximum(self._insns_until_miss, 0.0), window_room),
            ),
            0.0,
        )
        self.retired += adv
        self.epoch_insns += adv
        self._insns_until_miss -= adv

        missers = run & (self._insns_until_miss <= 0)
        nodes = np.flatnonzero(missers)
        if nodes.size == 0:
            return
        self._issue_misses(nodes, cycle)

    def _issue_misses(self, nodes: np.ndarray, cycle: int) -> None:
        """Issue one L1-miss request per node in *nodes*.

        Shared tail of :meth:`step`: also called by the native backend
        (which computes the misser set in C but must draw destinations
        and gaps from the same RNG streams, in the same order, as the
        pure-numpy path).
        """
        dest = self.locality.sample(nodes, self.rng)
        seq = (self._issued[nodes] % SEQ_RING).astype(np.int64)
        ok = self.network.enqueue_requests(
            nodes, dest, self.request_flits, cycle=cycle, seq=seq
        )
        accepted = nodes[ok]
        seq = seq[ok]
        self._issue_pos[accepted, seq] = self.retired[accepted]
        self._recv[accepted, seq] = 0
        self._complete[accepted, seq] = False
        self._issued[accepted] += 1
        self.misses_issued[accepted] += 1
        self.epoch_flits[accepted] += self.request_flits + self.reply_flits
        self._insns_until_miss[accepted] = self.behavior.sample_gap(
            accepted, self.rng
        )
        # Rejected misses (request queue full) retry naturally: the gap
        # stays at zero and backpressure stalls the core.

    def on_reply_flits(self, nodes: np.ndarray, seqs: np.ndarray) -> None:
        """Account reply flits delivered to their requesters this cycle.

        With eject width > 1 a node may receive several flits of the
        same packet in one cycle, so accumulation must tolerate
        duplicate (node, seq) pairs.
        """
        if nodes.size == 0:
            return
        np.add.at(self._recv, (nodes, seqs), 1)
        key = nodes * SEQ_RING + seqs
        uniq = np.unique(key)
        u_nodes, u_seqs = uniq // SEQ_RING, uniq % SEQ_RING
        finished = (self._recv[u_nodes, u_seqs] >= self.reply_flits) & ~self._complete[
            u_nodes, u_seqs
        ]
        done_nodes = u_nodes[finished]
        self._complete[done_nodes, u_seqs[finished]] = True
        # A node can finish several packets in one cycle (eject width > 1),
        # so the increment must accumulate over duplicate indices.
        np.add.at(self._completed, done_nodes, 1)
        if done_nodes.size:
            self._head_dirty = True

    # ------------------------------------------------------------------
    # Chaos fail-stop interface
    # ------------------------------------------------------------------
    def halt_node(self, node: int) -> None:
        """Fail-stop one core: it retires nothing and issues no misses."""
        self.active[node] = False
        self._insns_until_miss[node] = np.inf

    def revive_node(self, node: int) -> None:
        """Restart a halted core after its router recovers.

        The miss gap is re-sampled in event order from the shared
        destination stream, so revival stays deterministic for a fixed
        chaos schedule.  Nodes that never ran an application stay idle.
        """
        if not self.behavior.active[node]:
            return
        self.active[node] = True
        gap = self.behavior.sample_gap(
            np.asarray([node], dtype=np.int64), self.rng
        )
        self._insns_until_miss[node] = float(gap[0])

    # ------------------------------------------------------------------
    # Congestion-controller interface
    # ------------------------------------------------------------------
    def measured_ipf(self, floor_flits: int = 1) -> np.ndarray:
        """Instructions-per-Flit over the current epoch (§4).

        Nodes that injected no traffic report an effectively infinite
        IPF (they are CPU-bound for the epoch).
        """
        flits = np.maximum(self.epoch_flits, floor_flits)
        ipf = self.epoch_insns / flits
        ipf[self.epoch_flits == 0] = np.inf
        return ipf

    def reset_epoch(self) -> None:
        """Start a new measurement epoch (controller period T)."""
        self.epoch_insns[:] = 0.0
        self.epoch_flits[:] = 0

    # ------------------------------------------------------------------
    def ipc(self, cycles: int) -> np.ndarray:
        """Per-node instructions per cycle over *cycles* elapsed."""
        if cycles <= 0:
            return np.zeros(self.num_nodes)
        return self.retired / cycles

    def outstanding_total(self) -> int:
        return int(self.outstanding.sum())
