"""Processor-side models: closed-loop cores and the shared-cache memory system."""

from repro.cpu.core import CoreArray
from repro.cpu.memory import MemorySystem

__all__ = ["CoreArray", "MemorySystem"]
