"""Shared-cache service model.

The paper's memory system (Table 2): private L1s whose misses enter the
network, and a shared, distributed, *perfect* L2 — every request is a hit
at the addressed slice.  A request flit ejected at its home slice is
serviced after a fixed L2 latency, producing a data-reply packet
(``reply_flits`` flits, 32-byte block over 128-bit links = 2 flits)
addressed back to the requester.  Replies are enqueued at the serving
node's response queue and are never throttled (§5, "how to throttle").
"""

from __future__ import annotations

import numpy as np

__all__ = ["MemorySystem"]


class MemorySystem:
    """Schedules reply packets for serviced requests."""

    def __init__(self, network, l2_latency: int = 6, reply_flits: int = 2):
        if l2_latency < 1:
            raise ValueError("l2 latency must be at least 1 cycle")
        self.network = network
        self.l2_latency = l2_latency
        self.reply_flits = reply_flits
        self._ring = [None] * l2_latency
        self._cursor = 0
        # Replies that found a full response queue and must retry.
        self._pending_server = np.zeros(0, dtype=np.int64)
        self._pending_requester = np.zeros(0, dtype=np.int64)
        self._pending_seq = np.zeros(0, dtype=np.int64)
        self.requests_serviced = 0
        self.replies_issued = 0

    def pending_replies(self) -> int:
        """Replies scheduled or retrying but not yet queued (for checks)."""
        in_ring = sum(s[0].size for s in self._ring if s is not None)
        return in_ring + self._pending_server.size

    def on_requests(
        self, servers: np.ndarray, requesters: np.ndarray, seqs: np.ndarray
    ) -> None:
        """Record ejected request flits; replies emerge after the L2 latency.

        ``seqs`` are the requests' packet tags, echoed back on the
        replies so requesters can match them to their misses.
        """
        if servers.size == 0:
            return
        self.requests_serviced += servers.size
        slot = (self._cursor + self.l2_latency - 1) % self.l2_latency
        entry = (
            np.asarray(servers, dtype=np.int64).copy(),
            np.asarray(requesters, dtype=np.int64).copy(),
            np.asarray(seqs, dtype=np.int64).copy(),
        )
        prev = self._ring[slot]
        if prev is None:
            self._ring[slot] = entry
        else:
            self._ring[slot] = tuple(
                np.concatenate([a, b]) for a, b in zip(prev, entry)
            )

    # ------------------------------------------------------------------
    # Chaos fail-stop interface
    # ------------------------------------------------------------------
    def pending_for_server(self, node: int) -> int:
        """Scheduled or retrying replies that will inject from *node*."""
        count = int((self._pending_server == node).sum())
        for entry in self._ring:
            if entry is not None:
                count += int((entry[0] == node).sum())
        return count

    def migrate_server(self, old: int, new: int) -> None:
        """Re-home not-yet-issued replies after an L2 slice re-stripes."""
        for entry in self._ring:
            if entry is not None:
                entry[0][entry[0] == old] = new
        self._pending_server[self._pending_server == old] = new

    def drop_requester(self, node: int) -> int:
        """Discard replies addressed to *node* (fail-stopped requester).

        Returns the number of reply packets dropped.  Their flits were
        never injected, so network flit conservation is unaffected; the
        dead core will never wait on them.
        """
        dropped = 0
        for i, entry in enumerate(self._ring):
            if entry is None:
                continue
            keep = entry[1] != node
            if not keep.all():
                dropped += int((~keep).sum())
                self._ring[i] = (
                    tuple(a[keep] for a in entry) if keep.any() else None
                )
        keep = self._pending_requester != node
        if not keep.all():
            dropped += int((~keep).sum())
            self._pending_server = self._pending_server[keep]
            self._pending_requester = self._pending_requester[keep]
            self._pending_seq = self._pending_seq[keep]
        return dropped

    def step(self, cycle: int) -> None:
        """Enqueue due replies; a full response queue defers to next cycle."""
        due = self._ring[self._cursor]
        self._ring[self._cursor] = None
        self._cursor = (self._cursor + 1) % self.l2_latency
        if due is None and self._pending_server.size == 0:
            return
        if due is not None:
            servers = np.concatenate([self._pending_server, due[0]])
            requesters = np.concatenate([self._pending_requester, due[1]])
            seqs = np.concatenate([self._pending_seq, due[2]])
        else:
            servers = self._pending_server
            requesters = self._pending_requester
            seqs = self._pending_seq
        if servers.size == 0:
            return
        # A node enqueues at most one reply per cycle: service the first
        # occurrence of each server, defer the rest.
        first = np.zeros(servers.size, dtype=bool)
        _, first_idx = np.unique(servers, return_index=True)
        first[first_idx] = True
        attempt_s, attempt_r = servers[first], requesters[first]
        attempt_q = seqs[first]
        ok = self.network.enqueue_replies(
            attempt_s, attempt_r, self.reply_flits, cycle=cycle, seq=attempt_q
        )
        self.replies_issued += int(ok.sum())
        failed = ~ok
        self._pending_server = np.concatenate([attempt_s[failed], servers[~first]])
        self._pending_requester = np.concatenate(
            [attempt_r[failed], requesters[~first]]
        )
        self._pending_seq = np.concatenate([attempt_q[failed], seqs[~first]])
