"""Deterministic random-number management.

Every stochastic component of the simulator (workload construction,
application phase behavior, destination sampling, ...) draws from its own
named child generator derived from a single root seed.  This keeps runs
reproducible while letting components evolve independently: adding a draw
to one component does not perturb the stream seen by another.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

__all__ = ["child_rng", "named_rngs"]


def child_rng(seed: int, name: str) -> np.random.Generator:
    """Return a generator for component *name* derived from *seed*.

    The same ``(seed, name)`` pair always yields an identical stream, and
    distinct names yield statistically independent streams.
    """
    name_key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    seq = np.random.SeedSequence([seed, *name_key.tolist()])
    return np.random.default_rng(seq)


def named_rngs(seed: int, names: Iterable[str]) -> Dict[str, np.random.Generator]:
    """Build one child generator per name in *names*."""
    return {name: child_rng(seed, name) for name in names}
