"""repro.analysis: simulation-safety static analyzer.

AST-based, stdlib-only lints for the invariants this reproduction's
correctness rests on — determinism of the cycle-level simulation,
stability of the cached-result schema, and the phase/config contracts —
enforced *before* any cycle executes instead of after a violation has
poisoned a sweep.  Run it as::

    python -m repro.analysis src/                 # whole tree
    python -m repro.analysis --format json src/   # machine-readable
    python -m repro.analysis --select DET001 file.py

Rules (see DESIGN.md §S22 and §S27 for the full semantics):

========== ==========================================================
CACHE001   SimulationConfig reads reachable from JobSpec.canonical()
CFG001     config dataclass / CLI flags / JobSpec canonical keys sync
DET001     no wall-clock/entropy sources in simulation hot paths
DET002     no dict/set iteration without ``sorted(...)`` in hot paths
DET003     RNG streams must come from :func:`repro.rng.child_rng`
DET004     numpy sort/argsort in hot paths must pass ``kind="stable"``
NATIVE001  CFG_*/CTR_* Python mirrors match the kernels.c enums
NATIVE002  pointer-table slot names/order/count match the PT_* enum
NATIVE003  ``# repro: c-mirror[NAME]`` constants equal the C #define
PHASE001   pipeline phases only write declared simulator attributes
REG001     CLI choices / registry tables / recipe validators coherent
RNG001     child_rng labels are unique literals across SIM_PACKAGES
RNG002     no RNG draw executes under a backend-conditional branch
SCHEMA001  serialized-result field set pinned to a version-keyed hash
========== ==========================================================

Suppress a deliberate violation inline with ``# repro: noqa[RULE]``;
opt a file outside ``repro/{network,sim,cpu,control,traffic}`` into the
hot-path rules with a ``# repro: analysis-scope=sim`` header comment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.cachekey import Cache001KeyCompleteness
from repro.analysis.configdrift import Cfg001ConfigDrift
from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    SIM_PACKAGES,
    run_analysis,
)
from repro.analysis.determinism import (
    Det001WallClock,
    Det002UnsortedIteration,
    Det003RngProvenance,
    Det004UnstableSort,
)
from repro.analysis.nativecontract import (
    Native001EnumMirror,
    Native002SlotTable,
    Native003DefineMirror,
)
from repro.analysis.phasecontract import Phase001PhaseWrites
from repro.analysis.registry import Reg001RegistryCoherence
from repro.analysis.rnglineage import (
    Rng001LabelLineage,
    Rng002BackendConditionalDraw,
)
from repro.analysis.sarif import sarif_document, to_sarif
from repro.analysis.schema import Schema001ResultFieldHash, field_hash

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "SIM_PACKAGES",
    "analyze",
    "field_hash",
    "run_analysis",
    "sarif_document",
    "to_sarif",
]


def all_rules() -> Tuple[Rule, ...]:
    """Fresh instances of every registered rule, ordered by id."""
    rules: Tuple[Rule, ...] = (
        Cache001KeyCompleteness(),
        Cfg001ConfigDrift(),
        Det001WallClock(),
        Det002UnsortedIteration(),
        Det003RngProvenance(),
        Det004UnstableSort(),
        Native001EnumMirror(),
        Native002SlotTable(),
        Native003DefineMirror(),
        Phase001PhaseWrites(),
        Reg001RegistryCoherence(),
        Rng001LabelLineage(),
        Rng002BackendConditionalDraw(),
        Schema001ResultFieldHash(),
    )
    return rules


#: Default rule set (id-ordered); the CLI and tests run these.
ALL_RULES: Tuple[Rule, ...] = all_rules()

#: Every selectable rule id.
RULE_IDS: Tuple[str, ...] = tuple(rule.id for rule in ALL_RULES)


def analyze(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    exclude: Optional[Sequence[str]] = None,
    cache: Optional[AnalysisCache] = None,
) -> List[Finding]:
    """Run the full registered rule set over *paths*."""
    return run_analysis(
        paths, ALL_RULES, select=select, ignore=ignore,
        exclude=exclude, cache=cache,
    )
