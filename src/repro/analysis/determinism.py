"""Determinism rules (DET001-DET004).

The simulator's headline guarantee is bit-identical results for the same
:class:`~repro.harness.jobs.JobSpec` across serial runs, process pools,
and the on-disk result cache.  Three static properties protect it inside
the simulation hot paths (``repro/{network,sim,cpu,control,traffic}``):

DET001
    No wall-clock or entropy source: ``time.time()``, ``datetime.now()``,
    ``os.urandom()``, stdlib ``random`` module calls, ``numpy.random``
    module-level draws, and *unseeded* generator constructors.  One
    such call makes a result depend on when/where it ran.
DET002
    No iteration over ``dict``/``set`` views without an explicit
    ``sorted(...)``.  Python dict order is insertion order and set order
    is hash-dependent; arbitration and aggregation loops must pin their
    order explicitly so a refactor of construction order can never
    reorder simulation events.
DET003
    Every RNG stream must come from :func:`repro.rng.child_rng` so it
    derives from the run seed; ad-hoc ``numpy.random.default_rng(...)``
    constructors fragment the seed discipline (two components can end up
    sharing — or silently forking — a stream).
DET004
    No unstable ``sort``/``argsort``.  Numpy's default kind is an
    introsort whose tie order is implementation- and version-dependent;
    a simulation array full of tied sentinels (e.g. ``_KEY_MAX``) can
    therefore sort differently across numpy releases.  Every numpy
    ``sort``/``argsort`` in sim scope must pass ``kind="stable"`` (or
    ``"mergesort"``, its alias).  Python's ``sorted(...)``/``list.sort``
    are stable by language guarantee; method calls using the list-only
    ``key=``/``reverse=`` keywords are recognized as such.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    import_aliases,
)

__all__ = [
    "Det001WallClock",
    "Det002UnsortedIteration",
    "Det003RngProvenance",
    "Det004UnstableSort",
]


#: Exact dotted names that read a wall clock or an entropy pool.
_CLOCK_AND_ENTROPY = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Module prefixes where *any* call is an entropy draw.
_ENTROPY_PREFIXES: Tuple[str, ...] = ("random.", "secrets.")

#: ``numpy.random`` attributes that construct seeded machinery rather
#: than drawing from the hidden global stream.  Calls to anything else
#: under ``numpy.random`` are legacy global-state draws (DET001); calls
#: to these *without arguments* seed from the OS entropy pool (DET001);
#: calls to these *with* arguments are seeded but still bypass
#: ``repro.rng`` (DET003).
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)


def _canonical_call(
    node: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    name = dotted_name(node.func, aliases)
    if name is None:
        return None
    # ``import numpy as np`` resolves np.random.x; ``from numpy import
    # random as npr`` resolves npr.x through the alias map already.
    return name


class Det001WallClock(Rule):
    """Wall-clock and entropy sources inside simulation hot paths."""

    id = "DET001"
    summary = (
        "no wall-clock/entropy source (time.*, datetime.now, os.urandom, "
        "random.*, numpy.random global draws, unseeded constructors) in "
        "simulation hot paths"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sim_files():
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical_call(node, aliases)
            if name is None:
                continue
            if name in _CLOCK_AND_ENTROPY:
                yield source.finding(
                    self.id,
                    node,
                    f"call to {name}() in simulation code reads the wall "
                    "clock or an entropy pool; results must be a pure "
                    "function of the run seed (derive values from the "
                    "config instead)",
                )
            elif name.startswith(_ENTROPY_PREFIXES):
                yield source.finding(
                    self.id,
                    node,
                    f"call to {name}() draws from hidden global RNG state; "
                    "use a generator from repro.rng.child_rng(seed, name)",
                )
            elif name.startswith("numpy.random."):
                if name not in _SEEDED_CONSTRUCTORS:
                    yield source.finding(
                        self.id,
                        node,
                        f"call to {name}() draws from numpy's hidden global "
                        "stream; use a generator from "
                        "repro.rng.child_rng(seed, name)",
                    )
                elif not node.args and not node.keywords:
                    yield source.finding(
                        self.id,
                        node,
                        f"unseeded {name}() seeds from OS entropy; pass an "
                        "explicit seed (preferably via repro.rng.child_rng)",
                    )


_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _unordered_iterable(node: ast.AST) -> Optional[str]:
    """Describe *node* when it is an unordered dict/set iterable."""
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _VIEW_METHODS
        ):
            owner = dotted_name(func.value) or "<expr>"
            return f"{owner}.{func.attr}()"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    return None


class Det002UnsortedIteration(Rule):
    """dict/set iteration without sorted() in simulation hot paths."""

    id = "DET002"
    summary = (
        "iteration over dict views or sets must go through sorted(...) in "
        "simulation hot paths"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sim_files():
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                described = _unordered_iterable(candidate)
                if described is not None:
                    yield source.finding(
                        self.id,
                        candidate,
                        f"iteration over {described} has no pinned order; "
                        "wrap it in sorted(...) so simulation event order "
                        "cannot depend on insertion/hash order",
                    )


#: ``kind=`` values numpy documents as stable.
_STABLE_KINDS = frozenset({"stable", "mergesort"})

#: Keywords only the list signature accepts (``list.sort(key=, reverse=)``)
#: — their presence proves the receiver is not an ndarray.
_LIST_ONLY_KEYWORDS = frozenset({"key", "reverse"})

#: Module-level numpy entry points with a ``kind=`` parameter.
#: ``numpy.lexsort``/``numpy.sort_complex`` are always stable/fixed and
#: ``sorted`` is the stable builtin, so none of those are flagged.
_NUMPY_SORTS = frozenset({"numpy.sort", "numpy.argsort"})


def _stable_kind(node: ast.Call) -> Optional[bool]:
    """Whether the call pins a stable ``kind=``; None when absent."""
    for keyword in node.keywords:
        if keyword.arg == "kind":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return value.value in _STABLE_KINDS
            return False  # dynamic kind: cannot prove stability
    return None


class Det004UnstableSort(Rule):
    """Unstable sort/argsort calls in simulation hot paths."""

    id = "DET004"
    summary = (
        'numpy sort/argsort in simulation hot paths must pass kind="stable" '
        "(tie order of the default introsort is numpy-version-dependent)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sim_files():
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._sort_call(node, aliases)
            if target is None:
                continue
            stable = _stable_kind(node)
            if stable is True:
                continue
            problem = (
                "passes a non-stable kind=" if stable is False
                else "uses the default unstable introsort"
            )
            yield source.finding(
                self.id,
                node,
                f"{target} {problem}; tie order is numpy-version-dependent "
                'in simulation code — pass kind="stable" (suppress with '
                "noqa[DET004] only for proven non-ndarray receivers)",
            )

    @staticmethod
    def _sort_call(
        node: ast.Call, aliases: Dict[str, str]
    ) -> Optional[str]:
        """Describe *node* when it is a sort call DET004 polices."""
        name = _canonical_call(node, aliases)
        if name in _NUMPY_SORTS:
            return f"{name}()"
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in ("sort", "argsort"):
            return None
        if any(kw.arg in _LIST_ONLY_KEYWORDS for kw in node.keywords):
            return None  # list.sort(key=..., reverse=...): stable builtin
        owner = dotted_name(func.value) or "<expr>"
        return f"{owner}.{func.attr}()"


class Det003RngProvenance(Rule):
    """RNG constructors bypassing repro.rng in simulation hot paths."""

    id = "DET003"
    summary = (
        "RNG streams in simulation hot paths must come from "
        "repro.rng.child_rng, not ad-hoc numpy.random constructors"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sim_files():
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical_call(node, aliases)
            if name in _SEEDED_CONSTRUCTORS and (node.args or node.keywords):
                yield source.finding(
                    self.id,
                    node,
                    f"{name}(...) constructs an RNG stream outside "
                    "repro.rng; derive it with child_rng(seed, name) so "
                    "every stream is rooted in the run seed and component "
                    "streams stay independent",
                )
