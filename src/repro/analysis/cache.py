"""Warm-run cache keeping repeated analyzer invocations fast.

The obvious design — pickling each file's ``ast.Module`` — loses:
rebuilding a pickled AST's node objects costs ~2.5x a fresh
``ast.parse`` (the parser is C, unpickling is per-object Python), so a
"warm" run would be *slower* than a cold one.  What actually repeats
across pre-commit invocations is the whole-tree result, so the cache
stores two cheap layers instead:

* per file — ``path -> ((size, mtime_ns), sha256)``.  An unchanged stat
  key validates a file without even reading it; a changed stat with an
  unchanged hash (``touch``, checkout churn) refreshes the stat key.
* per run — a fingerprint over the ordered file digests plus the chosen
  rule ids maps to the run's findings.  When every file validates and
  the fingerprint matches, the findings replay with no parsing and no
  rule walks at all; any change falls back to a full (cold-speed) run.

This is sound because every rule is a pure function of the analyzed
files' bytes: same bytes, same rule set, same findings.  The store is
versioned by a schema tag and the Python minor version, writes are
atomic (``os.replace``) so a Ctrl-C mid-save never corrupts it, and a
corrupt or mismatched store degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding

__all__ = ["AnalysisCache"]

_SCHEMA = 2

_FindingRow = Tuple[str, int, int, str, str]


def _store_version() -> Tuple[int, int, int]:
    return (_SCHEMA, sys.version_info[0], sys.version_info[1])


class AnalysisCache:
    """Pickle-backed file-digest and findings-replay store."""

    def __init__(self, path: str):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._files: Dict[str, Tuple[Tuple[int, int], str]] = {}
        self._runs: Dict[str, List[_FindingRow]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != _store_version():
                return
            self._files = payload["files"]
            self._runs = payload["runs"]
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                KeyError, TypeError, ValueError, ImportError):
            self._files = {}
            self._runs = {}

    # -- per-file digests ------------------------------------------------
    def file_digest(self, path: str, stat: os.stat_result) -> str:
        """The sha256 of *path*, via the cache when it validates.

        An unchanged ``(size, mtime_ns)`` trusts the stored digest
        without reading the file; a changed stat re-hashes and either
        refreshes the stat key (content identical) or records the new
        digest (a miss).  Raises ``OSError`` if the file is unreadable.
        """
        stat_key = (stat.st_size, stat.st_mtime_ns)
        entry = self._files.get(path)
        if entry is not None and entry[0] == stat_key:
            self.hits += 1
            return entry[1]
        with open(path, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        if entry is not None and entry[1] == digest:
            self.hits += 1
        else:
            self.misses += 1
        self._files[path] = (stat_key, digest)
        self._dirty = True
        return digest

    # -- per-run findings ------------------------------------------------
    @staticmethod
    def run_fingerprint(
        digests: Sequence[Tuple[str, str]], rule_ids: Sequence[str]
    ) -> str:
        """Stable key for one (file set, rule set) analysis run."""
        hasher = hashlib.sha256()
        for rule_id in rule_ids:
            hasher.update(rule_id.encode("utf-8") + b"\n")
        hasher.update(b"--\n")
        for path, digest in digests:
            hasher.update(path.encode("utf-8") + b"\0" + digest.encode("utf-8"))

        return hasher.hexdigest()

    def get_run(self, fingerprint: str) -> Optional[List[Finding]]:
        rows = self._runs.get(fingerprint)
        if rows is None:
            return None
        return [
            Finding(path=p, line=line, col=col, rule=rule, message=message)
            for p, line, col, rule, message in rows
        ]

    def put_run(self, fingerprint: str, findings: Sequence[Finding]) -> None:
        self._runs[fingerprint] = [
            (f.path, f.line, f.col, f.rule, f.message) for f in findings
        ]
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {
            "version": _store_version(),
            "files": self._files,
            "runs": self._runs,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".analysis-cache-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        self._dirty = False
