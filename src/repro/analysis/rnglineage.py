"""RNG001–002: stream-lineage analysis for the seeded RNG tree.

Every random stream in the simulation descends from
:func:`repro.rng.child_rng`, which derives a substream from ``(seed,
label)``.  Two properties keep that tree trustworthy:

* **RNG001 — labels are unique literals.**  Two call sites spawning
  ``child_rng(seed, "arbitration")`` silently share a stream: the draws
  interleave by call order and the supposedly independent components
  become correlated.  Labels must be string literals (so the analyzer —
  and a human — can enumerate the tree) and globally unique across
  SIM_PACKAGES.  The one sanctioned duplicate shape is a *default-seed
  fallback* (``rng if rng is not None else child_rng(0, label)``), which
  deliberately mirrors the simulator-owned stream for standalone
  construction; those sites carry an explicit ``noqa``.
* **RNG002 — no draw is conditional on the backend.**  A draw executed
  under ``if config.backend == ...`` advances the stream on one backend
  but not the other, so every later draw diverges and the native
  equivalence sweep can never pass.  The rule builds a module-level
  call graph (``self.method`` / bare-function edges) so draws hidden
  one call away from the branch are still caught.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    import_aliases,
)

__all__ = ["Rng001LabelLineage", "Rng002BackendConditionalDraw"]

_CHILD_RNG = "repro.rng.child_rng"
#: numpy Generator methods that advance the stream when called.
_DRAW_METHODS = frozenset({
    "bytes", "binomial", "choice", "exponential", "geometric", "integers",
    "normal", "permutation", "permuted", "poisson", "random", "shuffle",
    "standard_normal", "uniform",
})
_BACKEND_NAMES = frozenset({"backend", "_backend"})


def _is_child_rng(call: ast.Call, aliases: Dict[str, str]) -> bool:
    name = dotted_name(call.func, aliases)
    return name == _CHILD_RNG or name == "child_rng"


def _label_arg(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _seed_arg(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


@dataclasses.dataclass(frozen=True)
class _LabelSite:
    path: str
    line: int
    col: int
    label: str
    #: ``child_rng(0, ...)`` — the default-seed fallback convention.
    default_seed: bool


class Rng001LabelLineage(Rule):
    """child_rng labels are unique string literals across sim scope."""

    id = "RNG001"
    summary = (
        "child_rng labels are unique string literals across SIM_PACKAGES"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        sites: List[_LabelSite] = []
        for source in project.sim_files():
            aliases = import_aliases(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_child_rng(node, aliases):
                    continue
                label = _label_arg(node)
                if label is None:
                    continue  # arity error; the call fails at runtime
                if not (
                    isinstance(label, ast.Constant)
                    and isinstance(label.value, str)
                ):
                    yield Finding(
                        path=source.path,
                        line=label.lineno,
                        col=label.col_offset + 1,
                        rule=self.id,
                        message=(
                            "child_rng label must be a string literal so "
                            "the stream tree is statically enumerable"
                        ),
                    )
                    continue
                seed = _seed_arg(node)
                sites.append(
                    _LabelSite(
                        path=source.path,
                        line=label.lineno,
                        col=label.col_offset + 1,
                        label=label.value,
                        default_seed=(
                            isinstance(seed, ast.Constant) and seed.value == 0
                        ),
                    )
                )
        by_label: Dict[str, List[_LabelSite]] = {}
        for site in sorted(sites, key=lambda s: (s.path, s.line, s.col)):
            by_label.setdefault(site.label, []).append(site)
        for label, group in sorted(by_label.items()):
            if len(group) < 2:
                continue
            yield from self._duplicate_findings(label, group)

    def _duplicate_findings(
        self, label: str, group: List[_LabelSite]
    ) -> Iterator[Finding]:
        seeded = [site for site in group if not site.default_seed]
        fallbacks = [site for site in group if site.default_seed]
        # Flag default-seed fallbacks whenever a seeded primary exists,
        # and all-but-the-first of the rest: the finding (and any noqa
        # acknowledging a deliberate mirror) lands on the fallback site.
        flagged: List[_LabelSite] = []
        if seeded:
            flagged.extend(seeded[1:])
            flagged.extend(fallbacks)
        else:
            flagged.extend(fallbacks[1:])
        primary = seeded[0] if seeded else fallbacks[0]
        for site in flagged:
            yield Finding(
                path=site.path,
                line=site.line,
                col=site.col,
                rule=self.id,
                message=(
                    f"duplicate child_rng label {label!r} (also spawned at "
                    f"{primary.path}:{primary.line}); duplicate labels "
                    "correlate supposedly independent streams"
                ),
            )


def _is_draw_call(call: ast.Call, aliases: Dict[str, str]) -> bool:
    """A call that advances an RNG stream directly."""
    if _is_child_rng(call, aliases):
        return True
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _DRAW_METHODS:
        receiver = func.value
        tail = (
            receiver.attr
            if isinstance(receiver, ast.Attribute)
            else receiver.id if isinstance(receiver, ast.Name) else ""
        )
        return "rng" in tail.lower()
    return False


def _local_callee(call: ast.Call) -> Optional[str]:
    """Qualified name of an intra-module callee, or ``None``.

    ``self.foo()`` inside class ``C`` resolves to ``C.foo`` (the caller
    supplies the class name); a bare ``foo()`` resolves to ``foo``.
    """
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return f"self.{func.attr}"
    return None


def _mentions_backend(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in _BACKEND_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BACKEND_NAMES:
            return True
    return False


class Rng002BackendConditionalDraw(Rule):
    """No RNG draw may execute conditionally on the backend choice."""

    id = "RNG002"
    summary = (
        "RNG draws never execute under a backend-dependent branch "
        "(streams must advance identically on every backend)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sim_files():
            aliases = import_aliases(source.tree)
            drawing = self._drawing_functions(source.tree, aliases)
            seen: Set[Finding] = set()
            for scope_name, func in self._functions(source.tree):
                for body in self._backend_branches(func):
                    for finding in self._draws_in(
                        source, aliases, drawing, scope_name, body
                    ):
                        # Nested backend-ifs walk overlapping bodies;
                        # report each draw site once.
                        if finding not in seen:
                            seen.add(finding)
                            yield finding

    @staticmethod
    def _functions(
        tree: ast.Module,
    ) -> Iterator[Tuple[Optional[str], ast.AST]]:
        """(enclosing class name, function node) pairs.

        Only top-level functions and class methods are enumerated;
        nested functions are covered by the walk over their enclosure.
        """
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield None, node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield node.name, item

    def _drawing_functions(
        self, tree: ast.Module, aliases: Dict[str, str]
    ) -> Set[str]:
        """Names of module functions/methods that (transitively) draw."""
        direct: Set[str] = set()
        edges: Dict[str, Set[str]] = {}
        defs: List[Tuple[str, ast.AST]] = []
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.append((node.name, node))
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        defs.append((f"{node.name}.{item.name}", item))
        for qual, func in defs:
            callees: Set[str] = set()
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if _is_draw_call(node, aliases):
                    direct.add(qual)
                callee = _local_callee(node)
                if callee is None:
                    continue
                if callee.startswith("self."):
                    cls = qual.rsplit(".", 1)[0] if "." in qual else ""
                    callees.add(f"{cls}.{callee[len('self.'):]}")
                else:
                    callees.add(callee)
            edges[qual] = callees
        # Propagate draw-ness backwards over call edges to a fixpoint.
        changed = True
        while changed:
            changed = False
            for qual, callees in edges.items():
                if qual not in direct and callees & direct:
                    direct.add(qual)
                    changed = True
        return direct

    @staticmethod
    def _backend_branches(func: ast.AST) -> Iterator[List[ast.AST]]:
        """Statement/expression bodies guarded by a backend test."""
        for node in ast.walk(func):
            if isinstance(node, ast.If) and _mentions_backend(node.test):
                yield list(node.body) + list(node.orelse)
            elif isinstance(node, ast.IfExp) and _mentions_backend(node.test):
                yield [node.body, node.orelse]

    def _draws_in(
        self,
        source: SourceFile,
        aliases: Dict[str, str],
        drawing: Set[str],
        scope_name: Optional[str],
        body: List[ast.AST],
    ) -> Iterator[Finding]:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                reason: Optional[str] = None
                if _is_draw_call(node, aliases):
                    reason = "draws from an RNG stream"
                else:
                    callee = _local_callee(node)
                    if callee is not None:
                        if callee.startswith("self.") and scope_name:
                            callee = f"{scope_name}.{callee[len('self.'):]}"
                        if callee in drawing:
                            reason = f"calls {callee}(), which draws"
                if reason is not None:
                    yield Finding(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.id,
                        message=(
                            f"backend-conditional branch {reason}: stream "
                            "positions diverge between backends, breaking "
                            "bit-equivalence"
                        ),
                    )
