"""Core of the simulation-safety static analyzer.

This module is the small visitor framework the repo-specific rules are
built on: :class:`SourceFile` (a parsed file plus its suppression
comments), :class:`Project` (every file of one analysis run),
:class:`Rule`/:class:`Finding` (the reporting contract), and
:func:`run_analysis` (load, check, filter, sort).

Scope model
-----------
The determinism rules (``DET00x``) only police *simulation hot paths*:
files under ``repro/{network,sim,cpu,control,traffic}``.  Code outside
those packages (the harness, observability, experiments, tests) may
legitimately read wall clocks or iterate dicts freely.  A file outside
the packages can opt in with a pragma comment near the top::

    # repro: analysis-scope=sim

(used by new simulation modules that live elsewhere, and by the test
fixture corpus).

Suppressions
------------
A finding is suppressed when its physical line carries::

    # repro: noqa            (every rule)
    # repro: noqa[DET001]    (listed rules only, comma-separated)

Suppression is per-line and explicit by design: a suppressed violation
stays visible in the diff forever.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import pathlib
import re
from typing import (
    TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.cache import AnalysisCache

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "SIM_PACKAGES",
    "dotted_name",
    "import_aliases",
    "iter_python_files",
    "run_analysis",
]

#: Packages whose files are simulation hot paths (the DET rules' scope).
SIM_PACKAGES: Tuple[str, ...] = (
    "network", "sim", "cpu", "control", "traffic", "chaos", "topology",
)

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")
_SIM_SCOPE_RE = re.compile(r"#\s*repro:\s*analysis-scope\s*=\s*sim\b")
#: The pragma must appear in the first few lines to count (header, not
#: an incidental mention buried in a string or late comment).
_SCOPE_SCAN_LINES = 10


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceFile:
    """A parsed Python file plus the comment pragmas the rules honor."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=path)

    @property
    def in_sim_scope(self) -> bool:
        """Whether the DET (hot-path) rules apply to this file."""
        parts = pathlib.PurePath(self.path).parts
        for i in range(len(parts) - 1):
            if parts[i] == "repro" and parts[i + 1] in SIM_PACKAGES:
                return True
        return any(
            _SIM_SCOPE_RE.search(line)
            for line in self.lines[:_SCOPE_SCAN_LINES]
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a ``# repro: noqa[...]`` on the line silences *finding*."""
        if not 1 <= finding.line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        return finding.rule in {part.strip() for part in listed.split(",")}

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at *node*'s source location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Project:
    """Every successfully parsed file of one analysis run."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files: Tuple[SourceFile, ...] = tuple(files)

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def sim_files(self) -> Iterator[SourceFile]:
        for source in self.files:
            if source.in_sim_scope:
                yield source


class Rule:
    """One named check.  Subclasses yield findings over a project."""

    #: Stable identifier, e.g. ``"DET001"``; selectable via --select.
    id: str = ""
    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted module/attribute paths.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    Relative imports have no canonical absolute path and are skipped.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                canonical = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_name(
    node: ast.AST, aliases: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """Canonical dotted path of an attribute chain, or ``None``.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.default_rng"``.  Chains not rooted in a plain name
    (calls, subscripts) resolve to ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _excluded(path: pathlib.Path, exclude: Sequence[str]) -> bool:
    candidate = path.as_posix()
    return any(fnmatch.fnmatch(candidate, pattern) for pattern in exclude)


def iter_python_files(
    paths: Sequence[str], exclude: Optional[Sequence[str]] = None
) -> Iterator[pathlib.Path]:
    """Every ``.py`` file under *paths*, in a deterministic order.

    *exclude* holds fnmatch glob patterns matched against the posix form
    of each discovered path (e.g. ``tests/analysis_fixtures/*``); a file
    named explicitly as a path argument is exempt from exclusion, so the
    deliberately-violating fixture corpus can still be analyzed head-on.
    """
    seen = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = (
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (exclude and _excluded(candidate, exclude))
            )
        else:
            candidates = [path]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                yield candidate


def load_project(
    paths: Sequence[str],
    exclude: Optional[Sequence[str]] = None,
) -> Tuple[Project, List[Finding]]:
    """Parse every file under *paths*.

    Unreadable or syntactically invalid files become ``PARSE000``
    findings instead of aborting the run — the analyzer must keep
    working on a tree that is mid-edit.
    """
    return _load_files(list(iter_python_files(paths, exclude=exclude)))


def _load_files(
    files: Sequence[pathlib.Path],
) -> Tuple[Project, List[Finding]]:
    sources: List[SourceFile] = []
    errors: List[Finding] = []
    for path in files:
        name = str(path)
        try:
            sources.append(SourceFile(name, path.read_text(encoding="utf-8")))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    path=name,
                    line=int(line),
                    col=1,
                    rule="PARSE000",
                    message=f"could not analyze file: {exc}",
                )
            )
    return Project(sources), errors


def run_analysis(
    paths: Sequence[str],
    rules: Sequence[Rule],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    exclude: Optional[Sequence[str]] = None,
    cache: Optional["AnalysisCache"] = None,
) -> List[Finding]:
    """Run *rules* over *paths* and return the surviving findings.

    ``select`` keeps only the listed rule ids; ``ignore`` removes the
    listed ids afterwards.  ``# repro: noqa`` suppressions are applied
    before returning; findings come back sorted by location then rule.

    With *cache*, each file is first validated against its stored
    stat/sha256 digest; if the whole (file set, rule set) fingerprint
    matches a previous run, that run's findings replay without parsing
    a single file.  The caller owns calling
    :meth:`~repro.analysis.cache.AnalysisCache.save`.
    """
    chosen = sorted(rules, key=lambda rule: rule.id)
    if select is not None:
        wanted = set(select)
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore is not None:
        dropped = set(ignore)
        chosen = [rule for rule in chosen if rule.id not in dropped]

    files = list(iter_python_files(paths, exclude=exclude))
    fingerprint: Optional[str] = None
    if cache is not None:
        digests: List[Tuple[str, str]] = []
        try:
            for path in files:
                name = str(path)
                digests.append((name, cache.file_digest(name, path.stat())))
        except OSError:
            pass  # unreadable file: fall through to the full run (PARSE000)
        else:
            rule_ids = [rule.id for rule in chosen]
            fingerprint = cache.run_fingerprint(digests, rule_ids)
            replayed = cache.get_run(fingerprint)
            if replayed is not None:
                return replayed

    project, findings = _load_files(files)
    by_path = {source.path: source for source in project}
    for rule in chosen:
        for finding in rule.check(project):
            source = by_path.get(finding.path)
            if source is not None and source.suppressed(finding):
                continue
            findings.append(finding)
    results = sorted(findings)
    if cache is not None and fingerprint is not None:
        cache.put_run(fingerprint, results)
    return results
