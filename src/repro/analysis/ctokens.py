"""A deliberately small C tokenizer for the NATIVE contract rules.

The native backend (``repro/native/kernels.c``) and its Python driver
(``repro/native/accel.py``) communicate through three conventions that
the C compiler cannot check from the Python side:

* anonymous ``enum { CFG_* }`` / ``enum { CTR_* }`` blocks mirrored as
  tuple-unpack assignments over ``range(N)``;
* the pointer-table slot enum (``PT_*``) mirrored as ``PT_SLOT_NAMES``
  and realized by the order of the ``arrays`` list literal;
* ``#define`` constants (``SEQ_RING``, ``HIST_BUCKETS``, ``MAX_PORTS``,
  ``KEY_MAX``, bit-packing shifts/masks) duplicated as Python module
  constants across ``repro/network``.

This module extracts exactly those three shapes from C source with a
comment/string-stripping pass plus regexes — it is *not* a C parser and
does not try to be; ``kernels.c`` is hand-written, single-file, and
macro-light, which is the only dialect we need.  Object-like macro
bodies are evaluated with a restricted constant-expression evaluator
(integer/float literals with ``U``/``L`` suffixes, arithmetic, shifts,
bitwise ops, references to earlier ``#define``\\ s) so values like
``((1LL << 14) - 1)`` compare numerically against their Python mirrors.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "CDefine",
    "CEnum",
    "KernelContract",
    "parse_kernel_source",
    "strip_c_noise",
]

Number = Union[int, float]

#: ``1LL``, ``0xFFu``, ``7UL`` → bare literal (suffix has no Python analog).
_INT_SUFFIX_RE = re.compile(r"\b(0[xX][0-9a-fA-F]+|[0-9]+)[uUlL]{1,3}\b")
#: Object-like macro: ``#define NAME body`` — a ``(`` immediately after
#: the name (no space) makes it function-like, which we skip.
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)(\()?\s*(.*?)\s*$")
_ENUM_RE = re.compile(r"\benum\s*([A-Za-z_]\w*)?\s*\{([^}]*)\}", re.DOTALL)
_ENUM_MEMBER_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:=\s*([^,]+))?")

_ALLOWED_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
    ast.LShift, ast.RShift, ast.BitOr, ast.BitAnd, ast.BitXor,
)
_ALLOWED_UNARYOPS = (ast.UAdd, ast.USub, ast.Invert)


@dataclasses.dataclass(frozen=True)
class CDefine:
    """One object-like ``#define``: raw body plus evaluated value."""

    name: str
    body: str
    value: Optional[Number]
    line: int


@dataclasses.dataclass(frozen=True)
class CEnum:
    """One ``enum { ... }`` block, members in declaration order."""

    members: Tuple[str, ...]
    line: int

    def prefix(self) -> str:
        """Common ``NAME_`` prefix of the members (e.g. ``"CFG_"``)."""
        if not self.members:
            return ""
        head = self.members[0]
        cut = head.find("_")
        return head[: cut + 1] if cut >= 0 else head


@dataclasses.dataclass(frozen=True)
class KernelContract:
    """Everything the NATIVE rules cross-check out of one C file."""

    path: str
    defines: Dict[str, CDefine]
    enums: Tuple[CEnum, ...]

    def enum_with_prefix(self, prefix: str) -> Optional[CEnum]:
        for enum in self.enums:
            if enum.members and enum.members[0].startswith(prefix):
                return enum
        return None


def strip_c_noise(text: str) -> str:
    """Blank out comments and string/char literals, preserving lines.

    Every removed character becomes a space (newlines survive) so byte
    offsets map back to the original line numbers.
    """
    out: List[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif ch == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif ch == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
        else:  # string / char
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
    return "".join(out)


def eval_c_expr(
    body: str, defines: Optional[Dict[str, CDefine]] = None
) -> Optional[Number]:
    """Evaluate a constant C expression, or ``None`` if it is not one.

    Handles integer/float literals (with C suffixes), hex, arithmetic,
    shifts, bitwise ops, and references to already-parsed object-like
    macros.  Anything else — casts, ``sizeof``, function-like macros —
    yields ``None`` rather than a guess.
    """
    cleaned = _INT_SUFFIX_RE.sub(r"\1", body).strip()
    if not cleaned:
        return None
    try:
        tree = ast.parse(cleaned, mode="eval")
    except SyntaxError:
        return None
    return _eval_node(tree.body, defines or {}, depth=0)


def _eval_node(
    node: ast.AST, defines: Dict[str, CDefine], depth: int
) -> Optional[Number]:
    if depth > 16:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    if isinstance(node, ast.Name):
        ref = defines.get(node.id)
        if ref is None:
            return None
        if ref.value is not None:
            return ref.value
        return eval_c_expr(ref.body, defines)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, _ALLOWED_UNARYOPS):
        operand = _eval_node(node.operand, defines, depth + 1)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
        return ~int(operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ALLOWED_BINOPS):
        left = _eval_node(node.left, defines, depth + 1)
        right = _eval_node(node.right, defines, depth + 1)
        if left is None or right is None:
            return None
        try:
            return _apply_binop(node.op, left, right)
        except (ArithmeticError, TypeError, ValueError):
            return None
    return None


def _apply_binop(op: ast.operator, left: Number, right: Number) -> Number:
    if isinstance(op, ast.Add):
        return left + right
    if isinstance(op, ast.Sub):
        return left - right
    if isinstance(op, ast.Mult):
        return left * right
    if isinstance(op, ast.Div):
        return left / right
    if isinstance(op, ast.FloorDiv):
        return left // right
    if isinstance(op, ast.Mod):
        return left % right
    if isinstance(op, ast.LShift):
        return int(left) << int(right)
    if isinstance(op, ast.RShift):
        return int(left) >> int(right)
    if isinstance(op, ast.BitOr):
        return int(left) | int(right)
    if isinstance(op, ast.BitAnd):
        return int(left) & int(right)
    return int(left) ^ int(right)


def parse_kernel_source(path: str, text: str) -> KernelContract:
    """Extract the mirrored surface (defines + enums) from C source."""
    clean = strip_c_noise(text)
    defines: Dict[str, CDefine] = {}
    for lineno, line in enumerate(clean.splitlines(), start=1):
        match = _DEFINE_RE.match(line)
        if match is None or match.group(2) is not None:
            continue  # not a #define, or function-like
        name, body = match.group(1), match.group(3)
        defines[name] = CDefine(
            name=name,
            body=body,
            value=eval_c_expr(body, defines),
            line=lineno,
        )
    enums: List[CEnum] = []
    for match in _ENUM_RE.finditer(clean):
        members = tuple(
            member.group(1)
            for member in _ENUM_MEMBER_RE.finditer(match.group(2))
        )
        if members:
            line = clean.count("\n", 0, match.start()) + 1
            enums.append(CEnum(members=members, line=line))
    return KernelContract(path=path, defines=defines, enums=tuple(enums))
