"""PHASE001: phase callables may only mutate state they declare.

The simulator's cycle loop is an ordered pipeline of named phases
(:mod:`repro.sim.pipeline`); the per-cycle order of operations is a
documented contract (DESIGN.md §S21).  That contract is only as strong
as the phases' isolation: a phase that quietly starts writing another
phase's scratch state (say, ``ejection`` clobbering ``_ejected``)
changes behavior in a way no signature or test name reveals.

``repro/sim/simulator.py`` therefore declares, next to the pipeline
construction, which simulator attributes each phase method may write::

    PHASE_WRITES = {
        "_network_phase": ("_ejected",),
        ...
    }

This rule statically extracts every ``self.<attr> = ...`` /
``self.<attr> op= ...`` in each declared method — including writes made
through other ``self`` methods it calls, transitively — and fails on:

- an **undeclared write**: the phase mutates simulator state it did not
  declare;
- a **stale declaration**: the contract lists an attribute the phase no
  longer writes (the contract must stay honest, or nobody trusts it).

The rule fires on any analyzed file that defines a module-level
``PHASE_WRITES`` table, so new pipelines (and the test fixture corpus)
get the same checking for free.  Conversely, a *sim-scope* module that
constructs a ``PhasePipeline`` without declaring the table at all is
flagged — the contract is mandatory wherever pipelines are built.

Scope note: only *direct* attribute stores on ``self`` are tracked.
Deep mutation (``self.stats.flit_hops += 1``, ``self.arr[i] = x``) is
object-internal state owned by that component, not simulator-level
phase state — the contract polices the latter.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["Phase001PhaseWrites"]

_TABLE_NAME = "PHASE_WRITES"
_PIPELINE_CLASS = "PhasePipeline"


def _pipeline_construction(tree: ast.Module) -> Optional[ast.Call]:
    """The first ``PhasePipeline(...)`` call in the module, if any.

    A sim-scope module that builds a pipeline without declaring a
    ``PHASE_WRITES`` contract has opted out of phase-isolation checking
    entirely — which is itself a violation (the contract is mandatory
    where pipelines are constructed, optional everywhere else).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == _PIPELINE_CLASS:
                return node
    return None


def _module_constant(tree: ast.Module, name: str) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node
    return None


def _declared_writes(node: ast.Assign) -> Optional[Dict[str, Set[str]]]:
    """Parse the ``PHASE_WRITES`` literal: method -> declared attrs."""
    if not isinstance(node.value, ast.Dict):
        return None
    table: Dict[str, Set[str]] = {}
    for key, value in zip(node.value.keys, node.value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        elements: List[ast.expr]
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            elements = list(value.elts)
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
        ):
            if not value.args:
                elements = []
            elif isinstance(value.args[0], (ast.Tuple, ast.List, ast.Set)):
                elements = list(value.args[0].elts)
            else:
                return None
        else:
            return None
        attrs: Set[str] = set()
        for element in elements:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            attrs.add(element.value)
        table[key.value] = attrs
    return table


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when *node* is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodFacts:
    """Direct self-attribute writes and self-method calls of one method."""

    def __init__(self, method: ast.FunctionDef):
        self.name = method.name
        #: attr -> first write site (for finding locations)
        self.writes: Dict[str, ast.AST] = {}
        self.calls: Set[str] = set()
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Tuple):
                    candidates: List[ast.expr] = list(target.elts)
                else:
                    candidates = [target]
                for candidate in candidates:
                    attr = _self_attr(candidate)
                    if attr is not None:
                        self.writes.setdefault(attr, candidate)
            if isinstance(node, ast.Call):
                called = _self_attr(node.func)
                if called is not None:
                    self.calls.add(called)


def _transitive_writes(
    start: str, facts: Dict[str, _MethodFacts]
) -> Dict[str, Tuple[ast.AST, str]]:
    """All reachable writes: attr -> (site, method that writes it)."""
    writes: Dict[str, Tuple[ast.AST, str]] = {}
    seen: Set[str] = set()
    stack = [start]
    while stack:
        name = stack.pop()
        if name in seen or name not in facts:
            continue
        seen.add(name)
        fact = facts[name]
        for attr, site in fact.writes.items():
            writes.setdefault(attr, (site, name))
        stack.extend(sorted(fact.calls))
    return writes


class Phase001PhaseWrites(Rule):
    """Cross-phase attribute-write detection against PHASE_WRITES."""

    id = "PHASE001"
    summary = (
        "pipeline phase methods may only write the self attributes they "
        "declare in PHASE_WRITES (transitively through self calls)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project:
            table_node = _module_constant(source.tree, _TABLE_NAME)
            if table_node is None:
                pipeline_call = (
                    _pipeline_construction(source.tree)
                    if source.in_sim_scope
                    else None
                )
                if pipeline_call is not None:
                    yield source.finding(
                        self.id,
                        pipeline_call,
                        f"module builds a {_PIPELINE_CLASS} but declares no "
                        f"{_TABLE_NAME} contract; declare which simulator "
                        "attributes each phase method may write",
                    )
                continue
            yield from self._check_file(source, table_node)

    def _check_file(
        self, source: SourceFile, table_node: ast.Assign
    ) -> Iterator[Finding]:
        declared = _declared_writes(table_node)
        if declared is None:
            yield source.finding(
                self.id,
                table_node,
                f"{_TABLE_NAME} must be a literal dict of method name -> "
                "tuple/list/frozenset of attribute-name strings so the "
                "contract can be checked statically",
            )
            return

        # Collect method facts per class; a declared method may live in
        # any class of the module (the simulator owns them in practice).
        facts_by_class: List[Dict[str, _MethodFacts]] = []
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                facts = {
                    item.name: _MethodFacts(item)
                    for item in node.body
                    if isinstance(item, ast.FunctionDef)
                }
                facts_by_class.append(facts)

        for method_name in sorted(declared):
            allowed = declared[method_name]
            facts = next(
                (f for f in facts_by_class if method_name in f), None
            )
            if facts is None:
                yield source.finding(
                    self.id,
                    table_node,
                    f"{_TABLE_NAME} declares method {method_name!r} but no "
                    "class in this module defines it (stale contract entry)",
                )
                continue
            writes = _transitive_writes(method_name, facts)
            for attr in sorted(set(writes) - allowed):
                site, via = writes[attr]
                through = "" if via == method_name else f" (via self.{via}())"
                yield source.finding(
                    self.id,
                    site,
                    f"phase method {method_name!r} writes undeclared "
                    f"attribute self.{attr}{through}; declare it in "
                    f"{_TABLE_NAME} or move the mutation to the owning "
                    "phase",
                )
            for attr in sorted(allowed - set(writes)):
                yield source.finding(
                    self.id,
                    table_node,
                    f"{_TABLE_NAME} declares that {method_name!r} writes "
                    f"self.{attr}, but no reachable code does (stale "
                    "contract entry)",
                )
